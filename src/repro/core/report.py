"""Measurement records handed from the monitor to its consumers.

These are the "network metrics regarding data communication information"
the paper's monitor provides to the DeSiDeRaTa middleware: per-connection
used/available bandwidth along a watched path, the path's end-to-end
available bandwidth (the minimum), and the bottleneck connection.

Every report also carries its **data freshness**: how old the rate
samples behind it are (``freshness``), a 0..1 ``confidence`` derived
from those ages and agent health, a ``degraded`` flag when any figure
rests on stale or missing data, and an ``unavailable`` flag when the
path's numbers cannot be trusted at all (a fully-dead source).  An
unavailable report answers ``available_bps`` with NaN rather than
serving the last rate it happened to see as if it were current --
consumers driving adaptation must know the difference between "little
bandwidth" and "no idea".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.topology.model import ConnectionSpec, InterfaceRef


@dataclass(frozen=True)
class ConnectionMeasurement:
    """One connection's bandwidth figures at one instant."""

    connection: ConnectionSpec
    capacity_bps: float  # m_i: static bandwidth (ifSpeed / spec)
    used_bps: float  # u_i: measured traffic, after the hub/switch rule
    source: Optional[InterfaceRef]  # polled endpoint (None: unmeasured)
    rule: str  # "switch" | "hub" | "down" | "unmeasured"
    sample_time: Optional[float] = None  # when the underlying sample landed
    sample_interval: Optional[float] = None  # seconds the sample covers
    sample_age: Optional[float] = None  # report time minus sample time
    stale: bool = False  # sample older than the monitor's staleness bound
    quarantined: bool = False  # counter source held by the integrity pipeline
    degraded_source: bool = False  # distributed plane knows newer data was lost

    @property
    def available_bps(self) -> float:
        """a_i = m_i - u_i, floored at zero; a downed link offers nothing."""
        if self.rule == "down":
            return 0.0
        return max(0.0, self.capacity_bps - self.used_bps)

    @property
    def utilization(self) -> float:
        return min(1.0, self.used_bps / self.capacity_bps) if self.capacity_bps else 0.0

    @property
    def measured(self) -> bool:
        return self.rule != "unmeasured"


@dataclass(frozen=True)
class PathReport:
    """End-to-end bandwidth for one watched host pair at one instant.

    ``available_bps`` is the paper's ``A = min(a_1, ..., a_n)``;
    ``used_bps`` is the largest per-connection traffic along the path,
    which is the "measured traffic between hosts" the paper plots in
    Figures 4-6.
    """

    src: str
    dst: str
    time: float
    connections: Tuple[ConnectionMeasurement, ...]
    name: Optional[str] = None
    # Data-quality annotations (see the module docstring).  Defaults are
    # the optimistic ones so hand-built reports behave as before.
    freshness: Optional[float] = None  # age of the stalest backing sample
    confidence: float = 1.0  # 1.0 all-fresh .. 0.0 no usable data
    degraded: bool = False  # some figure rests on stale/missing data
    unavailable: bool = False  # no trustworthy figures at all
    # Physical redundancy of the pair: >= 2 simple paths exist, so a
    # single link failure on the measured (active) path is survivable.
    # Distinguishes "degraded but protected" from "single point of
    # failure" for the resource manager.
    redundant: bool = False

    def __post_init__(self) -> None:
        if not self.connections and self.src != self.dst:
            raise ValueError(f"empty path report between distinct hosts {self.src}->{self.dst}")

    @property
    def complete(self) -> bool:
        """True when every connection on the path was measurable."""
        return all(m.measured for m in self.connections)

    @property
    def status(self) -> str:
        """"fresh" | "degraded" | "unavailable" -- the report's trust level."""
        if self.unavailable:
            return "unavailable"
        return "degraded" if self.degraded else "fresh"

    @property
    def trusted(self) -> bool:
        """True only for a fully-fresh report free of quarantined sources.

        This is the flag QoS consumers should gate adaptation on: a
        degraded or unavailable report, or one whose figures lean on an
        interface the integrity pipeline quarantined, is not evidence.
        """
        return not self.degraded and not self.unavailable and not self.any_quarantined

    @property
    def any_quarantined(self) -> bool:
        """True when any connection's counter source sits in quarantine."""
        return any(m.quarantined for m in self.connections)

    @property
    def quarantined_connections(self) -> Tuple[ConnectionMeasurement, ...]:
        return tuple(m for m in self.connections if m.quarantined)

    @property
    def available_bps(self) -> float:
        if self.unavailable:
            # A dead path has *unknown* availability; NaN refuses to let a
            # stale minimum masquerade as a live measurement.
            return float("nan")
        if not self.connections:
            return float("inf")
        return min(m.available_bps for m in self.connections)

    @property
    def used_bps(self) -> float:
        measured = [m.used_bps for m in self.connections if m.measured]
        return max(measured) if measured else 0.0

    @property
    def capacity_bps(self) -> float:
        """The path's static bandwidth: the smallest connection capacity."""
        if not self.connections:
            return float("inf")
        return min(m.capacity_bps for m in self.connections)

    @property
    def bottleneck(self) -> Optional[ConnectionMeasurement]:
        """The connection with the least available bandwidth."""
        if not self.connections:
            return None
        return min(self.connections, key=lambda m: m.available_bps)

    @property
    def label(self) -> str:
        return self.name if self.name else f"{self.src}<->{self.dst}"

    def summary(self) -> str:
        """One-line human-readable rendering for logs and examples."""
        if self.unavailable:
            return (
                f"[{self.time:9.3f}s] {self.label}: UNAVAILABLE "
                f"(no fresh data; stalest sample "
                f"{'never seen' if self.freshness is None else f'{self.freshness:.1f}s old'})"
            )
        parts = [
            f"[{self.time:9.3f}s] {self.label}:",
            f"used {self.used_bps / 1000:8.1f} KB/s,",
            f"available {self.available_bps / 1000:8.1f} KB/s",
        ]
        bottleneck = self.bottleneck
        if bottleneck is not None:
            parts.append(f"(bottleneck {bottleneck.connection})")
        if self.degraded:
            parts.append(f"[DEGRADED confidence={self.confidence:.2f}]")
        if self.any_quarantined:
            parts.append(f"[QUARANTINED x{len(self.quarantined_connections)}]")
        return " ".join(parts)
