"""Fault injection for the simulated LAN.

DeSiDeRaTa "performs QoS monitoring and failure detection"; a monitor
that is only ever shown a healthy network is untestable on half its job.
This module injects the failures a real LAN suffers:

- :class:`LinkFailure`      -- take a link down (both directions drop
  everything) and optionally restore it later.  Interface operational
  state follows, so SNMP ``ifOperStatus`` and link-state traps react.
- :class:`PacketLoss`       -- random, seeded per-direction frame loss on
  a link (a flaky cable).
- :class:`AgentOutage`      -- an SNMP daemon stops answering for a while
  (the process crashed); the manager sees timeouts, exactly what the
  paper's monitor would have experienced.

All injections are plain objects driven by the simulation clock and are
fully deterministic under a seed.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.simnet.engine import Simulator
from repro.simnet.link import Link, _Channel
from repro.simnet.packet import EthernetFrame


class FaultError(RuntimeError):
    """Raised for invalid fault configuration."""


class LinkFailure:
    """Severs a link at ``at`` and optionally restores it at ``until``.

    Implementation: both endpoint interfaces are administratively downed,
    which makes transmission fail (out_discards) and reception drop
    (in_discards) -- indistinguishable, from above, from a yanked cable.
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        at: float,
        until: Optional[float] = None,
    ) -> None:
        if until is not None and until <= at:
            raise FaultError(f"restore time {until!r} must follow failure time {at!r}")
        self.sim = sim
        self.link = link
        self.at = at
        self.until = until
        self.failed = False
        sim.schedule_at(max(at, sim.now), self._fail)
        if until is not None:
            sim.schedule_at(max(until, sim.now), self._restore)

    def _fail(self) -> None:
        self.failed = True
        for iface in self.link.endpoints:
            iface.set_admin_up(False)

    def _restore(self) -> None:
        self.failed = False
        for iface in self.link.endpoints:
            iface.set_admin_up(True)


class PacketLoss:
    """Seeded random frame loss on a link (both directions).

    Installs a drop filter on both directional channels: each offered
    frame is dropped with probability ``loss_rate`` before it enqueues,
    counted in the channel's drop statistics.
    """

    def __init__(self, link: Link, loss_rate: float, seed: int = 0) -> None:
        if not 0.0 <= loss_rate <= 1.0:
            raise FaultError(f"loss rate {loss_rate!r} outside [0, 1]")
        self.link = link
        self.loss_rate = loss_rate
        self.rng = random.Random(seed)
        self.frames_lost = 0
        self._wrap(link._a_to_b)
        self._wrap(link._b_to_a)

    def _wrap(self, channel: _Channel) -> None:
        def should_drop(frame: EthernetFrame) -> bool:
            if self.rng.random() < self.loss_rate:
                self.frames_lost += 1
                return True
            return False

        channel.drop_filter = should_drop


class AgentOutage:
    """An SNMP agent stops responding during [at, until).

    Models a crashed/hung daemon: requests are still *received* (and
    counted) but produce no response, so the manager runs into its
    timeout/retry machinery.
    """

    def __init__(self, sim: Simulator, agent, at: float, until: float) -> None:
        if until <= at:
            raise FaultError(f"outage end {until!r} must follow start {at!r}")
        self.sim = sim
        self.agent = agent
        self.at = at
        self.until = until
        self.down = False
        self.requests_ignored = 0
        self._original = agent.socket.on_receive
        sim.schedule_at(max(at, sim.now), self._begin)
        sim.schedule_at(max(until, sim.now), self._end)

    def _begin(self) -> None:
        self.down = True

        def black_hole(payload, size, src_ip, src_port):
            self.agent.in_packets += 1
            self.requests_ignored += 1

        self.agent.socket.on_receive = black_hole

    def _end(self) -> None:
        self.down = False
        self.agent.socket.on_receive = self._original
