"""Robustness: fuzzing the wire-facing surfaces and API-surface checks."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.network import Network
from repro.snmp.agent import SnmpAgent
from repro.snmp.manager import SnmpManager
from repro.snmp.mib import SYS_NAME, build_mib2
from repro.snmp.trap import TrapReceiver


def wire_pair():
    net = Network()
    attacker = net.add_host("X")
    victim = net.add_host("V")
    sw = net.add_switch("sw", 4, managed=False)
    net.connect(attacker, sw)
    net.connect(victim, sw)
    net.announce_hosts()
    return net, attacker, victim


class TestAgentFuzz:
    @settings(max_examples=60, deadline=None)
    @given(st.binary(min_size=0, max_size=300))
    def test_agent_never_crashes_on_garbage(self, blob):
        """Arbitrary bytes to port 161: counted, never raised, never answered
        unless they happen to decode to a valid request."""
        net, attacker, victim = wire_pair()
        agent = SnmpAgent(victim, build_mib2(victim, net.sim))
        attacker.create_socket().sendto(blob, (victim.primary_ip, 161))
        net.run(2.0)
        assert agent.in_packets <= 1 or blob == b""
        # Either ignored as malformed/bad-community, or answered exactly once.
        assert agent.out_packets <= 1

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=0, max_size=200))
    def test_trap_receiver_never_crashes(self, blob):
        net, attacker, victim = wire_pair()
        receiver = TrapReceiver(victim)
        attacker.create_socket().sendto(blob, (victim.primary_ip, 162))
        net.run(2.0)
        assert receiver.events == [] or blob  # no events from nothing

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=0, max_size=200))
    def test_manager_never_crashes_on_unsolicited(self, blob):
        """Arbitrary bytes to the manager's ephemeral port are swallowed."""
        net, attacker, victim = wire_pair()
        manager = SnmpManager(victim)
        attacker.create_socket().sendto(blob, (victim.primary_ip, manager.socket.port))
        net.run(2.0)
        assert manager.responses_received == 0

    def test_truncated_valid_message_rejected(self):
        """Every prefix of a valid message must be rejected cleanly."""
        from repro.snmp.message import VERSION_2C, Message
        from repro.snmp.pdu import Pdu
        from repro.snmp import ber

        raw = Message(VERSION_2C, "public", Pdu.get_request(9, [SYS_NAME])).encode()
        for cut in range(len(raw)):
            try:
                Message.decode(raw[:cut])
            except ber.BerError:
                continue
            raise AssertionError(f"prefix of length {cut} decoded successfully")


class TestQuickstartContract:
    def test_readme_quickstart_runs(self):
        """The README's quickstart snippet must keep working verbatim."""
        from repro import NetworkMonitor, StepSchedule, build_network, parse_spec
        from repro.simnet.trafficgen import KBPS, StaircaseLoad

        build = build_network(parse_spec("""
        network topology demo {
            host alice { snmp community "public"; }
            host bob   { snmp community "public"; }
            switch sw1 { snmp community "public"; ports 4 speed 100 Mbps; }
            connect alice.eth0 <-> sw1.port1;
            connect bob.eth0   <-> sw1.port2;
        }
        """))
        monitor = NetworkMonitor(build, "alice", poll_interval=2.0)
        label = monitor.watch_path("alice", "bob")
        reports = []
        monitor.subscribe(reports.append)
        load = StaircaseLoad(
            build.network.host("alice"),
            build.network.ip_of("bob"),
            StepSchedule.pulse(5.0, 25.0, 300 * KBPS),
        )
        load.start()
        monitor.start()
        build.network.run(35.0)
        assert reports
        assert monitor.history.series(label).used().max() > 250_000

    def test_top_level_exports_importable(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_core_exports_importable(self):
        import repro.core as core

        for name in core.__all__:
            assert getattr(core, name) is not None
