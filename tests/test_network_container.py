"""Tests for the Network container and the switch management stack."""

import pytest

from repro.simnet.address import IPv4Address
from repro.simnet.network import BROADCAST_IP, Network, NetworkError
from repro.simnet.sockets import DISCARD_PORT, SocketError


class TestDeviceRegistry:
    def test_duplicate_names_rejected_across_kinds(self):
        net = Network()
        net.add_host("x")
        with pytest.raises(NetworkError):
            net.add_switch("x", 4)
        with pytest.raises(NetworkError):
            net.add_hub("x", 4)
        with pytest.raises(NetworkError):
            net.add_host("x")

    def test_device_lookup_by_name(self):
        net = Network()
        host = net.add_host("h")
        switch = net.add_switch("s", 4)
        hub = net.add_hub("b", 4)
        assert net.device("h") is host
        assert net.device("s") is switch
        assert net.device("b") is hub
        with pytest.raises(NetworkError):
            net.device("nope")

    def test_host_lookup_rejects_devices(self):
        net = Network()
        net.add_switch("s", 4)
        with pytest.raises(NetworkError):
            net.host("s")

    def test_endpoint_resolution(self):
        net = Network()
        host = net.add_host("h")
        net.add_switch("managed", 4, managed=True)
        net.add_switch("dumb", 4, managed=False)
        assert net.endpoint("h") is host
        assert net.endpoint("managed") is net.management["managed"]
        with pytest.raises(NetworkError):
            net.endpoint("dumb")

    def test_ip_allocation_unique_and_resolvable(self):
        net = Network()
        hosts = [net.add_host(f"h{i}") for i in range(5)]
        ips = [h.primary_ip for h in hosts]
        assert len(set(ips)) == 5
        for host in hosts:
            assert net.resolve_mac(host.primary_ip) == host.interfaces[0].mac
            assert net.owner_of(host.primary_ip) is host

    def test_broadcast_resolution(self):
        net = Network()
        from repro.simnet.address import BROADCAST_MAC

        assert net.resolve_mac(BROADCAST_IP) == BROADCAST_MAC

    def test_unknown_ip_rejected(self):
        net = Network()
        with pytest.raises(NetworkError):
            net.resolve_mac(IPv4Address("1.2.3.4"))
        with pytest.raises(NetworkError):
            net.owner_of(IPv4Address("1.2.3.4"))


class TestWiring:
    def test_connect_devices_uses_free_ports(self):
        net = Network()
        a = net.add_host("a")
        sw = net.add_switch("sw", 4)
        link = net.connect(a, sw)
        assert link.end_a is a.interfaces[0]
        assert link.end_b is sw.interfaces[0]

    def test_connect_full_host_rejected(self):
        net = Network()
        a = net.add_host("a")
        sw = net.add_switch("sw", 4)
        net.connect(a, sw)
        with pytest.raises(NetworkError):
            net.connect(a, sw)

    def test_all_interfaces_enumerated(self):
        net = Network()
        net.add_host("a", n_interfaces=2)
        net.add_switch("sw", 4)
        net.add_hub("hb", 3)
        assert len(net.all_interfaces()) == 2 + 4 + 3


class TestManagementStack:
    def managed_net(self):
        net = Network()
        host = net.add_host("L")
        sw = net.add_switch("sw", 4, managed=True)
        net.connect(host, sw)
        net.announce_hosts()
        net.run(0.01)
        return net, host, net.management["sw"]

    def test_stack_has_host_like_surface(self):
        net, host, stack = self.managed_net()
        assert stack.name == "sw"
        assert stack.primary_ip == stack.ip

    def test_ephemeral_ports_and_collision(self):
        net, host, stack = self.managed_net()
        sock = stack.create_socket(9000)
        with pytest.raises(SocketError):
            stack.create_socket(9000)
        sock.close()
        stack.create_socket(9000)

    def test_large_datagram_fragmented_and_reassembled(self):
        net, host, stack = self.managed_net()
        got = []
        sock = stack.create_socket(9000)
        sock.on_receive = lambda payload, size, ip, port: got.append(size)
        host.create_socket().sendto(4000, (stack.primary_ip, 9000))
        net.run(1.0)
        assert got == [4000]

    def test_stack_can_send_to_hosts(self):
        net, host, stack = self.managed_net()
        got = []
        host_sock = host.create_socket(9001)
        host_sock.on_receive = lambda payload, size, ip, port: got.append(size)
        stack.create_socket().sendto(128, (host.primary_ip, 9001))
        net.run(1.0)
        assert got == [128]

    def test_unbound_port_counted(self):
        net, host, stack = self.managed_net()
        host.create_socket().sendto(16, (stack.primary_ip, 4321))
        net.run(1.0)
        assert stack.udp_no_port == 1

    def test_management_traffic_counts_on_ports(self):
        """In-band management consumes real port bandwidth."""
        net, host, stack = self.managed_net()
        port = net.switches["sw"].port(1)
        base = port.counters.out_octets
        sock = stack.create_socket(9000)
        sock.on_receive = lambda payload, size, ip, port_: sock.sendto(
            size, (host.primary_ip, port_)
        )
        reply_sock = host.create_socket(9002)
        got = []
        reply_sock.on_receive = lambda payload, size, ip, port_: got.append(size)
        reply_sock.sendto(64, (stack.primary_ip, 9000))
        net.run(1.0)
        assert got == [64]
        assert port.counters.out_octets > base


class TestAnnouncements:
    def test_announce_teaches_all_switches(self):
        net = Network()
        hosts = [net.add_host(f"h{i}") for i in range(3)]
        sw = net.add_switch("sw", 6, managed=False)
        for h in hosts:
            net.connect(h, sw)
        net.announce_hosts()
        net.run(0.1)
        assert len(sw.fdb_entries()) == 3

    def test_announce_requires_membership(self):
        from repro.simnet.host import Host, HostError
        from repro.simnet.engine import Simulator

        host = Host(Simulator(), "stray")
        with pytest.raises(HostError):
            host.announce()

    def test_announce_skips_disconnected_interfaces(self):
        net = Network()
        host = net.add_host("h", n_interfaces=2)
        sw = net.add_switch("sw", 4, managed=False)
        net.connect(host.interfaces[0], sw)
        net.announce_hosts()
        net.run(0.1)  # the unwired eth1 must not crash the announcement
        assert len(sw.fdb_entries()) == 1
