"""Tests for agent-health tracking and the poll circuit breaker."""

import pytest

from repro.core.health import AgentHealthTracker, HealthState
from repro.core.monitor import NetworkMonitor
from repro.experiments.testbed import build_testbed
from repro.simnet.faults import AgentOutage


class TestStateMachine:
    def tracker(self, **kw):
        return AgentHealthTracker(
            suspect_after=3, dead_after=5, recovery_successes=2, probe_interval=6.0, **kw
        )

    def test_starts_healthy(self):
        t = self.tracker()
        assert t.state("a") is HealthState.HEALTHY
        assert not t.is_dead("a")

    def test_ladder_down(self):
        t = self.tracker()
        expected = [
            HealthState.DEGRADED,  # 1 failure
            HealthState.DEGRADED,  # 2
            HealthState.SUSPECT,  # 3
            HealthState.SUSPECT,  # 4
            HealthState.DEAD,  # 5
            HealthState.DEAD,  # 6: stays dead
        ]
        for i, state in enumerate(expected):
            t.record_failure("a", float(i))
            assert t.state("a") is state

    def test_recovery_needs_consecutive_successes(self):
        t = self.tracker()
        for i in range(5):
            t.record_failure("a", float(i))
        assert t.is_dead("a")
        t.record_success("a", 10.0)
        assert t.state("a") is HealthState.DEGRADED  # one success is not enough
        t.record_failure("a", 11.0)  # flap: the streak restarts
        t.record_success("a", 12.0)
        assert t.state("a") is HealthState.DEGRADED
        t.record_success("a", 13.0)
        assert t.state("a") is HealthState.HEALTHY

    def test_healthy_agent_unaffected_by_success(self):
        t = self.tracker()
        for i in range(10):
            t.record_success("a", float(i))
        assert t.state("a") is HealthState.HEALTHY
        assert t.transitions == []

    def test_transitions_recorded_and_callbacks_fire(self):
        t = self.tracker()
        seen = []
        t.subscribe(seen.append)
        for i in range(5):
            t.record_failure("a", float(i))
        assert [tr.new for tr in t.transitions] == [
            HealthState.DEGRADED, HealthState.SUSPECT, HealthState.DEAD
        ]
        assert seen == t.transitions
        assert "dead" in str(t.transitions[-1])

    def test_counts_and_states(self):
        t = self.tracker()
        t.record_success("a", 0.0)
        for i in range(5):
            t.record_failure("b", float(i))
        assert t.count(HealthState.HEALTHY) == 1
        assert t.count(HealthState.DEAD) == 1
        assert t.states()["b"] is HealthState.DEAD
        assert t.nodes() == ["a", "b"]

    def test_validation(self):
        with pytest.raises(ValueError):
            AgentHealthTracker(suspect_after=0)
        with pytest.raises(ValueError):
            AgentHealthTracker(suspect_after=6, dead_after=5)
        with pytest.raises(ValueError):
            AgentHealthTracker(recovery_successes=0)
        with pytest.raises(ValueError):
            AgentHealthTracker(probe_interval=0.0)


class TestCircuitBreaker:
    def test_non_dead_always_polls(self):
        t = AgentHealthTracker()
        for i in range(4):
            t.record_failure("a", float(i))  # SUSPECT, not DEAD
        for now in (4.0, 4.1, 4.2):
            assert t.should_poll("a", now)
        assert t.polls_suppressed == 0

    def test_dead_agent_probed_slowly(self):
        t = AgentHealthTracker(probe_interval=6.0)
        for i in range(5):
            t.record_failure("a", float(i))  # DEAD at t=4
        # Probe clock starts at death: nothing until 4 + 6.
        assert not t.should_poll("a", 6.0)
        assert not t.should_poll("a", 9.9)
        assert t.should_poll("a", 10.0)
        # The granted probe restarts the clock.
        assert not t.should_poll("a", 12.0)
        assert t.should_poll("a", 16.0)
        assert t.polls_suppressed == 3


class TestMonitorIntegration:
    def test_outage_walks_the_ladder_and_recovers(self):
        build = build_testbed()
        monitor = NetworkMonitor(build, "L", poll_jitter=0.0)
        monitor.watch_path("S1", "N1")
        AgentOutage(build.network.sim, build.agents["S1"], at=6.0, until=30.0)
        monitor.start()
        build.network.run(50.0)

        states = [tr.new for tr in monitor.health.transitions if tr.node == "S1"]
        assert states[:3] == [
            HealthState.DEGRADED, HealthState.SUSPECT, HealthState.DEAD
        ]
        assert states[-1] is HealthState.HEALTHY
        # The circuit breaker suppressed at least one routine poll.
        assert monitor.poller.polls_suppressed > 0
        # And suppressed polls saved SNMP requests: during the open-circuit
        # window S1 was probed less often than every cycle.
        assert monitor.health.states()["S1"] is HealthState.HEALTHY
        assert monitor.agent_health()["S1"] == "healthy"

    def test_stats_expose_health_and_error_split(self):
        build = build_testbed()
        monitor = NetworkMonitor(build, "L", poll_jitter=0.0)
        AgentOutage(build.network.sim, build.agents["S1"], at=0.0, until=60.0)
        monitor.start()
        build.network.run(30.0)
        stats = monitor.stats()
        assert stats["poll_timeout_errors"] > 0
        assert stats["poll_errors"] >= stats["poll_timeout_errors"]
        assert stats["poll_error_responses"] == 0
        assert stats["agents_dead"] == 1
        assert stats["agents_healthy"] == len(monitor.poller.targets) - 1
        assert stats["polls_suppressed"] > 0
