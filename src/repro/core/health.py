"""Per-agent health tracking and circuit breaking.

The paper's monitor only ever met agents that answered.  A production
monitor meets agents that crash, hang, reboot and flap -- and must keep
producing useful answers while they do.  This module tracks each SNMP
agent's *reachability* through a small state machine driven by poll
outcomes:

    HEALTHY --fail--> DEGRADED --fail*--> SUSPECT --fail*--> DEAD
       ^                  |                                   |
       +---success*-------+ <----------success----------------+

- Any failure (a request that exhausted its retransmissions) moves the
  agent down the ladder; ``suspect_after`` / ``dead_after`` consecutive
  failures reach SUSPECT / DEAD.
- Any success while SUSPECT or DEAD returns the agent to DEGRADED; it
  must then string together ``recovery_successes`` consecutive successes
  to be HEALTHY again (hysteresis, so one lucky response during a flap
  does not clear the alarm).
- DEAD agents are **circuit-broken**: :meth:`AgentHealthTracker.should_poll`
  suppresses routine polls and admits only a slow re-probe every
  ``probe_interval`` seconds, so the manager stops burning timeout slots
  (and simulated bandwidth) hammering a corpse, yet still notices the
  moment it comes back.

Health is about *reachability*, not data quality: an agent that answers
with an SNMP error-status is alive (it counts as a success here) even
though the poller could not use the response.  Data quality -- staleness
of the rate samples -- is judged separately by the bandwidth calculator
(see :mod:`repro.core.bandwidth`).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

import logging

from repro.core.dataflow import EpochClock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.telemetry.events import EventBus

logger = logging.getLogger("repro.monitor")


class HealthState(Enum):
    HEALTHY = "healthy"
    DEGRADED = "degraded"  # at least one recent failure
    SUSPECT = "suspect"  # several consecutive failures
    DEAD = "dead"  # circuit open; only slow re-probes go out

    @property
    def usable(self) -> bool:
        """Whether fresh data from this agent is still expected."""
        return self is not HealthState.DEAD


@dataclass(frozen=True)
class HealthTransition:
    """One state change of one agent, for logs and tests."""

    node: str
    old: HealthState
    new: HealthState
    time: float
    consecutive_failures: int

    def __str__(self) -> str:
        return (
            f"[{self.time:.1f}s] {self.node}: {self.old.value} -> {self.new.value}"
            f" ({self.consecutive_failures} consecutive failure(s))"
        )


class AgentHealth:
    """Mutable health record of one agent."""

    __slots__ = (
        "node",
        "state",
        "consecutive_failures",
        "consecutive_successes",
        "total_failures",
        "total_successes",
        "last_success_time",
        "last_failure_time",
        "last_probe_time",
        "data_violations",
        "last_data_violation_time",
    )

    def __init__(self, node: str) -> None:
        self.node = node
        self.state = HealthState.HEALTHY
        self.consecutive_failures = 0
        self.consecutive_successes = 0
        self.total_failures = 0
        self.total_successes = 0
        self.last_success_time: Optional[float] = None
        self.last_failure_time: Optional[float] = None
        self.last_probe_time: Optional[float] = None
        # Data-*quality* strikes recorded by the integrity pipeline.
        # These never move the reachability state machine -- a lying
        # agent answers promptly -- but they feed cross-check suspicion
        # attribution and the status surfaces.
        self.data_violations = 0
        self.last_data_violation_time: Optional[float] = None


TransitionCallback = Callable[[HealthTransition], None]


class AgentHealthTracker:
    """Drives :class:`AgentHealth` records from poll outcomes.

    Thresholds:

    suspect_after / dead_after:
        Consecutive failures that reach SUSPECT / DEAD.
    recovery_successes:
        Consecutive successes a DEGRADED agent needs to be HEALTHY again.
    probe_interval:
        Seconds between re-probes of a DEAD agent (the circuit breaker's
        half-open probe cadence).
    """

    def __init__(
        self,
        suspect_after: int = 3,
        dead_after: int = 5,
        recovery_successes: int = 2,
        probe_interval: float = 6.0,
        events: Optional["EventBus"] = None,
    ) -> None:
        """``events``: optional :class:`~repro.telemetry.events.EventBus`;
        every state change is published on it as a ``health_transition``
        event in addition to the transition list and callbacks."""
        if not 1 <= suspect_after <= dead_after:
            raise ValueError(
                f"need 1 <= suspect_after <= dead_after, got "
                f"{suspect_after!r} / {dead_after!r}"
            )
        if recovery_successes < 1:
            raise ValueError(f"recovery_successes must be >= 1, got {recovery_successes!r}")
        if probe_interval <= 0:
            raise ValueError(f"non-positive probe interval {probe_interval!r}")
        self.suspect_after = suspect_after
        self.dead_after = dead_after
        self.recovery_successes = recovery_successes
        self.probe_interval = probe_interval
        self._agents: Dict[str, AgentHealth] = {}
        self._epochs = EpochClock()
        self.transitions: List[HealthTransition] = []
        self._callbacks: List[TransitionCallback] = []
        self.events = events
        self.polls_suppressed = 0

    # ------------------------------------------------------------------
    # Registration and lookup
    # ------------------------------------------------------------------
    def agent(self, node: str) -> AgentHealth:
        """The (auto-created) health record for ``node``."""
        record = self._agents.get(node)
        if record is None:
            record = self._agents[node] = AgentHealth(node)
        return record

    def state(self, node: str) -> HealthState:
        """Current state; unknown agents are optimistically HEALTHY."""
        record = self._agents.get(node)
        return record.state if record is not None else HealthState.HEALTHY

    def is_dead(self, node: str) -> bool:
        return self.state(node) is HealthState.DEAD

    def nodes(self) -> List[str]:
        return sorted(self._agents)

    def states(self) -> Dict[str, HealthState]:
        return {node: record.state for node, record in self._agents.items()}

    def count(self, state: HealthState) -> int:
        return sum(1 for r in self._agents.values() if r.state is state)

    @property
    def clock(self) -> int:
        """Global health clock: increases on every state transition."""
        return self._epochs.clock

    def epoch_of(self, node: str) -> int:
        """Transition epoch of one agent (0: never transitioned)."""
        return self._epochs.epoch(node)

    def subscribe(self, callback: TransitionCallback) -> None:
        self._callbacks.append(callback)

    # ------------------------------------------------------------------
    # Circuit breaker
    # ------------------------------------------------------------------
    def should_poll(self, node: str, now: float) -> bool:
        """Gate one routine poll of ``node`` at time ``now``.

        Non-DEAD agents always poll.  A DEAD agent is granted one probe
        per ``probe_interval``; everything else is suppressed (and
        counted in :attr:`polls_suppressed`).
        """
        record = self.agent(node)
        if record.state is not HealthState.DEAD:
            return True
        if (
            record.last_probe_time is None
            or now - record.last_probe_time >= self.probe_interval
        ):
            record.last_probe_time = now
            return True
        self.polls_suppressed += 1
        return False

    # ------------------------------------------------------------------
    # Outcome intake
    # ------------------------------------------------------------------
    def record_success(self, node: str, now: float) -> None:
        """A request to ``node`` produced *any* response (agent is alive)."""
        record = self.agent(node)
        record.total_successes += 1
        record.last_success_time = now
        record.consecutive_failures = 0
        record.consecutive_successes += 1
        new_state = record.state
        if record.state in (HealthState.DEAD, HealthState.SUSPECT):
            new_state = HealthState.DEGRADED
            record.consecutive_successes = 1
        if (
            new_state is HealthState.DEGRADED
            and record.consecutive_successes >= self.recovery_successes
        ):
            new_state = HealthState.HEALTHY
        self._move(record, new_state, now)

    def record_data_violation(self, node: str, now: float) -> None:
        """The integrity pipeline rejected data from ``node``.

        Deliberately does *not* touch the reachability state machine
        (the agent is alive -- it answered); it only annotates the
        record so cross-check attribution and operators can see which
        agents have a history of serving bad numbers.
        """
        record = self.agent(node)
        record.data_violations += 1
        record.last_data_violation_time = now

    def record_failure(self, node: str, now: float) -> None:
        """A request to ``node`` timed out after all retransmissions."""
        record = self.agent(node)
        record.total_failures += 1
        record.last_failure_time = now
        record.consecutive_successes = 0
        record.consecutive_failures += 1
        if record.consecutive_failures >= self.dead_after:
            new_state = HealthState.DEAD
        elif record.consecutive_failures >= self.suspect_after:
            new_state = HealthState.SUSPECT
        else:
            new_state = HealthState.DEGRADED
        self._move(record, new_state, now)

    def _move(self, record: AgentHealth, new_state: HealthState, now: float) -> None:
        if new_state is record.state:
            return
        old = record.state
        record.state = new_state
        self._epochs.bump(record.node)
        if new_state is HealthState.DEAD:
            # Start the probe clock at death so the first re-probe waits a
            # full interval instead of firing on the very next cycle.
            record.last_probe_time = now
            logger.warning(
                "agent %s is DEAD after %d consecutive failures; "
                "circuit open, re-probing every %.1fs",
                record.node, record.consecutive_failures, self.probe_interval,
            )
        elif old is HealthState.DEAD:
            logger.warning("agent %s responded again: %s", record.node, new_state.value)
        transition = HealthTransition(
            node=record.node,
            old=old,
            new=new_state,
            time=now,
            consecutive_failures=record.consecutive_failures,
        )
        self.transitions.append(transition)
        if self.events is not None:
            from repro.telemetry.events import HEALTH_TRANSITION

            self.events.publish(
                HEALTH_TRANSITION,
                now,
                node=record.node,
                old=old.value,
                new=new_state.value,
                consecutive_failures=record.consecutive_failures,
            )
        for callback in self._callbacks:
            callback(transition)


# ----------------------------------------------------------------------
# Worker leases (distributed monitoring plane)
# ----------------------------------------------------------------------
class WorkerState(Enum):
    """Liveness of one monitoring *worker*, judged from its heartbeats.

    Same ladder-with-hysteresis shape as :class:`HealthState`, but the
    signal is lease renewal (any datagram from the worker), not poll
    outcomes, and death has a side effect the agent machine never has:
    the coordinator fails the worker's poll targets over to survivors.
    """

    ALIVE = "alive"
    SUSPECT = "suspect"  # lease past the suspect threshold, not yet expired
    DEAD = "dead"  # lease expired; targets eligible for failover
    RECOVERING = "recovering"  # heard again after death; hysteresis pending


@dataclass(frozen=True)
class LeaseTransition:
    """One worker lease state change, for logs, tests and failover hooks."""

    worker: str
    old: WorkerState
    new: WorkerState
    time: float
    silence: float  # seconds since the last renewal when this fired

    def __str__(self) -> str:
        return (
            f"[{self.time:.1f}s] worker {self.worker}: "
            f"{self.old.value} -> {self.new.value} ({self.silence:.1f}s silent)"
        )


class WorkerLease:
    """Mutable lease record of one worker."""

    __slots__ = (
        "worker",
        "state",
        "last_beat",
        "beats",
        "recovery_streak",
        "expiries",
        "recoveries",
    )

    def __init__(self, worker: str, now: float) -> None:
        self.worker = worker
        self.state = WorkerState.ALIVE
        self.last_beat = now
        self.beats = 0
        self.recovery_streak = 0
        self.expiries = 0
        self.recoveries = 0


LeaseCallback = Callable[[LeaseTransition], None]


class WorkerLeaseTracker:
    """Per-worker lease state machine driven by heartbeats and a clock.

    ``beat`` renews a lease (heartbeats and sample batches both count --
    a worker shipping data is self-evidently alive); ``check`` is the
    coordinator's periodic sweep that expires silent leases:

        ALIVE --silent > suspect_after--> SUSPECT
               --silent > lease_timeout--> DEAD
        DEAD --beat--> RECOVERING --beats*--> ALIVE (hysteresis:
        ``recovery_beats`` consecutive renewals, so one datagram that
        crawled out of a healing partition does not trigger failback)
        RECOVERING --silent > lease_timeout--> DEAD (relapse)

    Transitions are appended to :attr:`transitions`, pushed to
    subscribers, published on the optional event bus as
    ``worker_transition`` events, and bump an :class:`EpochClock` so
    plane state is a legal dataflow input.
    """

    def __init__(
        self,
        lease_timeout: float = 6.0,
        suspect_after: float = 3.0,
        recovery_beats: int = 2,
        events: Optional["EventBus"] = None,
    ) -> None:
        if not 0 < suspect_after < lease_timeout:
            raise ValueError(
                f"need 0 < suspect_after < lease_timeout, got "
                f"{suspect_after!r} / {lease_timeout!r}"
            )
        if recovery_beats < 1:
            raise ValueError(f"recovery_beats must be >= 1, got {recovery_beats!r}")
        self.lease_timeout = lease_timeout
        self.suspect_after = suspect_after
        self.recovery_beats = recovery_beats
        self.events = events
        self._leases: Dict[str, WorkerLease] = {}
        self._epochs = EpochClock()
        self.transitions: List[LeaseTransition] = []
        self._callbacks: List[LeaseCallback] = []

    # -- registration and lookup ---------------------------------------
    def register(self, worker: str, now: float) -> WorkerLease:
        lease = self._leases.get(worker)
        if lease is None:
            lease = self._leases[worker] = WorkerLease(worker, now)
        return lease

    def lease(self, worker: str) -> WorkerLease:
        return self._leases[worker]

    def state(self, worker: str) -> WorkerState:
        return self._leases[worker].state

    def states(self) -> Dict[str, WorkerState]:
        return {name: lease.state for name, lease in self._leases.items()}

    def count(self, state: WorkerState) -> int:
        return sum(1 for l in self._leases.values() if l.state is state)

    def workers(self) -> List[str]:
        return sorted(self._leases)

    @property
    def clock(self) -> int:
        return self._epochs.clock

    def epoch_of(self, worker: str) -> int:
        return self._epochs.epoch(worker)

    def subscribe(self, callback: LeaseCallback) -> None:
        self._callbacks.append(callback)

    # -- intake ---------------------------------------------------------
    def beat(self, worker: str, now: float) -> None:
        """A datagram arrived from ``worker``: renew its lease."""
        lease = self.register(worker, now)
        lease.last_beat = now
        lease.beats += 1
        if lease.state is WorkerState.DEAD:
            lease.recovery_streak = 1
            self._move(lease, WorkerState.RECOVERING, now, 0.0)
        elif lease.state is WorkerState.RECOVERING:
            lease.recovery_streak += 1
            if lease.recovery_streak >= self.recovery_beats:
                lease.recoveries += 1
                self._move(lease, WorkerState.ALIVE, now, 0.0)
        elif lease.state is WorkerState.SUSPECT:
            self._move(lease, WorkerState.ALIVE, now, 0.0)

    def check(self, now: float) -> None:
        """Expire silent leases (the coordinator's periodic sweep)."""
        for lease in self._leases.values():
            silence = now - lease.last_beat
            if lease.state in (WorkerState.ALIVE, WorkerState.SUSPECT,
                               WorkerState.RECOVERING):
                if silence > self.lease_timeout:
                    lease.expiries += 1
                    lease.recovery_streak = 0
                    self._move(lease, WorkerState.DEAD, now, silence)
                elif lease.state is WorkerState.ALIVE and silence > self.suspect_after:
                    self._move(lease, WorkerState.SUSPECT, now, silence)

    # -- transition plumbing --------------------------------------------
    def _move(
        self, lease: WorkerLease, new_state: WorkerState, now: float, silence: float
    ) -> None:
        if new_state is lease.state:
            return
        old = lease.state
        lease.state = new_state
        self._epochs.bump(lease.worker)
        if new_state is WorkerState.DEAD:
            logger.warning(
                "worker %s lease expired after %.1fs of silence; "
                "poll targets eligible for failover", lease.worker, silence,
            )
        elif old is WorkerState.DEAD:
            logger.warning("worker %s is heartbeating again", lease.worker)
        transition = LeaseTransition(
            worker=lease.worker, old=old, new=new_state, time=now, silence=silence
        )
        self.transitions.append(transition)
        if self.events is not None:
            from repro.telemetry.events import WORKER_TRANSITION

            self.events.publish(
                WORKER_TRANSITION,
                now,
                worker=lease.worker,
                old=old.value,
                new=new_state.value,
                silence=round(silence, 3),
            )
        for callback in self._callbacks:
            callback(transition)
