"""Per-interface trust scores and quarantine with hysteresis.

Every measured interface carries a trust score in [0, 1] starting at
1.0.  Violations multiply it down hard, suspect findings (when their
check opts in) multiply it down gently, and clean polls add a fixed
recovery step.  An interface whose score falls below
``quarantine_below`` is quarantined -- its samples are withheld from the
:class:`~repro.core.poller.RateTable` so the staleness machinery
degrades dependent reports exactly as if the data were missing -- and
it is released only once the score climbs back above ``release_above``
(hysteresis prevents flapping at the threshold).

The asymmetry is deliberate: two violations at the default decay take a
pristine interface to 0.25 (quarantined within two bad polls), while
recovery needs six consecutive clean polls to cross 0.8.  Distrust is
cheap to earn and slow to shed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.dataflow import EpochClock
from repro.integrity.validators import IntegrityVerdict, Severity
from repro.telemetry.events import EventBus, QUARANTINE_ENTER, QUARANTINE_EXIT

Key = Tuple[str, int]


@dataclass
class TrustRecord:
    """Mutable trust state for one (node, ifIndex)."""

    score: float = 1.0
    quarantined: bool = False
    quarantined_since: Optional[float] = None
    violations: int = 0
    suspects: int = 0
    quarantines: int = 0
    releases: int = 0
    last_verdict: Optional[IntegrityVerdict] = None


class QuarantineManager:
    """Applies verdicts to trust scores and tracks quarantine state."""

    def __init__(
        self,
        quarantine_below: float = 0.3,
        release_above: float = 0.8,
        violation_decay: float = 0.5,
        suspect_decay: float = 0.7,
        recover_step: float = 0.1,
        events: Optional[EventBus] = None,
    ) -> None:
        if not 0.0 <= quarantine_below < release_above <= 1.0:
            raise ValueError(
                "need 0 <= quarantine_below < release_above <= 1, got"
                f" {quarantine_below!r} / {release_above!r}"
            )
        for name, value in (
            ("violation_decay", violation_decay),
            ("suspect_decay", suspect_decay),
        ):
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {value!r}")
        self.quarantine_below = quarantine_below
        self.release_above = release_above
        self.violation_decay = violation_decay
        self.suspect_decay = suspect_decay
        self.recover_step = recover_step
        self.events = events
        self._records: Dict[Key, TrustRecord] = {}
        # Epochs bump on quarantine enter/release only -- trust-score
        # drift between the thresholds does not change what the bandwidth
        # calculator sees, so it must not invalidate caches.
        self._epochs = EpochClock()

    @property
    def clock(self) -> int:
        """Global quarantine clock: increases on every enter/release."""
        return self._epochs.clock

    def epoch_of(self, node: str, if_index: int) -> int:
        """Enter/release epoch of one interface (0: never quarantined)."""
        return self._epochs.epoch((node, if_index))

    # ------------------------------------------------------------------
    def record(self, node: str, if_index: int) -> TrustRecord:
        return self._records.setdefault((node, if_index), TrustRecord())

    def trust(self, node: str, if_index: int) -> float:
        rec = self._records.get((node, if_index))
        return rec.score if rec is not None else 1.0

    def is_quarantined(self, node: str, if_index: int) -> bool:
        rec = self._records.get((node, if_index))
        return rec.quarantined if rec is not None else False

    def quarantined_keys(self) -> List[Key]:
        return sorted(k for k, r in self._records.items() if r.quarantined)

    def records(self) -> Dict[Key, TrustRecord]:
        return dict(self._records)

    # ------------------------------------------------------------------
    def apply(self, node: str, if_index: int, verdicts: Iterable[IntegrityVerdict], now: float) -> TrustRecord:
        """Decay trust per the verdicts, then update quarantine state."""
        rec = self.record(node, if_index)
        for verdict in verdicts:
            rec.last_verdict = verdict
            if verdict.severity is Severity.VIOLATION:
                rec.violations += 1
                if verdict.decays_trust:
                    rec.score *= self.violation_decay
            elif verdict.severity is Severity.SUSPECT:
                rec.suspects += 1
                if verdict.decays_trust:
                    rec.score *= self.suspect_decay
        self._update_state(node, if_index, rec, now)
        return rec

    def record_clean(self, node: str, if_index: int, now: float) -> TrustRecord:
        """A poll passed every validator: recover some trust."""
        rec = self.record(node, if_index)
        rec.score = min(1.0, rec.score + self.recover_step)
        self._update_state(node, if_index, rec, now)
        return rec

    # ------------------------------------------------------------------
    def _update_state(self, node: str, if_index: int, rec: TrustRecord, now: float) -> None:
        if not rec.quarantined and rec.score < self.quarantine_below:
            rec.quarantined = True
            rec.quarantined_since = now
            rec.quarantines += 1
            self._epochs.bump((node, if_index))
            if self.events is not None:
                self.events.publish(
                    QUARANTINE_ENTER,
                    now,
                    node=node,
                    if_index=if_index,
                    trust=round(rec.score, 4),
                )
        elif rec.quarantined and rec.score >= self.release_above:
            rec.quarantined = False
            since = rec.quarantined_since
            rec.quarantined_since = None
            rec.releases += 1
            self._epochs.bump((node, if_index))
            if self.events is not None:
                self.events.publish(
                    QUARANTINE_EXIT,
                    now,
                    node=node,
                    if_index=if_index,
                    trust=round(rec.score, 4),
                    held_seconds=round(now - since, 3) if since is not None else None,
                )
