"""Application-level resource management: the closed adaptation loop.

DeSiDeRaTa's purpose is "reallocation of resources to adapt the system to
achieve acceptable levels of QoS"; the paper's monitor supplies the
network metrics that make network-aware reallocation possible.  This
module closes the loop end to end:

1. the spec's ``application`` blocks declare programs, their host
   placements and their flows (``sends to tracker rate 300 KBps;``);
2. :class:`ApplicationRuntime` *deploys* them -- each flow becomes a real
   UDP stream between the placed hosts -- and watches each flow's network
   path with the monitor, deriving a QoS requirement from the declared
   rate plus headroom;
3. a violated flow is diagnosed and reallocation advice computed; with
   ``auto_move=True`` the runtime *executes* the best advice: it moves
   the application (stops its traffic, rebinds the watch, restarts the
   stream from/to the new host) and QoS recovers.

Everything the runtime does is visible in its event and move logs, so
experiments can assert the adaptation actually happened.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.monitor import NetworkMonitor
from repro.core.report import PathReport
from repro.rm.allocator import PlacementAdvice, ReallocationAdvisor
from repro.rm.detector import QosEvent, QosState, ViolationDetector
from repro.rm.diagnosis import BottleneckDiagnosis, diagnose
from repro.rm.qos import QosRequirement
from repro.simnet.trafficgen import StaircaseLoad, StepSchedule
from repro.topology.model import DeviceKind, TopologyError

logger = logging.getLogger("repro.rm")


@dataclass
class MoveEvent:
    """One executed reallocation."""

    time: float
    app: str
    from_host: str
    to_host: str
    reason: str

    def __str__(self) -> str:
        return (
            f"[{self.time:.1f}s] moved {self.app}: {self.from_host} -> "
            f"{self.to_host} ({self.reason})"
        )


@dataclass
class _Flow:
    src_app: str
    dst_app: str
    rate_bps: float  # bits/second (spec units)
    label: str
    requirement: QosRequirement = None  # type: ignore[assignment]
    detector: ViolationDetector = None  # type: ignore[assignment]
    generator: Optional[StaircaseLoad] = None


class ApplicationRuntime:
    """Deploy, monitor and (optionally) reallocate the spec's applications."""

    def __init__(
        self,
        build,
        monitor: NetworkMonitor,
        headroom: float = 1.3,
        breach_count: int = 2,
        clear_count: int = 2,
        auto_move: bool = False,
        move_cooldown: float = 10.0,
        payload_size: int = 1472,
    ) -> None:
        if headroom < 1.0:
            raise TopologyError(f"headroom must be >= 1, got {headroom!r}")
        self.build = build
        self.spec = build.spec
        self.network = build.network
        self.monitor = monitor
        self.headroom = headroom
        self.breach_count = breach_count
        self.clear_count = clear_count
        self.auto_move = auto_move
        self.move_cooldown = move_cooldown
        self.payload_size = payload_size
        self.placements: Dict[str, str] = {
            app.name: app.host for app in self.spec.applications
        }
        if not self.placements:
            raise TopologyError("the spec declares no applications")
        self._advisor = ReallocationAdvisor(self.spec, monitor.calculator)
        self._flows: Dict[str, _Flow] = {}
        for app in self.spec.applications:
            for flow_spec in app.flows:
                label = f"{app.name}->{flow_spec.dst_app}"
                self._flows[label] = _Flow(
                    src_app=app.name,
                    dst_app=flow_spec.dst_app,
                    rate_bps=flow_spec.rate_bps,
                    label=label,
                )
        self.events: List[QosEvent] = []
        self.diagnoses: List[BottleneckDiagnosis] = []
        self.moves: List[MoveEvent] = []
        self._last_move_at = float("-inf")
        self._started = False
        monitor.subscribe(self._on_report)

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Deploy every flow: traffic + watch + requirement + detector."""
        if self._started:
            raise TopologyError("runtime already started")
        self._started = True
        for flow in self._flows.values():
            self._bind_flow(flow)
            self._start_traffic(flow)

    def _bind_flow(self, flow: _Flow) -> None:
        src_host = self.placements[flow.src_app]
        dst_host = self.placements[flow.dst_app]
        self.monitor.watch_path(src_host, dst_host, name=flow.label)
        # The flow needs its own rate on the path, times headroom, in
        # bytes/second (monitor units).
        flow.requirement = QosRequirement(
            name=flow.label,
            src=src_host,
            dst=dst_host,
            min_available_bps=flow.rate_bps / 8.0 * self.headroom,
        )
        flow.detector = ViolationDetector(
            flow.requirement,
            breach_count=self.breach_count,
            clear_count=self.clear_count,
        )

    def _start_traffic(self, flow: _Flow) -> None:
        src_host = self.network.host(self.placements[flow.src_app])
        dst_ip = self.network.ip_of(self.placements[flow.dst_app])
        rate_bytes = flow.rate_bps / 8.0
        flow.generator = StaircaseLoad(
            src_host,
            dst_ip,
            StepSchedule([(self.network.now, rate_bytes)]),
            payload_size=self.payload_size,
        )
        flow.generator.start()

    # ------------------------------------------------------------------
    # Monitoring
    # ------------------------------------------------------------------
    def _on_report(self, report: PathReport) -> None:
        flow = self._flows.get(report.name or "")
        if flow is None or flow.detector is None:
            return
        event = flow.detector.offer(report)
        if event is None:
            return
        self.events.append(event)
        if event.state is not QosState.VIOLATED:
            return
        diagnosis = diagnose(self.spec, report)
        if diagnosis is not None:
            self.diagnoses.append(diagnosis)
        if self.auto_move:
            self._try_move(flow, diagnosis, event)

    def _try_move(self, flow: _Flow, diagnosis, event: QosEvent) -> None:
        now = self.network.now
        if now - self._last_move_at < self.move_cooldown:
            return
        src_host = self.placements[flow.src_app]
        dst_host = self.placements[flow.dst_app]
        occupied = set(self.placements.values())
        advice = self._advisor.advise(
            src_host,
            dst_host,
            diagnosis=diagnosis,
            min_available_bps=flow.requirement.min_available_bps or 0.0,
            time=now,
        )
        candidates = [
            a for a in advice if a.avoids_bottleneck and a.host not in occupied
        ]
        if not candidates:
            return
        self._last_move_at = now
        self.move(flow.dst_app, candidates[0].host, reason=event.reason or "violation")

    # ------------------------------------------------------------------
    # Reallocation
    # ------------------------------------------------------------------
    def move(self, app_name: str, new_host: str, reason: str = "operator") -> None:
        """Relocate an application and rebind everything it touches."""
        if app_name not in self.placements:
            raise TopologyError(f"unknown application {app_name!r}")
        node = self.spec.node(new_host)
        if node.kind is not DeviceKind.HOST:
            raise TopologyError(f"{new_host!r} is not a host")
        old_host = self.placements[app_name]
        if new_host == old_host:
            return
        self.placements[app_name] = new_host
        for flow in self._flows.values():
            if app_name not in (flow.src_app, flow.dst_app):
                continue
            if flow.generator is not None:
                flow.generator.stop()
            if self._started:
                self.monitor.unwatch_path(flow.label)
                self._bind_flow(flow)
                self._start_traffic(flow)
        move = MoveEvent(
            time=self.network.now,
            app=app_name,
            from_host=old_host,
            to_host=new_host,
            reason=reason,
        )
        self.moves.append(move)
        logger.warning("reallocation executed: %s", move)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def flow_labels(self) -> List[str]:
        return sorted(self._flows)

    def state_of(self, label: str) -> QosState:
        return self._flows[label].detector.state

    def placement_of(self, app_name: str) -> str:
        return self.placements[app_name]

    def format_log(self) -> str:
        lines = [str(e) for e in self.events] + [str(m) for m in self.moves]
        return "\n".join(lines) if lines else "(no events)"
