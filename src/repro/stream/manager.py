"""Subscription registry and fan-out with per-pair reverse indexing.

The manager owns every subscription and answers the publisher's only
hot-path question -- *who wants this pair?* -- from a reverse index
(pair -> subscriptions) plus a list of wildcard subscribers, so fan-out
cost is O(matching subscribers), never O(all subscribers).  With
thousands of subscribers each watching a handful of pairs, an event on
one pair touches only the few queues that asked for it.

Telemetry: the stream metric families are registered through
:func:`register_stream_metrics` (the monitor calls it unconditionally
so ``stats()`` keys resolve even with streaming disabled), and the
manager keeps them current as events flow.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.stream.events import StreamEvent, pair_key
from repro.stream.subscription import (
    DEFAULT_QUEUE_BOUND,
    OverflowPolicy,
    Subscription,
)

__all__ = ["StreamError", "SubscriptionManager", "register_stream_metrics"]

PairKey = Tuple[str, str]

SUBSCRIBERS_GAUGE = "stream_subscribers"
DELIVERED_TOTAL = "stream_events_delivered_total"
SUPPRESSED_TOTAL = "stream_events_suppressed_total"
DROPPED_TOTAL = "stream_events_dropped_total"


class StreamError(ValueError):
    """Raised for bad subscriptions or unknown subscribers."""


def register_stream_metrics(registry) -> None:
    """Create (get-or-create) the stream metric families."""
    registry.gauge(
        SUBSCRIBERS_GAUGE, "stream subscriptions currently registered"
    )
    registry.counter(
        DELIVERED_TOTAL, "stream events accepted into subscriber queues"
    )
    registry.counter(
        SUPPRESSED_TOTAL,
        "pair changes suppressed at the source by significance filters",
    )
    registry.counter(
        DROPPED_TOTAL,
        "stream events evicted or refused by subscriber queue bounds",
    )


class SubscriptionManager:
    """Registry + reverse-indexed fan-out for stream subscriptions."""

    def __init__(self, telemetry=None) -> None:
        self._subs: Dict[str, Subscription] = {}
        self._by_pair: Dict[PairKey, List[Subscription]] = {}
        self._wildcards: List[Subscription] = []
        self.events_suppressed = 0  # publisher reports filter suppressions here
        self._g_subs = None
        self._m_delivered = None
        self._m_suppressed = None
        self._m_dropped = None
        if telemetry is not None:
            registry = telemetry.registry
            register_stream_metrics(registry)
            self._g_subs = registry.gauge(SUBSCRIBERS_GAUGE)
            self._g_subs.set_function(lambda: float(len(self._subs)))
            self._m_delivered = registry.counter(DELIVERED_TOTAL)
            self._m_suppressed = registry.counter(SUPPRESSED_TOTAL)
            self._m_dropped = registry.counter(DROPPED_TOTAL)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def subscribe(
        self,
        name: str,
        pairs: Optional[Iterable[Tuple[str, str]]] = None,
        policy: OverflowPolicy = OverflowPolicy.DROP_OLDEST,
        bound: int = DEFAULT_QUEUE_BOUND,
        callback: Optional[Callable[[StreamEvent], None]] = None,
        deliver_unchanged: bool = False,
    ) -> Subscription:
        """Register one subscriber.

        ``pairs`` are unordered host pairs (order-normalised here);
        ``None`` subscribes to every pair the publisher covers.
        ``deliver_unchanged`` requires explicit pairs -- a per-cycle
        heartbeat over *all* pairs is snapshot polling again.
        """
        if name in self._subs:
            raise StreamError(f"subscription {name!r} already exists")
        normalised: Optional[Set[PairKey]] = None
        if pairs is not None:
            normalised = {pair_key(a, b) for a, b in pairs}
            if not normalised:
                raise StreamError(f"subscription {name!r} selects no pairs")
        if deliver_unchanged and normalised is None:
            raise StreamError(
                "deliver_unchanged needs an explicit pair set: a per-cycle "
                "heartbeat over every pair is snapshot polling again"
            )
        sub = Subscription(
            name,
            pairs=normalised,
            policy=policy,
            bound=bound,
            callback=callback,
            deliver_unchanged=deliver_unchanged,
        )
        self._subs[name] = sub
        if normalised is None:
            self._wildcards.append(sub)
        else:
            for key in normalised:
                self._by_pair.setdefault(key, []).append(sub)
        return sub

    def unsubscribe(self, name: str) -> None:
        try:
            sub = self._subs.pop(name)
        except KeyError:
            raise StreamError(f"no subscription {name!r}") from None
        if sub.pairs is None:
            self._wildcards.remove(sub)
        else:
            for key in sub.pairs:
                bucket = self._by_pair.get(key)
                if bucket is not None:
                    bucket.remove(sub)
                    if not bucket:
                        del self._by_pair[key]

    def get(self, name: str) -> Subscription:
        try:
            return self._subs[name]
        except KeyError:
            raise StreamError(f"no subscription {name!r}") from None

    def subscriptions(self) -> List[Subscription]:
        return [self._subs[name] for name in sorted(self._subs)]

    def __len__(self) -> int:
        return len(self._subs)

    def __contains__(self, name: str) -> bool:
        return name in self._subs

    # ------------------------------------------------------------------
    # Fan-out (publisher hot path)
    # ------------------------------------------------------------------
    def subscribers_of(self, pair: PairKey) -> List[Subscription]:
        """Every subscription that wants this pair (indexed + wildcards)."""
        indexed = self._by_pair.get(pair)
        if indexed is None:
            return self._wildcards if self._wildcards else []
        if not self._wildcards:
            return indexed
        return indexed + self._wildcards

    def deliver(self, event: StreamEvent) -> int:
        """Offer one event to every matching subscription.

        Returns the number of queues that accepted it.  Queue-bound
        refusals and evictions are counted into the dropped metric by
        the subscriptions themselves; this aggregates them.
        """
        accepted = 0
        for sub in self.subscribers_of(event.pair):
            if sub.deliver_unchanged:
                continue  # served exclusively by the per-cycle heartbeat
            if self._offer_counted(sub, event):
                accepted += 1
        return accepted

    def deliver_to(self, sub, event: StreamEvent) -> bool:
        """Offer one event to one subscription, with metric bookkeeping.

        The publisher uses this for targeted deliveries that do not fan
        out by pair: query events (owned by one subscriber), per-cycle
        heartbeats, and ``block``-policy resyncs.
        """
        return self._offer_counted(sub, event)

    def _offer_counted(self, sub, event: StreamEvent) -> bool:
        before_dropped = sub.events_dropped
        before_delivered = sub.events_delivered
        accepted = sub.offer(event)
        delivered_delta = sub.events_delivered - before_delivered
        if self._m_delivered is not None and delivered_delta:
            self._m_delivered.inc(delivered_delta)
        if self._m_dropped is not None and sub.events_dropped > before_dropped:
            self._m_dropped.inc(sub.events_dropped - before_dropped)
        return accepted

    def note_suppressed(self, count: int = 1) -> None:
        """The publisher suppressed ``count`` sub-deadband changes."""
        self.events_suppressed += count
        if self._m_suppressed is not None:
            self._m_suppressed.inc(count)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        delivered = sum(s.events_delivered for s in self._subs.values())
        dropped = sum(s.events_dropped for s in self._subs.values())
        return {
            "subscribers": len(self._subs),
            "delivered": delivered,
            "suppressed": self.events_suppressed,
            "dropped": dropped,
            "pending": sum(len(s) for s in self._subs.values()),
            "stalled": sum(1 for s in self._subs.values() if s.stalled),
        }
