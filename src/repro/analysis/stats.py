"""The paper's Table-2 accuracy statistics.

"The background traffic was calculated as the average of measured values
at [zero] generated load.  The average traffic was obtained for different
generated load by subtracting the background from the average of measured
traffic.  The average measured load less background was about 4 % larger
than the values of generated load. ... Table 2 also shows maximum
percentage error of individual value of measured traffic."

:func:`compute_table2` reproduces exactly that computation for any
generated-vs-measured :class:`~repro.experiments.scenarios.SeriesPair`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np


class StatsError(ValueError):
    """Raised when a series lacks the samples a statistic needs."""


# ----------------------------------------------------------------------
# Exact quantiles (ground truth for the telemetry estimators)
# ----------------------------------------------------------------------
def exact_quantile(values: Sequence[float], p: float) -> float:
    """The exact ``p``-quantile of ``values`` (linear interpolation).

    This is the batch answer the streaming estimators in
    :mod:`repro.telemetry.quantile` approximate in O(1) memory; tests
    compare the two.  Uses the same definition as ``numpy.quantile``'s
    default (``linear`` / Hyndman-Fan type 7).
    """
    if not 0.0 <= p <= 1.0:
        raise StatsError(f"quantile {p!r} outside [0, 1]")
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise StatsError("cannot take a quantile of an empty series")
    return float(np.quantile(arr, p))


def exact_quantiles(
    values: Sequence[float], ps: Sequence[float] = (0.5, 0.9, 0.99)
) -> Dict[float, float]:
    """``{p: exact p-quantile}`` for several probabilities at once."""
    return {p: exact_quantile(values, p) for p in ps}


def quantile_rank_error(values: Sequence[float], p: float, estimate: float) -> float:
    """How far ``estimate`` sits from the true ``p``-quantile, in rank space.

    Returns ``|empirical_rank(estimate) - p|``: 0.01 means the estimate
    is the 0.51-quantile when the 0.50-quantile was wanted.  Rank error
    is the right yardstick for streaming quantile estimators -- absolute
    value error is meaningless across differently-scaled distributions.
    """
    if not 0.0 <= p <= 1.0:
        raise StatsError(f"quantile {p!r} outside [0, 1]")
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise StatsError("cannot rank against an empty series")
    rank = float(np.count_nonzero(arr <= estimate)) / arr.size
    return abs(rank - p)


def background_estimate(
    measured: np.ndarray, generated: np.ndarray, stable: Optional[np.ndarray] = None
) -> float:
    """Mean measured traffic over the zero-generated-load samples."""
    measured = np.asarray(measured, dtype=float)
    generated = np.asarray(generated, dtype=float)
    mask = generated == 0
    if stable is not None:
        mask &= np.asarray(stable, dtype=bool)
    if not mask.any():
        raise StatsError("no zero-load samples to estimate background from")
    return float(np.mean(measured[mask]))


@dataclass(frozen=True)
class LevelStats:
    """One Table-2 row: statistics at one generated-load level (KB/s)."""

    generated: float
    n_samples: int
    avg_measured: float
    avg_less_background: float
    pct_error: float  # |avg_less_background - generated| / generated * 100
    max_pct_error: float  # worst single measurement at this level

    def row(self) -> str:
        return (
            f"{self.generated:9.1f} {self.avg_measured:14.3f} "
            f"{self.avg_less_background:19.3f} {self.pct_error:8.1f}% "
            f"{self.max_pct_error:10.1f}%"
        )


@dataclass(frozen=True)
class TrafficStatistics:
    """The full Table-2 analogue for one experiment run."""

    background: float  # KB/s at zero generated load
    levels: List[LevelStats]

    @property
    def mean_pct_error(self) -> float:
        """Average of the per-level average errors (the paper's 'about 4%',
        '3.7% on average values', '2.2%')."""
        if not self.levels:
            raise StatsError("no load levels measured")
        return float(np.mean([lv.pct_error for lv in self.levels]))

    @property
    def max_pct_error(self) -> float:
        """Worst individual measurement across all levels."""
        if not self.levels:
            raise StatsError("no load levels measured")
        return float(np.max([lv.max_pct_error for lv in self.levels]))

    def format_table(self, title: str = "Statistics of Measured Traffic Load (KB/s)") -> str:
        header = (
            f"{'Generated':>9} {'Avg Measured':>14} "
            f"{'Avg Less Background':>19} {'% Error':>9} {'Max % Err':>11}"
        )
        lines = [title, header, "-" * len(header)]
        lines.extend(level.row() for level in self.levels)
        lines.append("-" * len(header))
        lines.append(f"background traffic: {self.background:.3f} KB/s")
        lines.append(
            f"mean %err {self.mean_pct_error:.1f}%, max individual %err "
            f"{self.max_pct_error:.1f}%"
        )
        return "\n".join(lines)


def compute_table2(
    measured: np.ndarray,
    generated: np.ndarray,
    stable: Optional[np.ndarray] = None,
    levels: Optional[Sequence[float]] = None,
    min_samples: int = 2,
) -> TrafficStatistics:
    """Per-level accuracy statistics (the paper's Table 2 computation).

    Parameters
    ----------
    measured, generated:
        Aligned series (any rate unit, conventionally KB/s).
    stable:
        Optional boolean mask excluding samples that straddle a load
        transition (the paper averages within steady 60-second steps).
    levels:
        The generated-load levels to report.  Default: every distinct
        non-zero generated value.
    """
    measured = np.asarray(measured, dtype=float)
    generated = np.asarray(generated, dtype=float)
    if measured.shape != generated.shape:
        raise StatsError("measured and generated series must align")
    if stable is None:
        stable = np.ones(measured.shape, dtype=bool)
    else:
        stable = np.asarray(stable, dtype=bool)

    background = background_estimate(measured, generated, stable)

    if levels is None:
        levels = sorted(set(generated[(generated > 0) & stable].tolist()))
    rows: List[LevelStats] = []
    for level in levels:
        mask = (generated == level) & stable
        n = int(mask.sum())
        if n < min_samples:
            raise StatsError(
                f"only {n} stable samples at generated level {level!r} "
                f"(need {min_samples})"
            )
        values = measured[mask]
        avg = float(np.mean(values))
        less_bg = avg - background
        pct = abs(less_bg - level) / level * 100.0
        individual = np.abs((values - background) - level) / level * 100.0
        rows.append(
            LevelStats(
                generated=float(level),
                n_samples=n,
                avg_measured=avg,
                avg_less_background=less_bg,
                pct_error=float(pct),
                max_pct_error=float(np.max(individual)),
            )
        )
    return TrafficStatistics(background=background, levels=rows)
