"""Instantiate a live simulated network from a topology specification.

This is the bridge between the declarative world (spec files, the paper's
Figure 2 structures) and the executable one (:class:`repro.simnet.network.
Network`).  It also starts the SNMP agents on every node the spec marks
``snmp community "...";`` -- the simulated equivalent of "SNMP demons were
available on L, N1, N2, S1, S2, and the switch".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.snmp.agent import SnmpAgent
from repro.snmp.mib import CachingMibTree, build_mib2
from repro.topology.model import DeviceKind, TopologySpec
from repro.spec.validate import validate_spec


@dataclass
class BuildResult:
    """Everything a scenario needs after building a spec."""

    spec: TopologySpec
    network: Network
    agents: Dict[str, SnmpAgent] = field(default_factory=dict)

    def agent(self, node_name: str) -> SnmpAgent:
        try:
            return self.agents[node_name]
        except KeyError:
            raise KeyError(
                f"node {node_name!r} has no SNMP agent (not snmp-enabled in the spec)"
            ) from None


def build_network(
    spec: TopologySpec,
    sim: Optional[Simulator] = None,
    validate: bool = True,
    start_agents: bool = True,
    agent_seed: int = 0,
    announce_at: float = 0.0,
    counter_cache: float = 0.0,
) -> BuildResult:
    """Build a :class:`Network` (plus agents) from ``spec``.

    Node iteration order is the spec's declaration order, and every
    stochastic element is seeded, so identical specs build identical
    networks.
    """
    if validate:
        validate_spec(spec, strict=True)
    network = Network(sim)
    # Pass 1: devices.
    for node in spec.nodes:
        if node.kind is DeviceKind.HOST:
            host = network.add_host(
                node.name,
                os_label=node.os_label,
                n_interfaces=0,
                with_discard=True,
            )
            for iface_spec in node.interfaces:
                iface = network.add_host_interface(host, iface_spec.local_name,
                                                   iface_spec.speed_bps)
                iface.mtu = iface_spec.mtu
        elif node.kind is DeviceKind.SWITCH:
            port_speed = node.interfaces[0].speed_bps if node.interfaces else 100e6
            network.add_switch(
                node.name,
                n_ports=len(node.interfaces),
                port_speed_bps=port_speed,
                managed=node.snmp_enabled,
                stp=node.stp_enabled,
                stp_priority=int(node.attributes.get("stp_priority", 0x8000)),
            )
        elif node.kind is DeviceKind.HUB:
            speed = node.interfaces[0].speed_bps if node.interfaces else 10e6
            network.add_hub(node.name, n_ports=len(node.interfaces), speed_bps=speed)
        else:  # pragma: no cover - enum is closed
            raise AssertionError(f"unhandled kind {node.kind}")
    # Pass 2: connections.
    for conn in spec.connections:
        iface_a = _find_interface(network, conn.end_a.node, conn.end_a.interface)
        iface_b = _find_interface(network, conn.end_b.node, conn.end_b.interface)
        network.connect(iface_a, iface_b, bandwidth_bps=conn.bandwidth_bps)
    # Pass 2b: static routes for multi-homed hosts, derived from the
    # topology.  A host with several interfaces must know which one leads
    # to each destination; the spec holds exactly that information (and a
    # real deployment's route tables would be provisioned from it).
    _install_static_routes(spec, network)
    # Pass 3: SNMP agents.
    agents: Dict[str, SnmpAgent] = {}
    if start_agents:
        for node in spec.nodes:
            if not node.snmp_enabled:
                continue
            if node.kind is DeviceKind.HUB:
                # Dumb hubs cannot run agents; the validator warns earlier.
                continue
            endpoint = network.endpoint(node.name)
            device = network.device(node.name)
            mib = build_mib2(device, network.sim)
            # Counter staleness: the spec may set it per node with
            # `snmp_cache "0.5";`, else the builder default applies.
            # 0 disables caching (ideal, always-fresh agent).
            cache_interval = float(node.attributes.get("snmp_cache", counter_cache))
            if cache_interval > 0:
                mib = CachingMibTree(mib, network.sim, cache_interval)
            agents[node.name] = SnmpAgent(
                endpoint, mib, community=node.snmp_community, seed=agent_seed
            )
    network.announce_hosts(at=announce_at)
    return BuildResult(spec=spec, network=network, agents=agents)


def _find_interface(network: Network, node_name: str, local_name: str):
    device = network.device(node_name)
    return device.interface(local_name)


def _install_static_routes(spec: TopologySpec, network: Network) -> None:
    # Imported here: repro.core depends on this module at import time.
    from repro.core.traversal import NoPathError, find_path

    multihomed = [
        node for node in spec.nodes
        if node.kind is DeviceKind.HOST and len(node.interfaces) > 1
    ]
    if not multihomed:
        return
    host_names = [n.name for n in spec.nodes if n.kind is DeviceKind.HOST]
    for node in multihomed:
        host = network.host(node.name)
        for target_name in host_names:
            if target_name == node.name:
                continue
            try:
                path = find_path(spec, node.name, target_name)
            except NoPathError:
                continue
            if not path:
                continue
            first_ref = (
                path[0].end_a if path[0].end_a.node == node.name else path[0].end_b
            )
            out_iface = host.interface(first_ref.interface)
            for target_iface in network.host(target_name).interfaces:
                if target_iface.ip is not None:
                    host.add_route(target_iface.ip, 32, out_iface)
        # Management stacks are reachable targets too (SNMP to switches).
        for switch_name, stack in network.management.items():
            try:
                path = find_path(spec, node.name, switch_name)
            except NoPathError:
                continue
            if not path:
                continue
            first_ref = (
                path[0].end_a if path[0].end_a.node == node.name else path[0].end_b
            )
            host.add_route(stack.ip, 32, host.interface(first_ref.interface))
