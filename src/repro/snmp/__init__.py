"""A from-scratch SNMPv1/v2c implementation over the simulated LAN.

The paper monitors its network by "querying network components
periodically using the Simple Network Management Protocol (SNMP)".  This
package provides the full stack that made that possible:

- :mod:`repro.snmp.ber`       -- ASN.1 Basic Encoding Rules codec
  (RFC 1157 messages are BER-encoded on the wire; we encode/decode real
  bytes so SNMP traffic has its true size and loads the network).
- :mod:`repro.snmp.oid`       -- object-identifier value type.
- :mod:`repro.snmp.datatypes` -- SNMP values (INTEGER, OCTET STRING,
  Counter32, Gauge32, TimeTicks, ...).
- :mod:`repro.snmp.pdu`       -- protocol data units (Get/GetNext/GetBulk/
  Set/Response) and error-status codes.
- :mod:`repro.snmp.message`   -- the community-string message envelope.
- :mod:`repro.snmp.mib`       -- MIB tree plus the MIB-II system and
  interfaces groups (Table 1 of the paper) bound to live simulator
  counters, and a bridge-MIB forwarding table for topology discovery.
- :mod:`repro.snmp.agent`     -- the "SNMP demon" run by hosts and the
  switch.
- :mod:`repro.snmp.manager`   -- the polling client used by the monitor.
"""

from repro.snmp.agent import SnmpAgent
from repro.snmp.datatypes import (
    Counter32,
    Counter64,
    EndOfMibView,
    Gauge32,
    Integer,
    IpAddress,
    NoSuchInstance,
    NoSuchObject,
    Null,
    ObjectIdentifier,
    OctetString,
    TimeTicks,
)
from repro.snmp.errors import ErrorStatus, SnmpError, SnmpTimeout
from repro.snmp.manager import SnmpManager
from repro.snmp.mib import MibTree, build_mib2
from repro.snmp.oid import Oid

__all__ = [
    "Counter32",
    "Counter64",
    "EndOfMibView",
    "ErrorStatus",
    "Gauge32",
    "Integer",
    "IpAddress",
    "MibTree",
    "NoSuchInstance",
    "NoSuchObject",
    "Null",
    "ObjectIdentifier",
    "OctetString",
    "Oid",
    "SnmpAgent",
    "SnmpError",
    "SnmpManager",
    "SnmpTimeout",
    "TimeTicks",
    "build_mib2",
]
