"""Statistical confidence: the Table-2 claims across independent seeds.

A single seed could flatter the reproduction; this bench repeats a
compressed staircase across five seeds and reports the spread of the
headline quantities, asserting the bands EXPERIMENTS.md claims hold for
all of them.
"""

import numpy as np
import pytest

from repro.analysis.series import stable_mask
from repro.analysis.stats import compute_table2
from repro.experiments.scenarios import Scenario
from repro.simnet.trafficgen import KBPS, StepSchedule

SCHEDULE = StepSchedule(
    [(20.0, 100 * KBPS), (60.0, 300 * KBPS), (100.0, 0.0)]
)
RUN_UNTIL = 130.0
SEEDS = (0, 1, 2, 3, 4)


def run_seed(seed):
    scenario = Scenario(seed=seed)
    label = scenario.watch("S1", "N1")
    scenario.add_load("L", "N1", SCHEDULE)
    scenario.run(RUN_UNTIL)
    pair = scenario.series_pair(label, ["N1"])
    stable = stable_mask(pair.times, SCHEDULE, window=2.0, guard=1.0)
    return compute_table2(pair.measured_kbps, pair.generated_kbps, stable=stable)


def test_bench_table2_seed_variance(benchmark):
    def sweep():
        return [run_seed(seed) for seed in SEEDS]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    backgrounds = np.array([r.background for r in results])
    mean_errs = np.array([r.mean_pct_error for r in results])
    max_errs = np.array([r.max_pct_error for r in results])
    print(
        f"\nacross {len(SEEDS)} seeds: background "
        f"{backgrounds.mean():.2f}±{backgrounds.std():.2f} KB/s, "
        f"mean %err {mean_errs.mean():.2f}±{mean_errs.std():.2f}, "
        f"max %err {max_errs.mean():.1f}±{max_errs.std():.1f}"
    )
    # Every seed individually satisfies the claimed bands.
    assert (backgrounds > 0.1).all() and (backgrounds < 5.0).all()
    assert (mean_errs < 6.0).all()
    assert (max_errs < 30.0).all()
    # And every seed shows measured ABOVE generated (the header share).
    for result in results:
        for level in result.levels:
            assert level.avg_less_background > level.generated
