"""Regression gate: incremental dataflow vs naive full recomputation.

Drives repeated all-pairs snapshots of a ≥100-host generated topology
through both matrix modes.  Each round advances time, refreshes a few
interfaces (a realistic poll cycle touches a fraction of the network) and
takes several snapshots at the same instant -- the matrix is read by
multiple consumers per cycle (operator render, RM placement search,
telemetry export), which is exactly the sharing the incremental pipeline
exploits.

Asserts a ≥5x speedup with **bit-identical** reports, and writes
``BENCH_dataflow.json`` (speedup, cache hit rate, matrix latency p50/p99)
for the CI artifact upload.
"""

import json
import time as _time
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.core.bandwidth import BandwidthCalculator
from repro.core.matrix import BandwidthMatrix
from repro.core.poller import RateTable
from repro.experiments.scale import populate_rates, scale_spec
from repro.telemetry.quantile import P2Quantile

SPEEDUP_FLOOR = 5.0
ROUNDS = 12
SNAPSHOTS_PER_ROUND = 3  # one cycle, several consumers
TOUCHED_PER_ROUND = 3  # interfaces refreshed per poll cycle

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_dataflow.json"


def test_bench_dataflow_speedup_and_bit_identity():
    spec = scale_spec(
        switches=6, hosts_per_switch=18, arity=1, hub_pockets=2, hub_hosts=3
    )
    hosts = [n.name for n in spec.hosts()]
    assert len(hosts) >= 100, f"benchmark topology too small: {len(hosts)} hosts"

    rates = RateTable(keep_history=False)
    populate_rates(spec, rates, time=0.0)
    calculator = BandwidthCalculator(spec, rates, stale_after=6.0, dead_after=30.0)
    incremental = BandwidthMatrix(spec, calculator, incremental=True)
    naive = BandwidthMatrix(
        spec, calculator, incremental=False, graph=incremental.graph
    )

    # Warm both modes outside the timed region (path construction, first
    # full measurement pass).
    incremental.snapshot(0.5)
    naive.snapshot(0.5)

    p50 = P2Quantile(0.5)
    p99 = P2Quantile(0.99)
    keys = sorted(rates.keys())
    t = 0.5
    inc_seconds = 0.0
    naive_seconds = 0.0
    for round_no in range(ROUNDS):
        t += 2.0
        # Rotate which interfaces the "poll cycle" refreshed this round.
        start = (round_no * TOUCHED_PER_ROUND) % len(keys)
        for offset in range(TOUCHED_PER_ROUND):
            key = keys[(start + offset) % len(keys)]
            old = rates.latest(*key)
            rates.update(
                replace(
                    old,
                    time=t,
                    in_bytes_per_s=old.in_bytes_per_s * 1.07,
                    out_bytes_per_s=old.out_bytes_per_s * 1.07,
                )
            )
        inc_snaps = []
        for _ in range(SNAPSHOTS_PER_ROUND):
            begin = _time.perf_counter()
            inc_snaps.append(incremental.snapshot(t))
            elapsed = _time.perf_counter() - begin
            inc_seconds += elapsed
            p50.observe(elapsed)
            p99.observe(elapsed)
        naive_snaps = []
        for _ in range(SNAPSHOTS_PER_ROUND):
            begin = _time.perf_counter()
            naive_snaps.append(naive.snapshot(t))
            naive_seconds += _time.perf_counter() - begin
        # Bit-identity: every report, every snapshot, every metric.
        for inc_snap, naive_snap in zip(inc_snaps, naive_snaps):
            assert inc_snap.reports == naive_snap.reports
            assert np.array_equal(
                inc_snap.values(), naive_snap.values(), equal_nan=True
            )

    hits = calculator.cache_hits
    recomputes = calculator.recomputes
    hit_rate = hits / (hits + recomputes) if (hits + recomputes) else 0.0
    speedup = naive_seconds / inc_seconds if inc_seconds else float("inf")

    results = {
        "hosts": len(hosts),
        "pairs": len(incremental._paths),
        "rounds": ROUNDS,
        "snapshots_per_round": SNAPSHOTS_PER_ROUND,
        "incremental_seconds": round(inc_seconds, 6),
        "naive_seconds": round(naive_seconds, 6),
        "speedup": round(speedup, 3),
        "speedup_floor": SPEEDUP_FLOOR,
        "cache_hits": hits,
        "recomputes": recomputes,
        "cache_hit_rate": round(hit_rate, 6),
        "matrix_latency_p50_ms": round(p50.value * 1000.0, 3),
        "matrix_latency_p99_ms": round(p99.value * 1000.0, 3),
    }
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\ndataflow bench: {json.dumps(results, indent=2)}")

    assert hit_rate > 0.9, f"cache ineffective: hit rate {hit_rate:.3f}"
    assert speedup >= SPEEDUP_FLOOR, (
        f"incremental dataflow regression: {speedup:.2f}x < {SPEEDUP_FLOOR}x floor "
        f"(incremental {inc_seconds:.3f}s vs naive {naive_seconds:.3f}s)"
    )
