"""Unit tests for path traversal (paper §3.3)."""

import pytest

from repro.core.traversal import (
    NoPathError,
    find_all_paths,
    find_path,
    format_path,
    path_nodes,
)
from repro.spec.parser import parse_spec
from repro.topology.model import TopologyError

TREE = """
network topology tree {
    host S1 { } host N1 { } host L { }
    switch sw { ports 6; }
    hub hb { ports 4; }
    connect S1.eth0 <-> sw.port1;
    connect L.eth0 <-> sw.port2;
    connect sw.port3 <-> hb.port1;
    connect N1.eth0 <-> hb.port2;
}
"""

MESH = """
network topology mesh {
    host A { } host B { }
    switch s1 { ports 4; } switch s2 { ports 4; } switch s3 { ports 4; }
    connect A.eth0 <-> s1.port1;
    connect B.eth0 <-> s3.port1;
    connect s1.port2 <-> s2.port1;
    connect s2.port2 <-> s3.port2;
    connect s1.port3 <-> s3.port3;   # shortcut creating a loop
}
"""


class TestFindPath:
    def test_paper_path_s1_to_n1(self):
        """The paper's example: "S1 - switch - hub - N1"."""
        spec = parse_spec(TREE)
        path = find_path(spec, "S1", "N1")
        assert format_path(path, "S1") == "S1 -> sw -> hb -> N1"
        assert len(path) == 3

    def test_path_is_symmetric_in_length(self):
        spec = parse_spec(TREE)
        assert len(find_path(spec, "N1", "S1")) == len(find_path(spec, "S1", "N1"))

    def test_adjacent_hosts(self):
        spec = parse_spec(TREE)
        path = find_path(spec, "S1", "L")
        assert path_nodes(path, "S1") == ["S1", "sw", "L"]

    def test_same_host_empty_path(self):
        spec = parse_spec(TREE)
        assert find_path(spec, "S1", "S1") == []

    def test_no_path_raises(self):
        spec = parse_spec(
            "network topology t { host A { } host B { } host C { } "
            "connect A.eth0 <-> B.eth0; }"
        )
        with pytest.raises(NoPathError):
            find_path(spec, "A", "C")

    def test_unknown_nodes_raise(self):
        spec = parse_spec(TREE)
        with pytest.raises(TopologyError):
            find_path(spec, "ghost", "N1")
        with pytest.raises(TopologyError):
            find_path(spec, "S1", "ghost")

    def test_cyclic_topology_terminates(self):
        """The paper's 'necessary infinite-loop detecting function'."""
        spec = parse_spec(MESH)
        path = find_path(spec, "A", "B")
        nodes = path_nodes(path, "A")
        assert nodes[0] == "A" and nodes[-1] == "B"
        assert len(nodes) == len(set(nodes))  # simple path, no revisits

    def test_path_connections_chain(self):
        spec = parse_spec(TREE)
        path = find_path(spec, "S1", "N1")
        current = "S1"
        for conn in path:
            current = conn.other_end(current).node
        assert current == "N1"


class TestFindAllPaths:
    def test_tree_has_single_path(self):
        spec = parse_spec(TREE)
        assert len(find_all_paths(spec, "S1", "N1")) == 1

    def test_mesh_has_multiple_paths(self):
        spec = parse_spec(MESH)
        paths = find_all_paths(spec, "A", "B")
        assert len(paths) == 2
        lengths = sorted(len(p) for p in paths)
        assert lengths == [3, 4]

    def test_same_host(self):
        spec = parse_spec(TREE)
        assert find_all_paths(spec, "S1", "S1") == [[]]

    def test_max_paths_bound(self):
        spec = parse_spec(MESH)
        assert len(find_all_paths(spec, "A", "B", max_paths=1)) == 1

    def test_disconnected_gives_empty(self):
        spec = parse_spec(
            "network topology t { host A { } host B { } host C { } "
            "connect A.eth0 <-> B.eth0; }"
        )
        assert find_all_paths(spec, "A", "C") == []
