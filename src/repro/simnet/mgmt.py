"""In-band management stack for switches.

The paper polls the switch itself over SNMP ("SNMP demons were available
on L, N1, N2, S1, S2, *and the switch*").  A managed switch answers SNMP
from its management plane: frames addressed to the switch's own MAC/IP are
terminated locally instead of being forwarded.

:class:`ManagementStack` gives a :class:`~repro.simnet.switch.Switch` the
same socket-facing surface as a :class:`~repro.simnet.host.Host`
(``create_socket`` / ``send_udp`` / ``primary_ip`` / ``name`` / ``sim``),
so the SNMP agent code runs unchanged on hosts and switches.  Responses
leave through the switch's own forwarding fabric and therefore consume
real link bandwidth -- the source of part of the ~2 % measurement overhead
the paper attributes to "SNMP queries and acknowledgements".
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.simnet.address import IPv4Address, MacAddress
from repro.simnet.host import HostError
from repro.simnet.nic import Interface
from repro.simnet.packet import (
    EthernetFrame,
    IPPacket,
    PacketError,
    ReassemblyBuffer,
    UDPDatagram,
    fragment_ip_packet,
)
from repro.simnet.sockets import (
    EPHEMERAL_PORT_BASE,
    EPHEMERAL_PORT_MAX,
    SocketError,
    UDPSocket,
)
from repro.simnet.switch import Switch


class ManagementStack:
    """Host-like UDP/IP endpoint living inside a switch."""

    kind = "management"

    def __init__(self, switch: Switch, ip: IPv4Address, mac: MacAddress) -> None:
        self.switch = switch
        self.sim = switch.sim
        self.name = switch.name
        self.ip = ip
        self.mac = mac
        switch.management_ip = ip
        switch.management_mac = mac
        switch.set_management_handler(self._on_frame)
        self.network = switch.network
        self._sockets: Dict[int, UDPSocket] = {}
        self._next_ephemeral = EPHEMERAL_PORT_BASE
        self._reassembly = ReassemblyBuffer()
        self.udp_delivered = 0
        self.udp_no_port = 0

    # ------------------------------------------------------------------
    # Host-compatible surface
    # ------------------------------------------------------------------
    @property
    def primary_ip(self) -> IPv4Address:
        return self.ip

    def create_socket(self, port: int = 0) -> UDPSocket:
        if port == 0:
            port = self._pick_ephemeral()
        if port in self._sockets:
            raise SocketError(f"port {port} already bound on {self.name}")
        sock = UDPSocket(self, port)  # type: ignore[arg-type]
        self._sockets[port] = sock
        return sock

    def _pick_ephemeral(self) -> int:
        port = self._next_ephemeral
        while port in self._sockets:
            port += 1
            if port > EPHEMERAL_PORT_MAX:
                port = EPHEMERAL_PORT_BASE
        self._next_ephemeral = min(port + 1, EPHEMERAL_PORT_MAX)
        return port

    def _release_port(self, port: int) -> None:
        self._sockets.pop(port, None)

    def send_udp(
        self,
        src_port: int,
        dst_ip: IPv4Address,
        dst_port: int,
        payload: Optional[bytes] = None,
        payload_size: Optional[int] = None,
        tos: int = 0,
    ) -> bool:
        network = self.switch.network
        if network is None:
            raise HostError(f"switch {self.name} is not part of a Network")
        dst_mac = network.resolve_mac(dst_ip)
        datagram = UDPDatagram(
            src_port=src_port, dst_port=dst_port, payload=payload, payload_size=payload_size
        )
        packet = IPPacket(src=self.ip, dst=dst_ip, payload=datagram, tos=tos)
        # Management frames use the largest port MTU; all ports share one.
        mtu = self.switch.interfaces[0].mtu
        ok = True
        for frag in fragment_ip_packet(packet, mtu):
            frame = EthernetFrame(src=self.mac, dst=dst_mac, payload=frag)
            ok = self.switch.send_management_frame(None, frame) and ok
        return ok

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def _on_frame(self, in_port: Interface, frame: EthernetFrame) -> None:
        packet = frame.payload
        if packet.dst != self.ip and not frame.is_broadcast:
            return
        if packet.dst != self.ip:
            return  # broadcasts not for our IP are ignored at L3
        try:
            complete = self._reassembly.add(packet, self.sim.now)
        except PacketError:
            return
        if complete is None:
            return
        datagram = complete.payload
        assert datagram is not None
        sock = self._sockets.get(datagram.dst_port)
        if sock is None:
            self.udp_no_port += 1
            return
        self.udp_delivered += 1
        sock._deliver(
            datagram.payload,
            int(datagram.payload_size or 0),
            complete.src,
            datagram.src_port,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ManagementStack {self.name} ip={self.ip}>"
