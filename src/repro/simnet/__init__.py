"""Packet-level discrete-event LAN simulator.

This package is the physical-testbed substitute for the reproduction of
*Monitoring Network QoS in a Dynamic Real-Time System* (IPPS 2002).  The
paper evaluated its monitor on a real LAN (Figure 3: one 100 Mb/s switch,
one 10 Mb/s hub, nine hosts); here the same topology is built out of
simulated components that move individual Ethernet frames through FIFO
link queues and maintain the exact MIB-II interface counters that the
paper's SNMP poller reads.

Component overview
------------------
- :mod:`repro.simnet.engine`    -- event-heap scheduler and simulation clock.
- :mod:`repro.simnet.address`   -- MAC and IPv4 address value types.
- :mod:`repro.simnet.packet`    -- frames, IP packets, UDP datagrams,
  header-size accounting and MTU fragmentation.
- :mod:`repro.simnet.link`      -- point-to-point duplex links with finite
  bandwidth, propagation delay and bounded FIFO queues.
- :mod:`repro.simnet.nic`       -- network interfaces with MIB-II counters.
- :mod:`repro.simnet.host`      -- end hosts with a minimal UDP/IP stack.
- :mod:`repro.simnet.switch`    -- learning switch (per-port forwarding).
- :mod:`repro.simnet.hub`       -- repeating hub (shared medium, broadcast).
- :mod:`repro.simnet.sockets`   -- UDP socket API and the DISCARD service.
- :mod:`repro.simnet.trafficgen`-- the paper's UDP load generator plus
  background-chatter sources.
- :mod:`repro.simnet.network`   -- container wiring devices together.
"""

from repro.simnet.address import BROADCAST_MAC, IPv4Address, MacAddress
from repro.simnet.engine import Simulator
from repro.simnet.host import Host
from repro.simnet.hub import Hub
from repro.simnet.link import Link
from repro.simnet.network import Network
from repro.simnet.nic import Interface
from repro.simnet.packet import EthernetFrame, IPPacket, UDPDatagram
from repro.simnet.sockets import DISCARD_PORT, UDPSocket
from repro.simnet.switch import Switch
from repro.simnet.trafficgen import (
    BackgroundChatter,
    PoissonLoad,
    StaircaseLoad,
    StepSchedule,
)

__all__ = [
    "BROADCAST_MAC",
    "BackgroundChatter",
    "DISCARD_PORT",
    "EthernetFrame",
    "Host",
    "Hub",
    "IPPacket",
    "IPv4Address",
    "Interface",
    "Link",
    "MacAddress",
    "Network",
    "PoissonLoad",
    "Simulator",
    "StaircaseLoad",
    "StepSchedule",
    "Switch",
    "UDPDatagram",
    "UDPSocket",
]
