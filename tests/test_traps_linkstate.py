"""Tests for SNMP traps and link-state-aware monitoring."""

import pytest

from repro.core.monitor import NetworkMonitor
from repro.experiments.testbed import build_testbed
from repro.simnet.faults import LinkFailure
from repro.simnet.network import Network
from repro.snmp.agent import SnmpAgent
from repro.snmp.datatypes import Integer, TimeTicks
from repro.snmp.mib import build_mib2
from repro.snmp.trap import (
    TRAP_LINK_DOWN,
    TRAP_LINK_UP,
    TrapReceiver,
    build_trap_pdu,
    link_trap_pdu,
)
from repro.snmp.message import VERSION_2C, Message
from repro.snmp.pdu import Pdu


class TestTrapPdu:
    def test_link_trap_structure(self):
        pdu = link_trap_pdu(TimeTicks(500), if_index=3, up=False)
        assert pdu.kind == "trap"
        assert pdu.varbinds[0].value == TimeTicks(500)
        assert pdu.varbinds[1].value.value == TRAP_LINK_DOWN
        assert pdu.varbinds[2].value == Integer(3)

    def test_trap_roundtrips_through_ber(self):
        pdu = link_trap_pdu(TimeTicks(12345), if_index=7, up=True)
        raw = Message(VERSION_2C, "public", pdu).encode()
        decoded = Message.decode(raw)
        assert decoded.pdu.kind == "trap"
        assert decoded.pdu.varbinds[1].value.value == TRAP_LINK_UP


def trap_pair():
    net = Network()
    mon = net.add_host("L")
    target = net.add_host("S1")
    sw = net.add_switch("sw", 4, managed=False)
    net.connect(mon, sw)
    net.connect(target, sw)
    net.announce_hosts()
    agent = SnmpAgent(target, build_mib2(target, net.sim))
    events = []
    receiver = TrapReceiver(mon, callback=events.append)
    return net, mon, target, agent, receiver, events


class TestTrapDelivery:
    def test_link_down_trap_received(self):
        net, mon, target, agent, receiver, events = trap_pair()
        # Trap about a second interface so the transport link stays up.
        net.add_host_interface(target, "eth1")
        agent.enable_link_traps(mon.primary_ip)
        net.run(0.5)
        target.interfaces[1].set_admin_up(False)
        net.run(1.0)
        assert len(events) == 1
        event = events[0]
        assert event.is_link_down
        assert event.if_index() == 2
        assert event.source_ip == target.primary_ip

    def test_link_up_trap_received(self):
        net, mon, target, agent, receiver, events = trap_pair()
        net.add_host_interface(target, "eth1")
        agent.enable_link_traps(mon.primary_ip)
        target.interfaces[1].set_admin_up(False)
        net.run(0.5)
        target.interfaces[1].set_admin_up(True)
        net.run(1.0)
        assert [e.is_link_down for e in events] == [True, False]

    def test_no_transition_no_trap(self):
        net, mon, target, agent, receiver, events = trap_pair()
        agent.enable_link_traps(mon.primary_ip)
        target.interfaces[0].set_admin_up(True)  # already up
        net.run(1.0)
        assert events == []

    def test_trap_for_own_dead_uplink_is_lost(self):
        """A linkDown for the agent's only link cannot leave the host."""
        net, mon, target, agent, receiver, events = trap_pair()
        agent.enable_link_traps(mon.primary_ip)
        target.interfaces[0].set_admin_up(False)
        net.run(1.0)
        assert events == []  # the trap died with the link (realistic)
        assert agent.traps_sent == 1  # it was emitted, just never arrived

    def test_wrong_community_dropped(self):
        net, mon, target, agent, receiver, events = trap_pair()
        net.add_host_interface(target, "eth1")
        agent.enable_link_traps(mon.primary_ip, community="other")
        target.interfaces[1].set_admin_up(False)
        net.run(1.0)
        assert events == []
        assert receiver.bad_community == 1

    def test_garbage_counted_malformed(self):
        net, mon, target, agent, receiver, events = trap_pair()
        target.create_socket().sendto(b"junk", (mon.primary_ip, 162))
        net.run(1.0)
        assert receiver.malformed == 1

    def test_non_trap_pdu_counted_malformed(self):
        net, mon, target, agent, receiver, events = trap_pair()
        from repro.snmp.oid import Oid

        raw = Message(VERSION_2C, "public", Pdu.get_request(1, [Oid("1.3")])).encode()
        target.create_socket().sendto(raw, (mon.primary_ip, 162))
        net.run(1.0)
        assert receiver.malformed == 1


class TestLinkStateMonitoring:
    def failure_scenario(self):
        build = build_testbed()
        monitor = NetworkMonitor(build, "L", poll_jitter=0.0)
        label = monitor.watch_path("S1", "N1")
        registry = monitor.enable_trap_listener()
        return build, monitor, label, registry

    def test_downed_connection_zeroes_availability(self):
        build, monitor, label, registry = self.failure_scenario()
        net = build.network
        link = net.host("S1").interfaces[0].link
        LinkFailure(net.sim, link, at=10.0, until=20.0)
        monitor.start()
        net.run(12.0)
        report = monitor.current_report(label)
        assert report.available_bps == 0.0
        assert any(m.rule == "down" for m in report.connections)
        assert len(registry) == 1

    def test_recovery_restores_availability(self):
        build, monitor, label, registry = self.failure_scenario()
        net = build.network
        link = net.host("S1").interfaces[0].link
        LinkFailure(net.sim, link, at=10.0, until=20.0)
        monitor.start()
        net.run(30.0)
        report = monitor.current_report(label)
        assert report.available_bps > 1_000_000
        assert len(registry) == 0
        assert all(m.rule != "down" for m in report.connections)

    def test_detection_faster_than_polling(self):
        """The trap lands within milliseconds, not a poll interval."""
        build, monitor, label, registry = self.failure_scenario()
        net = build.network
        link = net.host("S1").interfaces[0].link
        LinkFailure(net.sim, link, at=10.0)
        monitor.start()
        net.run(10.1)  # one tenth of a 2 s poll interval later
        assert registry.down_connections(), "trap should beat the poller"

    def test_enable_idempotent(self):
        build, monitor, label, registry = self.failure_scenario()
        assert monitor.enable_trap_listener() is registry

    def test_unmapped_trap_counted(self):
        build, monitor, label, registry = self.failure_scenario()
        net = build.network
        # A trap about an unknown interface index.
        agent = build.agents["S1"]
        pdu = link_trap_pdu(TimeTicks(1), if_index=99, up=False)
        raw = Message(VERSION_2C, "public", pdu).encode()
        agent.socket.sendto(raw, (net.host("L").primary_ip, 162))
        net.run(1.0)
        assert registry.events_unmapped == 1
        assert len(registry) == 0

    def test_cold_start_style_trap_ignored_by_registry(self):
        build, monitor, label, registry = self.failure_scenario()
        net = build.network
        from repro.snmp.trap import TRAP_COLD_START

        agent = build.agents["S1"]
        pdu = build_trap_pdu(TimeTicks(0), TRAP_COLD_START)
        raw = Message(VERSION_2C, "public", pdu).encode()
        agent.socket.sendto(raw, (net.host("L").primary_ip, 162))
        net.run(1.0)
        assert len(monitor.trap_receiver.events) == 1
        assert registry.events_applied == 0
