"""repro.integrity -- measurement validation, cross-checks, quarantine.

The trust layer between the SNMP poller and the bandwidth calculator:
per-sample plausibility validators, a two-ended cross-checker exploiting
the topology's 1-to-1 connections, and a quarantine manager whose trust
scores decide which interfaces' samples may enter the rate table.
"""

from repro.integrity.crosscheck import (
    CrossChecker,
    CrossCheckFinding,
    CrossPair,
    extra_poll_indexes,
    two_ended_pairs,
)
from repro.integrity.pipeline import (
    IntegrityConfig,
    IntegrityPipeline,
    register_integrity_metrics,
)
from repro.integrity.quarantine import QuarantineManager, TrustRecord
from repro.integrity.validators import (
    IntegrityVerdict,
    RateBoundValidator,
    SampleContext,
    Severity,
    SpeedValidator,
    StuckCounterValidator,
    WrapRiskValidator,
    wrap_period_seconds,
)

__all__ = [
    "CrossChecker",
    "CrossCheckFinding",
    "CrossPair",
    "IntegrityConfig",
    "IntegrityPipeline",
    "IntegrityVerdict",
    "QuarantineManager",
    "RateBoundValidator",
    "SampleContext",
    "Severity",
    "SpeedValidator",
    "StuckCounterValidator",
    "TrustRecord",
    "WrapRiskValidator",
    "extra_poll_indexes",
    "register_integrity_metrics",
    "two_ended_pairs",
    "wrap_period_seconds",
]
