"""Two-level coordinator tree: leaf shards, root aggregation, failover.

The hierarchical plane must be observationally a DistributedMonitor --
same rate table, same report surface, same lease/ARQ behaviour -- while
routing every sample through a leaf coordinator first.  These tests
drive a small two-pod campus: end-to-end reports, shard affinity,
leaf-coordinator crash (re-adoption within three poll cycles, then
failback), uplink delta economics, and the root-facing worker surface
the leaves emulate.
"""

import pytest

from repro.core.hierarchy import HierarchicalMonitor, LeafCoordinator
from repro.experiments.scale import hierarchy_plan, scale_spec
from repro.simnet.faults import WorkerCrash
from repro.simnet.trafficgen import KBPS, StaircaseLoad, StepSchedule
from repro.spec.builder import build_network

PODS, SWITCHES, HOSTS = 2, 2, 3
POD_SWITCHES = [f"p{p}sw{s}" for p in range(PODS) for s in range(SWITCHES)]


def hierarchical(**kwargs):
    spec = scale_spec(
        hierarchical=PODS, switches=SWITCHES, hosts_per_switch=HOSTS,
        host_agents=False,
    )
    plan = hierarchy_plan(PODS, switches=SWITCHES, hosts_per_switch=HOSTS)
    build = build_network(spec)
    dm = HierarchicalMonitor(build, plan, poll_jitter=0.0, **kwargs)
    return build, dm


class TestShardLayout:
    def test_targets_stay_in_home_shard(self):
        """Affinity: a pod's switches are polled by that pod's shard, so
        poll traffic never crosses the core until aggregation."""
        build, dm = hierarchical()
        for p in range(PODS):
            mine = dm.targets_of(f"mon{p}")
            for s in range(SWITCHES):
                assert f"p{p}sw{s}" in mine
                assert f"p{p}sw{s}" not in dm.targets_of(f"mon{1 - p}")

    def test_every_switch_assigned_exactly_once(self):
        build, dm = hierarchical()
        owned = [t for leaf in dm.leaves for t in dm.targets_of(leaf)]
        assert sorted(t for t in owned if t in POD_SWITCHES) == sorted(POD_SWITCHES)
        assert len(owned) == len(set(owned))

    def test_empty_plan_rejected(self):
        spec = scale_spec(hierarchical=1, switches=1, hosts_per_switch=2,
                          host_agents=False)
        build = build_network(spec)
        with pytest.raises(ValueError):
            HierarchicalMonitor(build, {"root": "monroot", "shards": {}})

    def test_leaves_quack_like_workers(self):
        build, dm = hierarchical()
        for leaf in dm.leaves.values():
            assert isinstance(leaf, LeafCoordinator)
            assert leaf.assign_version >= 1  # seeded by the root ctor
            assert leaf.poller.targets  # the surface targets_of reads
            assert leaf.requests_sent == 0
            assert leaf.window_peak == 0


class TestEndToEnd:
    def test_reports_flow_through_the_tree(self):
        """Load in pod 0 reaches the root's report surface through the
        leaf aggregation path, and the report is trusted."""
        build, dm = hierarchical()
        label = dm.watch_path("p0h0_0", f"p{PODS - 1}h{SWITCHES - 1}_{HOSTS - 1}")
        reports = []
        dm.subscribe(reports.append)
        StaircaseLoad(
            build.network.host("p0h0_0"),
            build.network.ip_of(f"p{PODS - 1}h{SWITCHES - 1}_{HOSTS - 1}"),
            StepSchedule.pulse(4.0, 20.0, 64 * KBPS),
        ).start()
        dm.start()
        build.network.run(24.0)
        assert dm.samples_received > 0
        assert reports and any(r.trusted for r in reports)
        loaded = [r for r in reports if 8.0 <= r.time <= 20.0]
        assert loaded and max(r.bottleneck.used_bps for r in loaded) > 0
        stats = dm.stats()
        assert stats["shards"] == float(PODS)
        for p in range(PODS):
            assert stats[f"per_shard_exchanges.mon{p}"] > 0
        assert stats["decode_errors"] == 0.0
        dm.stop()

    def test_uplinks_ship_deltas(self):
        """Quiescent shards cost a fraction of the JSON baseline, with
        periodic keyframes bounding resync cost."""
        build, dm = hierarchical(keyframe_every=4)
        dm.start()
        build.network.run(20.0)
        stats = dm.stats()
        for p in range(PODS):
            assert stats[f"per_shard_keyframes.mon{p}"] >= 1
            assert stats[f"per_shard_delta_reduction.mon{p}"] > 0.3
        dm.stop()

    def test_pipelined_bulk_polling_inside_shards(self):
        build, dm = hierarchical(pipeline_window=2)
        dm.start()
        build.network.run(10.0)
        for leaf in dm.leaves.values():
            assert leaf.requests_sent > 0
            assert 1 <= leaf.window_peak <= 2
        dm.stop()


class TestLeafFailover:
    def test_leaf_crash_failover_and_failback(self):
        """The chaos acceptance scenario one level up: kill a leaf
        *coordinator* mid-run.  Its shard is re-adopted by the surviving
        leaf within three poll cycles; on restart the pod's targets come
        home."""
        build, dm = hierarchical()
        label = dm.watch_path("p1h0_0", "p1h1_0")  # pod 1: unaffected shard
        reports = []
        dm.subscribe(reports.append)
        net = build.network
        WorkerCrash(net.sim, dm.leaves["mon0"], at=10.0, until=25.0)
        dm.start()

        net.run(20.0)  # mid-crash
        assert dm.worker_states()["mon0"] == "dead"
        assert dm.stats()["failovers"] >= 1
        # Re-adoption: pod 0's switches now belong to the survivor, and
        # the survivor's own workers actually poll them.
        adopted = dm.targets_of("mon1")
        assert all(f"p0sw{s}" in adopted for s in range(SWITCHES))
        assert dm.assigned_targets_of("mon0") == []
        inner = [t for w in dm.leaves["mon1"].dm.workers.values()
                 for t in (tgt.node for tgt in w.poller.targets)]
        assert all(f"p0sw{s}" in inner for s in range(SWITCHES))

        net.run(40.0)  # restart at t=25, settle
        assert dm.worker_states() == {f"mon{p}": "alive" for p in range(PODS)}
        assert dm.stats()["rebalances"] >= 1
        # Failback: affinity pulls pod 0 home.
        home = dm.targets_of("mon0")
        assert all(f"p0sw{s}" in home for s in range(SWITCHES))
        late = [r for r in reports if r.time >= 30.0]
        assert late and all(r.trusted for r in late)
        assert dm.stats()["degraded_sources"] == 0.0
        dm.stop()

    def test_crash_leaves_inner_workers_polling(self):
        """A leaf crash kills the coordinator *process* only: the
        shard's worker hosts keep polling while the uplink is dark."""
        build, dm = hierarchical()
        dm.start()
        build.network.run(8.0)
        leaf = dm.leaves["mon0"]
        before = leaf.requests_sent
        leaf.crash()
        build.network.run(14.0)
        assert leaf.requests_sent > before  # inner workers still at it
        leaf.restart()
        assert leaf.incarnation == 2  # fresh uplink sequence space
        build.network.run(22.0)
        assert dm.worker_states()["mon0"] == "alive"
        dm.stop()

    def test_restarted_leaf_readopts_streams(self):
        """After a restart the leaf adopts its workers' mid-flight
        sequence streams rather than demanding history it never saw:
        no abandoned gaps, no permanently degraded sources."""
        build, dm = hierarchical()
        net = build.network
        WorkerCrash(net.sim, dm.leaves["mon0"], at=8.0, until=14.0)
        dm.start()
        net.run(30.0)
        stats = dm.stats()
        assert stats["degraded_sources"] == 0.0
        assert dm.worker_states()["mon0"] == "alive"
        # The root either never lost context or healed it via keyframe
        # requests -- both end with zero decode errors.
        assert stats["decode_errors"] == 0.0
        dm.stop()
