"""Continuous queries: standing predicates evaluated incrementally.

The application-facing query surface (after Al-Hawari & Manolakos's
runtime QoS service): instead of a consumer polling the matrix and
re-deriving "is the bandwidth to my peer still enough?" every cycle,
it registers a standing query once and receives
:class:`~repro.stream.events.QueryFired` / ``QueryCleared`` events when
the answer changes.  Queries hold O(pairs-touched) state and update in
O(1) per pair change -- never a rescan of history.

:class:`ThresholdQuery`
    "available on (A,B) < 20 Mbps for >= 2 samples": a comparison plus
    a consecutive-sample debounce, the stream twin of the RM detector's
    hysteresis.  Fires once when the streak reaches ``for_samples``,
    clears on the first non-matching sample.

:class:`PercentileQuery`
    "p90 utilization over the last 60 s": one
    :class:`~repro.telemetry.quantile.EwmaQuantile` estimator per pair,
    its weight derived from the window length so observations older
    than roughly one window carry little weight (the classic EWMA
    span ~ window equivalence) -- O(1) memory instead of a 60 s sample
    buffer.  The estimate is readable at any time
    (:meth:`PercentileQuery.value`), and with a ``threshold`` the query
    also fires/clears like a threshold query on the *estimate*.
    :meth:`PercentileQuery.prime` replays a
    :class:`~repro.core.history.PathSeries` window (served from the
    compressed tsdb) so a freshly-registered query starts from history
    instead of cold.

Queries see the pair's *raw* per-cycle values -- the publisher routes
every recomputed dirty pair to them before significance filtering, so
a deadband tuned for subscriber wake-ups never distorts a query's
statistics.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Tuple

from repro.core.report import PathReport
from repro.stream.events import pair_key
from repro.telemetry.quantile import EwmaQuantile

__all__ = ["ContinuousQuery", "PercentileQuery", "QueryError", "ThresholdQuery"]

PairKey = Tuple[str, str]

_METRICS: Dict[str, Callable[[PathReport], float]] = {
    "available": lambda r: r.available_bps,
    "used": lambda r: r.used_bps,
    "utilization": lambda r: (
        r.bottleneck.utilization if r.bottleneck is not None else 0.0
    ),
}

_OPS: Dict[str, Callable[[float, float], bool]] = {
    "<": lambda x, t: x < t,
    "<=": lambda x, t: x <= t,
    ">": lambda x, t: x > t,
    ">=": lambda x, t: x >= t,
}


class QueryError(ValueError):
    """Raised for malformed query definitions."""


class ContinuousQuery:
    """Base: name, metric extraction, pair selection, firing state."""

    def __init__(
        self,
        name: str,
        metric: str = "available",
        pairs: Optional[Tuple[Tuple[str, str], ...]] = None,
    ) -> None:
        if metric not in _METRICS:
            raise QueryError(
                f"unknown metric {metric!r}; pick from {sorted(_METRICS)}"
            )
        self.name = name
        self.metric = metric
        self._extract = _METRICS[metric]
        self.pairs: Optional[frozenset] = (
            frozenset(pair_key(a, b) for a, b in pairs) if pairs is not None else None
        )
        self._firing: Dict[PairKey, bool] = {}

    def wants(self, pair: PairKey) -> bool:
        return self.pairs is None or pair in self.pairs

    def firing(self, pair: Tuple[str, str]) -> bool:
        """Is the predicate currently holding for this pair?"""
        return self._firing.get(pair_key(*pair), False)

    def offer(self, pair: PairKey, report: PathReport) -> Optional[Tuple[str, float]]:
        """Feed one recomputed pair; ("fired"|"cleared", value) on change."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget all per-pair state (topology epoch bump)."""
        self._firing.clear()


class ThresholdQuery(ContinuousQuery):
    """``metric OP threshold`` sustained for >= ``for_samples`` samples."""

    def __init__(
        self,
        name: str,
        metric: str = "available",
        op: str = "<",
        threshold: float = 0.0,
        for_samples: int = 1,
        pairs: Optional[Tuple[Tuple[str, str], ...]] = None,
    ) -> None:
        if op not in _OPS:
            raise QueryError(f"unknown operator {op!r}; pick from {sorted(_OPS)}")
        if for_samples < 1:
            raise QueryError(f"for_samples must be >= 1, got {for_samples!r}")
        super().__init__(name, metric=metric, pairs=pairs)
        self.op = op
        self._compare = _OPS[op]
        self.threshold = threshold
        self.for_samples = for_samples
        self._streaks: Dict[PairKey, int] = {}

    def describe(self) -> str:
        tail = f" for >= {self.for_samples} samples" if self.for_samples > 1 else ""
        return f"{self.metric} {self.op} {self.threshold:g}{tail}"

    def offer(self, pair: PairKey, report: PathReport) -> Optional[Tuple[str, float]]:
        value = self._extract(report)
        matches = not math.isnan(value) and self._compare(value, self.threshold)
        if matches:
            streak = self._streaks.get(pair, 0) + 1
            self._streaks[pair] = streak
            if streak >= self.for_samples and not self._firing.get(pair, False):
                self._firing[pair] = True
                return ("fired", value)
            return None
        self._streaks[pair] = 0
        if self._firing.get(pair, False):
            self._firing[pair] = False
            return ("cleared", value)
        return None

    def reset(self) -> None:
        super().reset()
        self._streaks.clear()


class PercentileQuery(ContinuousQuery):
    """Windowed percentile of a metric, estimated in O(1) memory.

    ``window_s`` sets the effective look-back: the estimator's EWMA
    weight is ``2 / (window_s / interval_s + 1)`` (the span formula),
    so samples older than about one window have negligible influence.
    """

    def __init__(
        self,
        name: str,
        p: float = 0.9,
        metric: str = "utilization",
        window_s: float = 60.0,
        interval_s: float = 2.0,
        threshold: Optional[float] = None,
        op: str = ">",
        pairs: Optional[Tuple[Tuple[str, str], ...]] = None,
    ) -> None:
        if window_s <= 0 or interval_s <= 0 or window_s < interval_s:
            raise QueryError(
                f"need window_s >= interval_s > 0, got {window_s!r}/{interval_s!r}"
            )
        if op not in _OPS:
            raise QueryError(f"unknown operator {op!r}; pick from {sorted(_OPS)}")
        super().__init__(name, metric=metric, pairs=pairs)
        self.p = p
        self.window_s = window_s
        self.interval_s = interval_s
        self.threshold = threshold
        self.op = op
        self._compare = _OPS[op]
        self.weight = 2.0 / (window_s / interval_s + 1.0)
        self._estimators: Dict[PairKey, EwmaQuantile] = {}

    def describe(self) -> str:
        base = f"p{round(self.p * 100)}({self.metric}) over {self.window_s:g}s"
        if self.threshold is None:
            return base
        return f"{base} {self.op} {self.threshold:g}"

    def _estimator(self, pair: PairKey) -> EwmaQuantile:
        estimator = self._estimators.get(pair)
        if estimator is None:
            estimator = self._estimators[pair] = EwmaQuantile(self.p, self.weight)
        return estimator

    def value(self, pair: Tuple[str, str]) -> float:
        """Current percentile estimate for one pair (NaN: no samples)."""
        estimator = self._estimators.get(pair_key(*pair))
        return estimator.value if estimator is not None else math.nan

    def offer(self, pair: PairKey, report: PathReport) -> Optional[Tuple[str, float]]:
        sample = self._extract(report)
        if math.isnan(sample):
            return None  # an unavailable path contributes no statistics
        estimator = self._estimator(pair)
        estimator.observe(sample)
        if self.threshold is None:
            return None
        estimate = estimator.value
        matches = self._compare(estimate, self.threshold)
        if matches and not self._firing.get(pair, False):
            self._firing[pair] = True
            return ("fired", estimate)
        if not matches and self._firing.get(pair, False):
            self._firing[pair] = False
            return ("cleared", estimate)
        return None

    def prime(self, pair: Tuple[str, str], series, now: float) -> int:
        """Warm one pair's estimator from stored history.

        ``series`` is a :class:`~repro.core.history.PathSeries` (or any
        object with ``between(t0, t1)`` returning ``times()`` /
        ``column(field)`` arrays, i.e. a tsdb-backed view); the last
        ``window_s`` seconds before ``now`` are replayed in time order.
        Returns the number of samples replayed.
        """
        window = series.between(now - self.window_s, now)
        if self.metric == "utilization":
            capacity = window.column("capacity_bps")
            used = window.column("used_bps")
            values = [
                min(1.0, u / c) if c else 0.0 for u, c in zip(used, capacity)
            ]
        else:
            field = "available_bps" if self.metric == "available" else "used_bps"
            values = window.column(field)
        estimator = self._estimator(pair_key(*pair))
        primed = 0
        for value in values:
            if math.isnan(value):
                continue
            estimator.observe(float(value))
            primed += 1
        return primed

    def reset(self) -> None:
        super().reset()
        for estimator in self._estimators.values():
            estimator.reset()
