"""Unit tests for the topology model and graph."""

import pytest

from repro.topology.graph import TopologyGraph
from repro.topology.model import (
    ConnectionSpec,
    DeviceKind,
    InterfaceRef,
    InterfaceSpec,
    NodeSpec,
    QosPathSpec,
    TopologyError,
    TopologySpec,
)


def simple_spec():
    """A - sw - B plus a dangling host C."""
    return TopologySpec(
        name="t",
        nodes=[
            NodeSpec("A", interfaces=[InterfaceSpec("eth0")]),
            NodeSpec("B", interfaces=[InterfaceSpec("eth0")]),
            NodeSpec("C", interfaces=[InterfaceSpec("eth0")]),
            NodeSpec(
                "sw",
                kind=DeviceKind.SWITCH,
                interfaces=[InterfaceSpec(f"port{i}") for i in (1, 2, 3)],
            ),
        ],
        connections=[
            ConnectionSpec(InterfaceRef("A", "eth0"), InterfaceRef("sw", "port1")),
            ConnectionSpec(InterfaceRef("B", "eth0"), InterfaceRef("sw", "port2")),
        ],
    )


class TestModel:
    def test_interface_lookup(self):
        spec = simple_spec()
        assert spec.node("A").interface("eth0").speed_bps == 100e6
        with pytest.raises(TopologyError):
            spec.node("A").interface("nope")
        with pytest.raises(TopologyError):
            spec.node("nope")

    def test_duplicate_interface_names_rejected(self):
        with pytest.raises(TopologyError):
            NodeSpec("X", interfaces=[InterfaceSpec("e"), InterfaceSpec("e")])

    def test_self_connection_rejected(self):
        ref = InterfaceRef("A", "eth0")
        with pytest.raises(TopologyError):
            ConnectionSpec(ref, ref)

    def test_same_node_connection_rejected(self):
        with pytest.raises(TopologyError):
            ConnectionSpec(InterfaceRef("A", "e0"), InterfaceRef("A", "e1"))

    def test_other_end(self):
        conn = simple_spec().connections[0]
        assert conn.other_end("A") == InterfaceRef("sw", "port1")
        assert conn.other_end("sw") == InterfaceRef("A", "eth0")
        with pytest.raises(TopologyError):
            conn.other_end("B")

    def test_effective_bandwidth_min_rule(self):
        spec = TopologySpec(
            nodes=[
                NodeSpec("A", interfaces=[InterfaceSpec("e", speed_bps=100e6)]),
                NodeSpec(
                    "hub",
                    kind=DeviceKind.HUB,
                    interfaces=[InterfaceSpec("port1", speed_bps=10e6),
                                InterfaceSpec("port2", speed_bps=10e6)],
                ),
            ],
            connections=[ConnectionSpec(InterfaceRef("A", "e"), InterfaceRef("hub", "port1"))],
        )
        assert spec.effective_bandwidth(spec.connections[0]) == 10e6

    def test_effective_bandwidth_explicit_override(self):
        spec = simple_spec()
        conn = ConnectionSpec(
            InterfaceRef("C", "eth0"), InterfaceRef("sw", "port3"), bandwidth_bps=5e6
        )
        spec.connections.append(conn)
        assert spec.effective_bandwidth(conn) == 5e6

    def test_hosts_and_devices_partition(self):
        spec = simple_spec()
        assert {n.name for n in spec.hosts()} == {"A", "B", "C"}
        assert {n.name for n in spec.devices()} == {"sw"}

    def test_connections_of(self):
        spec = simple_spec()
        assert len(spec.connections_of("sw")) == 2
        assert len(spec.connections_of("C")) == 0

    def test_connection_at(self):
        spec = simple_spec()
        assert spec.connection_at(InterfaceRef("A", "eth0")) is spec.connections[0]
        assert spec.connection_at(InterfaceRef("C", "eth0")) is None

    def test_qos_path_validation(self):
        with pytest.raises(TopologyError):
            QosPathSpec("p", "A", "A")
        with pytest.raises(TopologyError):
            QosPathSpec("p", "A", "B", max_utilization=1.5)
        with pytest.raises(TopologyError):
            QosPathSpec("p", "A", "B", min_available_bps=-1)

    def test_qos_path_lookup(self):
        spec = simple_spec()
        spec.qos_paths.append(QosPathSpec("p", "A", "B", min_available_bps=1.0))
        assert spec.qos_path("p").src == "A"
        with pytest.raises(TopologyError):
            spec.qos_path("missing")


class TestGraph:
    def test_neighbors(self):
        graph = TopologyGraph(simple_spec())
        peers = {peer for _conn, peer in graph.neighbors("sw")}
        assert peers == {"A", "B"}
        assert graph.degree("C") == 0

    def test_unknown_node(self):
        graph = TopologyGraph(simple_spec())
        with pytest.raises(TopologyError):
            graph.neighbors("zzz")

    def test_reachability(self):
        graph = TopologyGraph(simple_spec())
        assert graph.reachable_from("A") == {"A", "sw", "B"}
        assert not graph.is_connected()  # C is stranded

    def test_cycle_detection(self):
        spec = simple_spec()
        graph = TopologyGraph(spec)
        assert not graph.has_cycle()
        # Add a second parallel path A <-> sw: that is a loop.
        spec.nodes[0].interfaces.append(InterfaceSpec("eth1"))
        spec.connections.append(
            ConnectionSpec(InterfaceRef("A", "eth1"), InterfaceRef("sw", "port3"))
        )
        assert TopologyGraph(spec).has_cycle()

    def test_networkx_export(self):
        graph = TopologyGraph(simple_spec()).to_networkx()
        assert set(graph.nodes) == {"A", "B", "C", "sw"}
        assert graph.number_of_edges() == 2
        assert graph.nodes["sw"]["kind"] == "switch"

    def test_shortest_hop_path(self):
        graph = TopologyGraph(simple_spec())
        assert graph.shortest_hop_path("A", "B") == ["A", "sw", "B"]
        assert graph.shortest_hop_path("A", "C") is None

    def test_connection_to_unknown_node_rejected(self):
        spec = simple_spec()
        spec.connections.append(
            ConnectionSpec(InterfaceRef("ghost", "e"), InterfaceRef("sw", "port3"))
        )
        with pytest.raises(TopologyError):
            TopologyGraph(spec)
