"""Unit tests for hosts: sockets, UDP stack, fragmentation, loopback."""

import pytest

from repro.simnet.address import IPv4Address
from repro.simnet.host import HostError
from repro.simnet.network import Network, NetworkError
from repro.simnet.sockets import DISCARD_PORT, SocketError


def two_hosts():
    net = Network()
    a = net.add_host("A")
    b = net.add_host("B")
    sw = net.add_switch("sw", 4, managed=False)
    net.connect(a, sw)
    net.connect(b, sw)
    net.announce_hosts()
    net.run(0.01)  # let announcements complete before the test acts
    return net, a, b


class TestSockets:
    def test_bound_port_delivery(self):
        net, a, b = two_hosts()
        got = []
        sock_b = b.create_socket(5000)
        sock_b.on_receive = lambda payload, size, ip, port: got.append((size, str(ip)))
        sock_a = a.create_socket()
        sock_a.sendto(100, (b.primary_ip, 5000))
        net.run(1.0)
        assert got == [(100, str(a.primary_ip))]

    def test_payload_bytes_arrive_intact(self):
        net, a, b = two_hosts()
        got = []
        sock_b = b.create_socket(5000)
        sock_b.on_receive = lambda payload, size, ip, port: got.append(payload)
        a.create_socket().sendto(b"hello world", (b.primary_ip, 5000))
        net.run(1.0)
        assert got == [b"hello world"]

    def test_source_port_visible_to_receiver(self):
        net, a, b = two_hosts()
        got = []
        sock_b = b.create_socket(5000)
        sock_b.on_receive = lambda payload, size, ip, port: got.append(port)
        sock_a = a.create_socket(6000)
        sock_a.sendto(10, (b.primary_ip, 5000))
        net.run(1.0)
        assert got == [6000]

    def test_unbound_port_counted(self):
        net, a, b = two_hosts()
        before = b.udp_no_port  # announcements also land on an unbound port
        a.create_socket().sendto(10, (b.primary_ip, 4444))
        net.run(1.0)
        assert b.udp_no_port == before + 1

    def test_port_collision_rejected(self):
        _, a, _ = two_hosts()
        a.create_socket(7000)
        with pytest.raises(SocketError):
            a.create_socket(7000)

    def test_close_releases_port(self):
        _, a, _ = two_hosts()
        sock = a.create_socket(7000)
        sock.close()
        a.create_socket(7000)  # no error

    def test_send_on_closed_socket_raises(self):
        _, a, b = two_hosts()
        sock = a.create_socket()
        sock.close()
        with pytest.raises(SocketError):
            sock.sendto(1, (b.primary_ip, 9))

    def test_ephemeral_ports_distinct(self):
        _, a, _ = two_hosts()
        ports = {a.create_socket().port for _ in range(20)}
        assert len(ports) == 20

    def test_socket_statistics(self):
        net, a, b = two_hosts()
        sock = a.create_socket()
        sock.sendto(100, (b.primary_ip, DISCARD_PORT))
        net.run(1.0)
        assert sock.datagrams_sent == 1
        assert sock.octets_sent == 100


class TestDiscard:
    def test_discard_service_counts(self):
        net, a, b = two_hosts()
        sock = a.create_socket()
        for _ in range(3):
            sock.sendto(500, (b.primary_ip, DISCARD_PORT))
        net.run(1.0)
        assert b.discard.datagrams == 3
        assert b.discard.octets == 1500


class TestFragmentationEndToEnd:
    def test_large_datagram_reassembled(self):
        net, a, b = two_hosts()
        got = []
        sock_b = b.create_socket(5000)
        sock_b.on_receive = lambda payload, size, ip, port: got.append(size)
        a.create_socket().sendto(5000, (b.primary_ip, 5000))
        net.run(1.0)
        assert got == [5000]

    def test_fragments_visible_on_wire(self):
        net, a, b = two_hosts()
        a.create_socket().sendto(5000, (b.primary_ip, DISCARD_PORT))
        net.run(1.0)
        # 5008 transport bytes, 1480 per fragment -> 4 frames on the wire.
        assert a.interfaces[0].counters.out_ucast_pkts == 4


class TestLoopback:
    def test_local_destination_bypasses_wire(self):
        net, a, _ = two_hosts()
        got = []
        sock = a.create_socket(5000)
        sock.on_receive = lambda payload, size, ip, port: got.append(size)
        before = a.interfaces[0].counters.out_octets
        a.create_socket().sendto(77, (a.primary_ip, 5000))
        net.run(1.0)
        assert got == [77]
        assert a.interfaces[0].counters.out_octets == before


class TestRouting:
    def test_multihomed_route_selection(self):
        net = Network()
        a = net.add_host("A", n_interfaces=2)
        b = net.add_host("B")
        c = net.add_host("C")
        sw1 = net.add_switch("sw1", 4, managed=False)
        sw2 = net.add_switch("sw2", 4, managed=False)
        net.connect(a.interfaces[0], sw1)
        net.connect(a.interfaces[1], sw2)
        net.connect(b, sw1)
        net.connect(c, sw2)
        a.add_route(c.primary_ip, 32, a.interfaces[1])
        net.announce_hosts()
        a.create_socket().sendto(100, (c.primary_ip, DISCARD_PORT))
        a.create_socket().sendto(100, (b.primary_ip, DISCARD_PORT))
        net.run(1.0)
        assert b.discard.datagrams == 1
        assert c.discard.datagrams == 1

    def test_route_must_use_own_interface(self):
        net = Network()
        a = net.add_host("A")
        b = net.add_host("B")
        with pytest.raises(HostError):
            a.add_route(b.primary_ip, 32, b.interfaces[0])


class TestHostErrors:
    def test_duplicate_interface_name(self):
        net = Network()
        a = net.add_host("A")
        with pytest.raises(HostError):
            net.add_host_interface(a, "eth0")

    def test_unknown_interface_lookup(self):
        net = Network()
        a = net.add_host("A")
        with pytest.raises(HostError):
            a.interface("eth9")

    def test_unknown_destination_ip(self):
        net, a, _ = two_hosts()
        with pytest.raises(NetworkError):
            a.create_socket().sendto(1, (IPv4Address("10.99.99.99"), 9))

    def test_misdelivered_unicast_refused(self):
        net, a, b = two_hosts()
        # Craft a frame to B's MAC but a foreign IP: B must not deliver it.
        from repro.simnet.packet import EthernetFrame, IPPacket, UDPDatagram

        packet = IPPacket(
            src=a.primary_ip,
            dst=IPv4Address("10.0.0.77"),
            payload=UDPDatagram(1, DISCARD_PORT, payload_size=10),
        )
        frame = EthernetFrame(a.interfaces[0].mac, b.interfaces[0].mac, packet)
        a.interfaces[0].transmit(frame)
        net.run(1.0)
        assert b.ip_forward_refused == 1
        assert b.discard.datagrams == 0
