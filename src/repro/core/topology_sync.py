"""Discovery-driven topology re-convergence (paper §5, made live).

The paper's monitor reads the topology once from the specification and
assumes it holds.  PR 8's :mod:`repro.core.discovery` cross-checked that
assumption on demand; this module closes the loop and keeps the
monitor's *active view* of the topology continuously in sync with what
the network itself reports, so that a spanning-tree failover (see
:mod:`repro.simnet.stp`) or a re-cabled host moves the measured paths
without an operator editing the spec.

:class:`TopologySync` runs two kinds of periodic rounds over genuine
SNMP traffic through the monitor's own manager (so its overhead is
visible to the measurements like any other management traffic):

**Light rounds** (every ``interval``) read ``dot1dStpPortState`` for
just the *inter-switch* ports -- one multi-varbind GET per switch, not
a table walk: spanning tree only ever blocks redundant uplinks, their
ifIndexes are known from the spec, and a whole-table walk would cost
several GETBULK exchanges per switch per poll cycle (the steady-state
overhead budget is <10 % of the monitoring load, see
``benchmarks/test_bench_topology.py``).  Ports reported non-forwarding
map (via the spec's ifIndex ordering) onto inter-switch connections,
and the set of those becomes the graph's blocked set
(:meth:`~repro.topology.graph.TopologyGraph.set_blocked`).
The graph bumps its topology epoch only when the set actually changes,
so an unchanged spanning tree re-synced every round costs nothing
downstream -- the **epoch-stability** guarantee consumers rely on.

**Full rounds** (every ``full_every``-th round) run a complete
:class:`~repro.core.discovery.TopologyDiscoverer` pass (identity, MACs,
FDB and STP walks) and diff the host->switch-port attachment picture
against the last one.  Agents in the result's ``unreachable`` set --
and hosts last seen behind an unreachable switch -- keep their
last-known attachments: "no data" is not "detached".  A genuine delta
flushes the path memos (auto epoch bump), retiring the manual
``invalidate_paths()`` contract for monitors that enable syncing.

Either kind of change publishes a ``topology_changed`` telemetry event
and, when streaming is enabled, a typed
:class:`~repro.stream.events.TopologyChanged` on the sentinel pair; the
monitor's next report cycle then re-resolves watched paths against the
new epoch and emits ``path_rerouted`` for the ones that moved.
"""

from __future__ import annotations

import logging
from typing import Dict, List, Optional, Set, Tuple

from repro.core.discovery import DiscoveryResult, TopologyDiscoverer
from repro.snmp.datatypes import EndOfMibView, NoSuchInstance, NoSuchObject
from repro.snmp.mib import DOT1D_STP_PORT_STATE
from repro.snmp.oid import Oid
from repro.telemetry.events import TOPOLOGY_CHANGED
from repro.topology.model import ConnectionSpec, DeviceKind

logger = logging.getLogger("repro.monitor")

# RFC 1493 dot1dStpPortState: only 5 carries traffic.
STP_STATE_FORWARDING = 5

# Varbind values that mean "no such row", not a port state.
_ABSENT = (NoSuchObject, NoSuchInstance, EndOfMibView)

DEFAULT_FULL_EVERY = 5


def register_topology_metrics(registry) -> None:
    """Create the topology-sync metric families (idempotent).

    Registered unconditionally by the monitor, like the stream and
    integrity families, so ``stats()`` keys resolve with syncing off.
    """
    registry.counter("topology_rounds_total", "topology sync rounds completed")
    registry.counter(
        "topology_full_rounds_total", "full (discovery) topology sync rounds"
    )
    registry.counter(
        "topology_changes_total", "active-topology changes applied by the sync loop"
    )
    registry.counter(
        "path_reroutes_total", "watched paths re-resolved onto different links"
    )
    registry.gauge(
        "topology_blocked_connections",
        "connections currently excluded from the active view",
    )


class TopologySync:
    """Keeps a monitor's topology graph in sync with the live network."""

    def __init__(
        self,
        monitor,
        interval: Optional[float] = None,
        full_every: int = DEFAULT_FULL_EVERY,
        community: str = "public",
    ) -> None:
        """``interval`` defaults to the monitor's poll interval (one sync
        round per poll cycle); ``full_every`` is the round period of the
        complete discovery pass (light STP-only rounds in between)."""
        if full_every < 1:
            raise ValueError(f"full_every must be >= 1, got {full_every!r}")
        self.monitor = monitor
        self.spec = monitor.spec
        self.graph = monitor.graph
        self.manager = monitor.manager
        self.sim = monitor.sim
        self.interval = monitor.poll_interval if interval is None else interval
        self.full_every = full_every
        self.community = community
        # Agents worth talking to: SNMP-enabled spec nodes the build
        # actually gave an agent (candidates for full discovery).
        self._candidates: List[Tuple[str, object]] = [
            (node.name, monitor.network.ip_of(node.name))
            for node in self.spec.nodes
            if node.snmp_enabled and node.name in monitor.build.agents
        ]
        self._switch_addresses: Dict[str, object] = {
            name: addr
            for name, addr in self._candidates
            if self.spec.node(name).kind is DeviceKind.SWITCH
        }
        # (switch name, ifIndex) -> the connection on that port.  The
        # builder numbers ifIndexes in spec declaration order, so this
        # mapping is exact by construction (same rule as if_index_of).
        self._conn_by_port: Dict[Tuple[str, int], ConnectionSpec] = {}
        for conn in self.spec.connections:
            for end in conn.endpoints():
                node = self.spec.node(end.node)
                if node.kind is not DeviceKind.SWITCH:
                    continue
                for i, iface in enumerate(node.interfaces):
                    if iface.local_name == end.interface:
                        self._conn_by_port[(end.node, i + 1)] = conn
                        break
        # Per switch, the ifIndexes of its inter-switch ports -- the
        # only rows a light round needs (STP never blocks edge ports in
        # this model, and the full round re-reads everything anyway).
        self._uplink_ports: Dict[str, List[int]] = {}
        for (switch, port), conn in sorted(self._conn_by_port.items()):
            if switch not in self._switch_addresses:
                continue
            if all(
                self.spec.node(end.node).kind is DeviceKind.SWITCH
                for end in conn.endpoints()
            ):
                self._uplink_ports.setdefault(switch, []).append(port)
        # Last-known state, preserved across unreachable agents.
        self._stp_states: Dict[Tuple[str, int], int] = {}
        self._attachments: Dict[str, Tuple[str, int]] = {}
        # The first full round establishes the attachment baseline; only
        # rounds after it can report the picture *changed*.
        self._attachments_known = False
        self._task = None
        self._round_no = 0
        self._inflight = 0
        self._round_states: Dict[Tuple[str, int], int] = {}
        self._round_failed: Set[str] = set()
        registry = monitor.telemetry.registry
        self._m_rounds = registry.counter(
            "topology_rounds_total", "topology sync rounds completed"
        )
        self._m_full = registry.counter(
            "topology_full_rounds_total", "full (discovery) topology sync rounds"
        )
        self._m_changes = registry.counter(
            "topology_changes_total",
            "active-topology changes applied by the sync loop",
        )
        self._m_blocked = registry.gauge(
            "topology_blocked_connections",
            "connections currently excluded from the active view",
        )
        self._m_blocked.set_function(
            lambda: float(len(self.graph.blocked_connections()))
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._task is not None

    def start(self, at: Optional[float] = None) -> None:
        if self._task is not None:
            return
        first = self.sim.now if at is None else at
        self._task = self.sim.call_every(self.interval, self.sync_now, start=first)
        logger.info(
            "topology sync started: interval %.2fs, full discovery every %d rounds, "
            "%d switch(es) / %d candidate agent(s)",
            self.interval, self.full_every,
            len(self._switch_addresses), len(self._candidates),
        )

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    # ------------------------------------------------------------------
    # Rounds
    # ------------------------------------------------------------------
    def sync_now(self) -> None:
        """Run one round (light, or full on the ``full_every`` cadence).

        Asynchronous: the walks complete through the manager's event
        loop and the result is applied when the last one lands.  A round
        still in flight when the next fires is skipped (slow agents must
        not pile up concurrent discovery).
        """
        if self._inflight > 0:
            return
        self._round_no += 1
        self._m_rounds.inc()
        if self.full_every > 0 and self._round_no % self.full_every == 0:
            self._full_round()
        else:
            self._light_round()

    def _light_round(self) -> None:
        """One GET of the uplink-port dot1dStpPortState rows per switch.

        A single request/response exchange per switch per round; switches
        with no inter-switch ports have nothing spanning tree could
        block and are skipped entirely.
        """
        if not self._uplink_ports:
            return
        self._round_states = {}
        self._round_failed = set()
        self._inflight = len(self._uplink_ports)
        base = Oid(DOT1D_STP_PORT_STATE)
        for name, ports in self._uplink_ports.items():

            def done(varbinds, switch=name):
                for vb in varbinds:
                    if isinstance(vb.value, _ABSENT):
                        continue  # e.g. STP off on that switch
                    arcs = vb.oid.strip_prefix(DOT1D_STP_PORT_STATE)
                    if len(arcs) == 1:
                        self._round_states[(switch, int(arcs[0]))] = int(vb.value.value)
                self._light_done()

            def failed(exc, switch=name):
                self._round_failed.add(switch)
                self._light_done()

            self.manager.get(
                self._switch_addresses[name],
                [base.extend(port) for port in ports],
                done,
                failed,
            )

    def _light_done(self) -> None:
        self._inflight -= 1
        if self._inflight > 0:
            return
        # Merge: rows the round actually fetched overwrite in place;
        # everything else (other switches' rows, non-uplink rows from
        # the last full round, rows behind an unreachable agent) keeps
        # its last-known value.
        merged = dict(self._stp_states)
        merged.update(self._round_states)
        self._stp_states = merged
        self._apply_stp_states()

    def _full_round(self) -> None:
        self._m_full.inc()
        self._inflight = 1
        discoverer = TopologyDiscoverer(
            self.manager,
            list(self._candidates),
            community=self.community,
            include_stp=True,
            use_bulk=True,
        )
        discoverer.discover(self._full_done)

    def _full_done(self, result: DiscoveryResult) -> None:
        self._inflight = 0
        # STP rows ride along with full discovery; same merge rule.
        merged = {
            key: state
            for key, state in self._stp_states.items()
            if key[0] in result.unreachable
        }
        for node in result.nodes.values():
            for port, state in node.stp_states.items():
                merged[(node.name, port)] = state
        self._stp_states = merged
        self._apply_stp_states()
        self._apply_attachments(result)

    # ------------------------------------------------------------------
    # Applying what the rounds learned
    # ------------------------------------------------------------------
    def _apply_stp_states(self) -> None:
        """Project port states onto the graph's blocked-connection set.

        Only inter-switch connections (the redundant uplinks spanning
        tree actually manages) are eligible: an edge port transiently
        reported blocking during its probe window must not partition its
        host out of the active view.  A connection is blocked when
        *either* end reports non-forwarding -- traffic cannot cross a
        port that discards it, whichever side does the discarding.
        """
        blocked: Dict[Tuple, ConnectionSpec] = {}
        for (switch, port), state in self._stp_states.items():
            if state == STP_STATE_FORWARDING:
                continue
            conn = self._conn_by_port.get((switch, port))
            if conn is None:
                continue
            ends = conn.endpoints()
            if any(
                self.spec.node(end.node).kind is not DeviceKind.SWITCH
                for end in ends
            ):
                continue
            blocked[ends] = conn
        if self.graph.set_blocked(blocked.values()):
            self._changed(
                reason="stp",
                detail=(
                    "blocked uplinks now: "
                    + (
                        ", ".join(str(c) for c in self.graph.blocked_connections())
                        or "none"
                    )
                ),
            )

    def _apply_attachments(self, result: DiscoveryResult) -> None:
        """Diff the discovered host->(switch, port) picture, merge gaps."""
        new_view: Dict[str, Tuple[str, int]] = {}
        for att in result.attachments:
            if att.shared_segment:
                continue  # hubs/uplinks carry no single-host placement
            # A spec-declared uplink port learns remote MACs through the
            # fabric; a single host showing behind it is NOT attached
            # there.  Only ports the spec wires to a host (or to nothing
            # -- a spare a moved host could plug into) place hosts.
            declared = self._conn_by_port.get((att.switch, att.port))
            if declared is not None:
                far = declared.other_end(att.switch)
                if self.spec.node(far.node).kind is not DeviceKind.HOST:
                    continue
            for host in att.known_nodes:
                new_view[host] = (att.switch, att.port)
        # Merge rule: a host missing from this round's picture keeps its
        # last-known attachment when the gap is explainable by an outage
        # (the host's own agent or its last-known switch is unreachable).
        for host, place in self._attachments.items():
            if host in new_view:
                continue
            if host in result.unreachable or place[0] in result.unreachable:
                new_view[host] = place
        if not self._attachments_known:
            self._attachments = new_view
            self._attachments_known = True
            return
        if new_view != self._attachments:
            moved = sorted(
                set(new_view.items()) ^ set(self._attachments.items())
            )
            self._attachments = new_view
            self.graph.invalidate_paths()
            self._changed(
                reason="attachment",
                detail="attachment delta: "
                + "; ".join(f"{h}@{s}:{p}" for h, (s, p) in moved[:8]),
            )

    def _changed(self, reason: str, detail: str) -> None:
        self._m_changes.inc()
        now = self.sim.now
        logger.warning("topology changed (%s): %s", reason, detail)
        self.monitor.telemetry.events.publish(
            TOPOLOGY_CHANGED,
            now,
            reason=reason,
            detail=detail,
            topology_epoch=self.graph.topology_epoch,
            blocked=len(self.graph.blocked_connections()),
        )
        stream = self.monitor.stream
        if stream is not None:
            from repro.stream.events import TOPOLOGY_PAIR, TopologyChanged

            stream.manager.deliver(
                TopologyChanged(
                    pair=TOPOLOGY_PAIR,
                    time=now,
                    epoch=stream.clock.epoch,
                    reason=reason,
                    detail=detail,
                    topology_epoch=self.graph.topology_epoch,
                    blocked=len(self.graph.blocked_connections()),
                )
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def attachments(self) -> Dict[str, Tuple[str, int]]:
        """Last-known host -> (switch, port) placements (full rounds)."""
        return dict(self._attachments)

    def stp_states(self) -> Dict[Tuple[str, int], int]:
        """Last-known (switch, ifIndex) -> dot1dStpPortState rows."""
        return dict(self._stp_states)

    def stats(self) -> Dict[str, float]:
        return {
            "rounds": self._m_rounds.value,
            "full_rounds": self._m_full.value,
            "changes": self._m_changes.value,
            "blocked": float(len(self.graph.blocked_connections())),
        }
