"""Shim for environments without the `wheel` package (offline installs).

`pip install -e . --no-build-isolation` needs wheel for PEP 660 editable
builds; this setup.py lets legacy `setup.py develop` installs work too.
All real metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
