"""Tests for the streaming subscription subsystem (``repro.stream``).

Covers the event surface, significance filters, bounded subscription
queues and their overflow policies (including the hypothesis property
that conflation always delivers the latest value per pair within the
queue bound), continuous queries, the matrix publisher's epoch
coherence, the monitor integration, and the guarantee that the RM
detector's hysteresis is bit-identical in stream and snapshot modes.
"""

import math
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bandwidth import BandwidthCalculator
from repro.core.matrix import BandwidthMatrix
from repro.core.monitor import NetworkMonitor
from repro.core.poller import RateTable
from repro.experiments.scale import populate_rates, scale_spec
from repro.experiments.testbed import MONITOR_HOST, build_testbed
from repro.rm.middleware import RmMiddleware
from repro.rm.qos import QosRequirement
from repro.simnet.trafficgen import KBPS, StaircaseLoad, StepSchedule
from repro.stream import (
    DeadbandFilter,
    MatrixPublisher,
    OverflowPolicy,
    PairChanged,
    PathDegraded,
    PathRestored,
    PercentileQuery,
    QuantileDeadbandFilter,
    QueryCleared,
    QueryError,
    QueryFired,
    StreamError,
    Subscription,
    SubscriptionManager,
    ThresholdQuery,
    pair_key,
)
from repro.telemetry import Telemetry

PAIR = ("a", "b")


def make_event(pair, value=0.0, epoch=1, time=0.0):
    """A light StreamEvent for queue tests (no PathReport needed)."""
    return QueryFired(pair=pair, time=time, epoch=epoch, query="q", value=value)


def make_publisher(significance=None, **spec_kw):
    """A publisher over a small generated topology, no simulator."""
    spec_kw.setdefault("switches", 2)
    spec_kw.setdefault("hosts_per_switch", 3)
    spec = scale_spec(**spec_kw)
    rates = RateTable(keep_history=False)
    populate_rates(spec, rates, time=0.0)
    calculator = BandwidthCalculator(spec, rates, stale_after=6.0, dead_after=30.0)
    matrix = BandwidthMatrix(spec, calculator)
    publisher = MatrixPublisher(matrix, significance=significance)
    return spec, rates, publisher


def touch(rates, key, t, factor=1.5):
    """Refresh one interface's sample, scaling its traffic by ``factor``."""
    old = rates.latest(*key)
    rates.update(
        replace(
            old,
            time=t,
            in_bytes_per_s=old.in_bytes_per_s * factor,
            out_bytes_per_s=old.out_bytes_per_s * factor,
        )
    )


# ----------------------------------------------------------------------
# Events
# ----------------------------------------------------------------------
class TestEvents:
    def test_pair_key_normalises_order(self):
        assert pair_key("b", "a") == ("a", "b")
        assert pair_key("a", "b") == ("a", "b")

    def test_kind_and_str(self):
        event = make_event(PAIR, value=5.0)
        assert event.kind == "QueryFired"
        assert "a<->b" in str(event)

    def test_events_are_frozen(self):
        event = make_event(PAIR)
        with pytest.raises(Exception):
            event.value = 1.0


# ----------------------------------------------------------------------
# Significance filters
# ----------------------------------------------------------------------
class TestDeadbandFilter:
    def test_first_observation_always_significant(self):
        f = DeadbandFilter(absolute_bps=1000.0)
        assert f.significant(PAIR, 5000.0)

    def test_moves_inside_deadband_suppressed(self):
        f = DeadbandFilter(absolute_bps=1000.0)
        f.significant(PAIR, 5000.0)
        f.delivered(PAIR, 5000.0)
        assert not f.significant(PAIR, 5500.0)
        assert f.significant(PAIR, 7000.0)

    def test_relative_deadband_scales_with_level(self):
        f = DeadbandFilter(relative=0.1)
        f.delivered(PAIR, 100_000.0)
        assert not f.significant(PAIR, 105_000.0)  # 5% move
        assert f.significant(PAIR, 120_000.0)  # 20% move

    def test_slow_drift_accumulates_against_anchor(self):
        # Each step is sub-deadband, but the anchor is the last
        # *delivered* value, so the drift eventually passes.
        f = DeadbandFilter(absolute_bps=1000.0)
        f.delivered(PAIR, 0.0)
        value, fired = 0.0, False
        for _ in range(10):
            value += 400.0
            if f.significant(PAIR, value):
                fired = True
                break
        assert fired

    def test_nan_flip_significant_steady_nan_not(self):
        f = DeadbandFilter(absolute_bps=1e12)  # nothing numeric passes
        f.delivered(PAIR, 5000.0)
        assert f.significant(PAIR, math.nan)  # value -> NaN: a flip
        f.delivered(PAIR, math.nan)
        assert not f.significant(PAIR, math.nan)  # steady NaN: nothing new
        assert f.significant(PAIR, 5000.0)  # NaN -> value: a flip

    def test_reset_forgets_anchor(self):
        f = DeadbandFilter(absolute_bps=1e12)
        f.delivered(PAIR, 5000.0)
        assert not f.significant(PAIR, 5000.0)
        f.reset()
        assert f.significant(PAIR, 5000.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            DeadbandFilter(absolute_bps=-1.0)
        with pytest.raises(ValueError):
            DeadbandFilter(relative=1.0)


class TestQuantileDeadbandFilter:
    def test_learns_jitter_and_suppresses_it(self):
        f = QuantileDeadbandFilter(q=0.9, factor=2.0, min_samples=8)
        base = 1_000_000.0
        # Teach the filter +-1000 B/s jitter (cold period: floor 0, so
        # the early jitter is delivered while the estimator warms).
        value = base
        for i in range(30):
            value = base + (1000.0 if i % 2 else -1000.0)
            if f.significant(PAIR, value):
                f.delivered(PAIR, value)
        assert f.noise_floor(PAIR) is not None
        # Routine jitter is now sub-deadband...
        assert not f.significant(PAIR, value + 1000.0)
        # ...but a genuine level shift far exceeds the learned quantile.
        assert f.significant(PAIR, base + 200_000.0)

    def test_floor_stands_in_while_cold(self):
        f = QuantileDeadbandFilter(floor_bps=5000.0, min_samples=100)
        f.delivered(PAIR, 10_000.0)
        f.significant(PAIR, 10_000.0)
        assert not f.significant(PAIR, 12_000.0)  # under the floor
        assert f.significant(PAIR, 20_000.0)

    def test_reset_clears_learned_state(self):
        f = QuantileDeadbandFilter(min_samples=2)
        for i in range(10):
            f.significant(PAIR, 1000.0 * i)
        assert f.noise_floor(PAIR) is not None
        f.reset()
        assert f.noise_floor(PAIR) is None
        assert f.significant(PAIR, 0.0)  # first observation again

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            QuantileDeadbandFilter(factor=0.0)
        with pytest.raises(ValueError):
            QuantileDeadbandFilter(min_samples=0)
        with pytest.raises(ValueError):
            QuantileDeadbandFilter(floor_bps=-1.0)


# ----------------------------------------------------------------------
# Subscription queues and overflow policies
# ----------------------------------------------------------------------
class TestDropOldest:
    def test_ring_evicts_oldest(self):
        sub = Subscription("s", policy=OverflowPolicy.DROP_OLDEST, bound=3)
        for i in range(5):
            assert sub.offer(make_event(PAIR, value=float(i), epoch=i + 1))
        assert len(sub) == 3
        assert sub.events_dropped == 2
        assert [e.value for e in sub.drain()] == [2.0, 3.0, 4.0]

    def test_epoch_gap_reveals_drops(self):
        sub = Subscription("s", policy=OverflowPolicy.DROP_OLDEST, bound=2)
        for epoch in range(1, 6):
            sub.offer(make_event(PAIR, epoch=epoch))
        epochs = [e.epoch for e in sub.drain()]
        assert epochs == [4, 5]  # non-consecutive from 1: cycles missed


class TestConflate:
    def test_newest_value_per_pair_wins_in_place(self):
        sub = Subscription("s", policy=OverflowPolicy.CONFLATE, bound=8)
        sub.offer(make_event(("a", "b"), value=1.0))
        sub.offer(make_event(("c", "d"), value=2.0))
        sub.offer(make_event(("a", "b"), value=3.0))  # replaces, keeps slot
        events = sub.drain()
        assert [(e.pair, e.value) for e in events] == [
            (("a", "b"), 3.0),
            (("c", "d"), 2.0),
        ]
        assert sub.events_conflated == 1

    def test_bound_evicts_oldest_pair(self):
        sub = Subscription("s", policy=OverflowPolicy.CONFLATE, bound=2)
        sub.offer(make_event(("a", "b"), value=1.0))
        sub.offer(make_event(("c", "d"), value=2.0))
        sub.offer(make_event(("e", "f"), value=3.0))
        assert len(sub) == 2
        assert [e.pair for e in sub.drain()] == [("c", "d"), ("e", "f")]
        assert sub.events_dropped == 1


class TestBlock:
    def test_refuses_and_stalls_at_bound(self):
        sub = Subscription("s", policy=OverflowPolicy.BLOCK, bound=2)
        assert sub.offer(make_event(("a", "b")))
        assert sub.offer(make_event(("c", "d")))
        assert not sub.offer(make_event(("e", "f")))
        assert sub.stalled
        assert sub.events_dropped == 1
        assert len(sub) == 2  # bound never exceeded

    def test_resync_only_after_drain(self):
        sub = Subscription("s", policy=OverflowPolicy.BLOCK, bound=1)
        sub.offer(make_event(("a", "b")))
        sub.offer(make_event(("c", "d")))  # refused
        assert sub.resync_pairs() == set()  # backlog not drained yet
        sub.drain()
        assert sub.resync_pairs() == {("c", "d")}
        sub.resynced()
        assert not sub.stalled
        assert sub.resync_pairs() == set()


class TestSubscriptionMisc:
    def test_callback_bypasses_queue(self):
        seen = []
        sub = Subscription("s", callback=seen.append)
        sub.offer(make_event(PAIR))
        assert len(seen) == 1
        assert len(sub) == 0

    def test_drain_limit(self):
        sub = Subscription("s", bound=10)
        for i in range(5):
            sub.offer(make_event(PAIR, epoch=i + 1))
        assert len(sub.drain(limit=2)) == 2
        assert len(sub) == 3

    def test_bound_must_be_positive(self):
        with pytest.raises(ValueError):
            Subscription("s", bound=0)


# Conflation property (satellite): whatever the event sequence, the
# queue never exceeds its bound and every drained event carries the
# latest value offered for its pair.
_pairs = st.sampled_from([("a", "b"), ("c", "d"), ("e", "f"), ("g", "h")])


class TestConflateProperty:
    @settings(max_examples=200, deadline=None)
    @given(
        offers=st.lists(
            st.tuples(_pairs, st.floats(0.0, 1e9, allow_nan=False)),
            max_size=120,
        ),
        bound=st.integers(min_value=1, max_value=4),
    )
    def test_latest_value_per_pair_within_bound(self, offers, bound):
        sub = Subscription("s", policy=OverflowPolicy.CONFLATE, bound=bound)
        latest = {}
        for epoch, (pair, value) in enumerate(offers, start=1):
            sub.offer(make_event(pair, value=value, epoch=epoch))
            latest[pair] = value
            assert len(sub) <= bound  # the invariant, at every step
        drained = sub.drain()
        assert len(drained) <= bound
        seen_pairs = set()
        for event in drained:
            assert event.pair not in seen_pairs  # one slot per pair
            seen_pairs.add(event.pair)
            assert event.value == latest[event.pair]  # newest wins


# ----------------------------------------------------------------------
# Subscription manager
# ----------------------------------------------------------------------
class TestManager:
    def test_duplicate_name_rejected(self):
        manager = SubscriptionManager()
        manager.subscribe("s")
        with pytest.raises(StreamError):
            manager.subscribe("s")

    def test_empty_pair_set_rejected(self):
        with pytest.raises(StreamError):
            SubscriptionManager().subscribe("s", pairs=[])

    def test_deliver_unchanged_needs_explicit_pairs(self):
        with pytest.raises(StreamError):
            SubscriptionManager().subscribe("s", deliver_unchanged=True)

    def test_reverse_index_routes_by_pair(self):
        manager = SubscriptionManager()
        ab = manager.subscribe("ab", pairs=[("a", "b")])
        cd = manager.subscribe("cd", pairs=[("c", "d")])
        wild = manager.subscribe("wild")
        manager.deliver(make_event(("a", "b")))
        assert len(ab) == 1 and len(cd) == 0 and len(wild) == 1

    def test_pair_order_normalised_on_subscribe(self):
        manager = SubscriptionManager()
        sub = manager.subscribe("s", pairs=[("b", "a")])
        manager.deliver(make_event(("a", "b")))
        assert len(sub) == 1

    def test_unsubscribe_removes_from_index(self):
        manager = SubscriptionManager()
        manager.subscribe("s", pairs=[("a", "b")])
        manager.unsubscribe("s")
        assert manager.deliver(make_event(("a", "b"))) == 0
        with pytest.raises(StreamError):
            manager.get("s")
        with pytest.raises(StreamError):
            manager.unsubscribe("s")

    def test_deliver_skips_heartbeat_subscriptions(self):
        # deliver_unchanged subscriptions are served exclusively by the
        # publisher's per-cycle heartbeat -- normal fan-out must not
        # double-deliver to them.
        manager = SubscriptionManager()
        hb = manager.subscribe(
            "hb", pairs=[("a", "b")], deliver_unchanged=True
        )
        assert manager.deliver(make_event(("a", "b"))) == 0
        assert len(hb) == 0

    def test_telemetry_counters_track_flow(self):
        telemetry = Telemetry(clock=lambda: 0.0)
        manager = SubscriptionManager(telemetry)
        manager.subscribe("s", pairs=[("a", "b")], bound=1)
        manager.deliver(make_event(("a", "b"), epoch=1))
        manager.deliver(make_event(("a", "b"), epoch=2))  # evicts under bound
        manager.note_suppressed(3)
        value = telemetry.registry.value
        assert value("stream_subscribers") == 1
        assert value("stream_events_delivered_total") == 2
        assert value("stream_events_dropped_total") == 1
        assert value("stream_events_suppressed_total") == 3
        stats = manager.stats()
        assert stats["subscribers"] == 1
        assert stats["suppressed"] == 3


# ----------------------------------------------------------------------
# Continuous queries
# ----------------------------------------------------------------------
def report_with_available(available_bps, time=0.0, src="a", dst="b"):
    """A one-connection PathReport with the given available bandwidth."""
    from repro.core.report import ConnectionMeasurement, PathReport
    from repro.topology.model import ConnectionSpec, InterfaceRef

    capacity = 10_000_000.0
    conn = ConnectionSpec(
        end_a=InterfaceRef(src, "eth0"),
        end_b=InterfaceRef(dst, "eth0"),
        bandwidth_bps=capacity,
    )
    return PathReport(
        src=src,
        dst=dst,
        time=time,
        name=f"{src}<->{dst}",
        connections=(
            ConnectionMeasurement(
                connection=conn,
                capacity_bps=capacity,
                used_bps=capacity - available_bps,
                source=None,
                rule="switch",
            ),
        ),
    )


class TestThresholdQuery:
    def test_fires_after_consecutive_samples_and_clears(self):
        query = ThresholdQuery(
            "low", metric="available", op="<", threshold=1000.0, for_samples=2
        )
        key = pair_key("a", "b")
        assert query.offer(key, report_with_available(500.0)) is None  # 1st
        outcome = query.offer(key, report_with_available(500.0))  # 2nd
        assert outcome == ("fired", 500.0)
        assert query.firing(key)
        assert query.offer(key, report_with_available(500.0)) is None  # held
        what, value = query.offer(key, report_with_available(5000.0))
        assert what == "cleared"
        assert not query.firing(key)

    def test_breach_streak_resets_on_healthy_sample(self):
        query = ThresholdQuery(
            "low", metric="available", op="<", threshold=1000.0, for_samples=2
        )
        key = pair_key("a", "b")
        query.offer(key, report_with_available(500.0))
        query.offer(key, report_with_available(5000.0))  # streak broken
        assert query.offer(key, report_with_available(500.0)) is None

    def test_describe_mentions_threshold(self):
        query = ThresholdQuery("q", op="<", threshold=20e6, for_samples=2)
        assert "available < 2e+07" in query.describe()

    def test_rejects_bad_definitions(self):
        with pytest.raises(QueryError):
            ThresholdQuery("q", metric="nope")
        with pytest.raises(QueryError):
            ThresholdQuery("q", op="!=")
        with pytest.raises(QueryError):
            ThresholdQuery("q", for_samples=0)


class TestPercentileQuery:
    def test_estimate_tracks_distribution(self):
        query = PercentileQuery(
            "p90", p=0.9, metric="available", window_s=60.0, interval_s=2.0
        )
        key = pair_key("a", "b")
        for i in range(200):
            query.offer(key, report_with_available(1000.0 + (i % 10) * 100.0))
        estimate = query.value(("a", "b"))
        assert 1000.0 <= estimate <= 1900.0
        assert estimate > 1400.0  # a p90 sits in the upper tail

    def test_threshold_fires_and_clears_on_estimate(self):
        query = PercentileQuery(
            "p50-low", p=0.5, metric="available", window_s=8.0,
            interval_s=2.0, threshold=1000.0, op="<",
        )
        key = pair_key("a", "b")
        fired = None
        for _ in range(30):
            fired = fired or query.offer(key, report_with_available(100.0))
        assert fired is not None and fired[0] == "fired"
        cleared = None
        for _ in range(60):
            cleared = cleared or query.offer(key, report_with_available(9e6))
        assert cleared is not None and cleared[0] == "cleared"

    def test_window_sets_ewma_weight(self):
        query = PercentileQuery("q", window_s=60.0, interval_s=2.0)
        assert query.weight == pytest.approx(2.0 / 31.0)

    def test_rejects_bad_window(self):
        with pytest.raises(QueryError):
            PercentileQuery("q", window_s=1.0, interval_s=2.0)

    def test_prime_from_monitor_history(self):
        build = build_testbed()
        monitor = NetworkMonitor(build, MONITOR_HOST, poll_jitter=0.0)
        label = monitor.watch_path("S1", "N1")
        monitor.start()
        build.network.run(30.0)
        query = PercentileQuery(
            "p90-util", p=0.9, metric="utilization", window_s=20.0,
            interval_s=2.0,
        )
        primed = query.prime(("S1", "N1"), monitor.history.series(label), 30.0)
        assert primed > 0
        # The stochastic estimator may overshoot a hair below the data
        # range on a flat near-zero series; it must stay in its vicinity.
        assert -0.1 <= query.value(("S1", "N1")) <= 1.0


# ----------------------------------------------------------------------
# The matrix publisher
# ----------------------------------------------------------------------
class TestPublisher:
    def test_first_publish_delivers_every_pair_one_epoch(self):
        spec, rates, publisher = make_publisher()
        sub = publisher.manager.subscribe("all", bound=1024)
        publisher.publish(0.5)
        events = sub.drain()
        measurable = sum(
            1 for r in publisher.matrix.snapshot(0.5).reports.values()
            if r is not None
        )
        assert len(events) == measurable
        assert {e.epoch for e in events} == {1}  # one coherent batch
        assert all(isinstance(e, PairChanged) for e in events)

    def test_quiet_cycle_emits_nothing(self):
        spec, rates, publisher = make_publisher()
        sub = publisher.manager.subscribe("all", bound=1024)
        publisher.publish(0.5)
        sub.drain()
        publisher.publish(2.5)  # no rate updates: no dirty pairs
        assert sub.drain() == []

    def test_only_dirty_pairs_become_events(self):
        spec, rates, publisher = make_publisher()
        sub = publisher.manager.subscribe("all", bound=1024)
        publisher.publish(0.5)
        sub.drain()
        key = sorted(rates.keys())[0]
        touch(rates, key, 2.0)
        publisher.publish(2.5)
        events = sub.drain()
        assert events, "a dirty connection must produce events"
        dirty = publisher.matrix.last_dirty_pairs
        assert {e.pair for e in events} <= {pair_key(*p) for p in dirty}
        assert {e.epoch for e in events} == {2}

    def test_epochs_strictly_increase_across_cycles(self):
        spec, rates, publisher = make_publisher()
        sub = publisher.manager.subscribe("all", bound=4096)
        key = sorted(rates.keys())[0]
        t = 0.5
        for round_no in range(4):
            touch(rates, key, t)
            publisher.publish(t + 0.1)
            t += 2.0
        epochs = [e.epoch for e in sub.drain()]
        assert epochs == sorted(epochs)
        assert publisher.clock.epoch == 4

    def test_status_transitions_always_delivered(self):
        spec, rates, publisher = make_publisher(
            significance=DeadbandFilter(absolute_bps=1e15)  # swallow values
        )
        sub = publisher.manager.subscribe("all", bound=4096)
        publisher.publish(0.5)
        sub.drain()
        key = sorted(rates.keys())[0]
        # Refresh one interface at t=2 (dirtying its pairs), then publish
        # far past stale_after: the dirty pairs recompute as degraded.
        touch(rates, key, 2.0, factor=1.0)
        publisher.publish(20.0)
        degraded = [e for e in sub.drain() if isinstance(e, PathDegraded)]
        assert degraded, "staleness crossing must emit PathDegraded"
        assert all(e.status == "degraded" for e in degraded)
        # Fresh samples on every interface restore the degraded paths
        # (a path is only fresh once all its connections are).
        for k in sorted(rates.keys()):
            touch(rates, k, 20.5, factor=1.0)
        publisher.publish(21.0)
        restored = [e for e in sub.drain() if isinstance(e, PathRestored)]
        assert {e.pair for e in restored} == {e.pair for e in degraded}

    def test_significance_filter_suppresses_jitter(self):
        # The fan-out benchmark's acceptance in miniature: once the
        # adaptive filter has learned a pair's jitter amplitude, pure
        # jitter rounds deliver zero PairChanged events.
        spec, rates, publisher = make_publisher(
            significance=QuantileDeadbandFilter(q=0.9, factor=3.0, min_samples=4)
        )
        sub = publisher.manager.subscribe("all", bound=8192)
        keys = sorted(rates.keys())
        t = 0.5
        publisher.publish(t)
        for round_no in range(12):  # learning rounds: +-0.01% jitter
            t += 2.0
            for key in keys:
                touch(rates, key, t, factor=1.0001 if round_no % 2 else 0.9999)
            publisher.publish(t + 0.1)
        sub.drain()
        before = publisher.manager.events_suppressed
        for round_no in range(4):  # measured rounds: same jitter
            t += 2.0
            for key in keys:
                touch(rates, key, t, factor=1.0001 if round_no % 2 else 0.9999)
            publisher.publish(t + 0.1)
        changed = [e for e in sub.drain() if isinstance(e, PairChanged)]
        assert changed == [], "learned jitter must be suppressed entirely"
        assert publisher.manager.events_suppressed > before
        # A genuine shift on one interface still gets through.
        touch(rates, keys[0], t + 2.0, factor=50.0)
        publisher.publish(t + 2.1)
        assert any(isinstance(e, PairChanged) for e in sub.drain())

    def test_topology_rebuild_rebaselines_filters(self):
        filt = QuantileDeadbandFilter(min_samples=2)
        spec, rates, publisher = make_publisher(significance=filt)
        sub = publisher.manager.subscribe("all", bound=8192)
        publisher.publish(0.5)
        first = len(sub.drain())
        assert first > 0
        publisher.matrix.graph.invalidate_paths()
        publisher.publish(2.5)
        assert publisher.filter_resets == 1
        # Every pair is redelivered: the filter forgot its anchors.
        assert len(sub.drain()) == first

    def test_heartbeat_subscription_gets_event_every_cycle(self):
        spec, rates, publisher = make_publisher()
        hosts = publisher.matrix.hosts
        pair = pair_key(hosts[0], hosts[1])
        seen = []
        publisher.manager.subscribe(
            "hb", pairs=[pair], callback=seen.append, deliver_unchanged=True
        )
        quiet = publisher.manager.subscribe("quiet", pairs=[pair])
        publisher.publish(0.5)
        publisher.publish(2.5)  # nothing dirty
        publisher.publish(4.5)
        assert [e.time for e in seen] == [0.5, 2.5, 4.5]
        assert len(quiet) == 1  # the change-only sub saw just the first

    def test_block_subscriber_resyncs_after_drain(self):
        spec, rates, publisher = make_publisher()
        sub = publisher.manager.subscribe(
            "slow", policy=OverflowPolicy.BLOCK, bound=2
        )
        first = publisher.publish(0.5)  # more pairs than the bound: stalls
        assert sub.stalled
        measurable = {
            pair_key(*p) for p, r in first.reports.items() if r is not None
        }
        # Stalled + full queue: a publish cycle cannot resync yet.
        publisher.publish(2.5)
        assert sub.stalled
        # Each drain frees the bound; resyncs arrive in bound-sized
        # slices until every missed pair has been re-delivered.
        seen = {e.pair for e in sub.drain()}
        t = 4.5
        for _ in range(40):
            publisher.publish(t)
            t += 2.0
            seen.update(e.pair for e in sub.drain())
            if not sub.stalled:
                break
        assert not sub.stalled, "resync must converge once drains resume"
        assert seen == measurable  # nothing was silently lost

    def test_query_events_route_to_owner(self):
        spec, rates, publisher = make_publisher()
        hosts = publisher.matrix.hosts
        pair = (hosts[0], hosts[1])
        owner = publisher.manager.subscribe("owner", pairs=[pair])
        other = publisher.manager.subscribe("other", pairs=[pair])
        publisher.register_query(
            ThresholdQuery(
                "always", metric="available", op=">", threshold=0.0,
                for_samples=1, pairs=[pair],
            ),
            "owner",
        )
        publisher.publish(0.5)
        owner_kinds = {e.kind for e in owner.drain()}
        other_kinds = {e.kind for e in other.drain()}
        assert "QueryFired" in owner_kinds
        assert "QueryFired" not in other_kinds

    def test_query_needs_existing_subscriber(self):
        spec, rates, publisher = make_publisher()
        with pytest.raises(StreamError):
            publisher.register_query(ThresholdQuery("q"), "nobody")

    def test_duplicate_query_name_rejected(self):
        spec, rates, publisher = make_publisher()
        publisher.manager.subscribe("s")
        publisher.register_query(ThresholdQuery("q"), "s")
        with pytest.raises(ValueError):
            publisher.register_query(ThresholdQuery("q"), "s")

    def test_stats_surface(self):
        spec, rates, publisher = make_publisher()
        publisher.manager.subscribe("s")
        publisher.publish(0.5)
        stats = publisher.stats()
        assert stats["cycles"] == 1
        assert stats["epoch"] == 1
        assert stats["subscribers"] == 1
        assert stats["delivered"] > 0


class TestSlowSubscriberSoak:
    def test_memory_stays_bounded_under_sustained_load(self):
        # A subscriber that never drains must hold O(bound) events no
        # matter how many cycles flow past it.
        spec, rates, publisher = make_publisher()
        conflate = publisher.manager.subscribe(
            "dash", policy=OverflowPolicy.CONFLATE, bound=8
        )
        ring = publisher.manager.subscribe(
            "log", policy=OverflowPolicy.DROP_OLDEST, bound=16
        )
        keys = sorted(rates.keys())
        t = 0.5
        publisher.publish(t)
        for round_no in range(60):
            t += 2.0
            for key in keys:
                touch(rates, key, t, factor=1.1 if round_no % 2 else 0.95)
            publisher.publish(t + 0.1)
            assert len(conflate) <= 8
            assert len(ring) <= 16
        assert conflate.events_delivered + conflate.events_conflated > 60
        assert ring.events_dropped > 0
        assert conflate.high_watermark <= 8
        assert ring.high_watermark <= 16


# ----------------------------------------------------------------------
# Monitor integration
# ----------------------------------------------------------------------
class TestMonitorIntegration:
    def test_enable_streaming_publishes_each_cycle(self):
        build = build_testbed()
        monitor = NetworkMonitor(build, MONITOR_HOST, poll_jitter=0.0)
        publisher = monitor.enable_streaming()
        assert monitor.enable_streaming() is publisher  # idempotent
        sub = publisher.manager.subscribe("ui", bound=4096)
        monitor.start()
        build.network.run(20.0)
        assert publisher.cycles >= 8
        events = sub.drain()
        assert events
        stats = monitor.stats()
        assert stats["stream_subscribers"] == 1
        assert stats["stream_events_delivered"] >= len(events)
        assert stats["stream_events_suppressed"] > 0  # filter at work

    def test_stats_keys_resolve_without_streaming(self):
        build = build_testbed()
        monitor = NetworkMonitor(build, MONITOR_HOST)
        stats = monitor.stats()
        assert stats["stream_subscribers"] == 0
        assert stats["stream_events_delivered"] == 0
        assert stats["stream_events_suppressed"] == 0
        assert stats["stream_events_dropped"] == 0


# ----------------------------------------------------------------------
# RM adapter: stream mode ≡ snapshot mode
# ----------------------------------------------------------------------
def run_rm_scenario(stream):
    build = build_testbed()
    monitor = NetworkMonitor(build, MONITOR_HOST, poll_jitter=0.0)
    requirement = QosRequirement(
        name="S1->N1", src="S1", dst="N1", min_available_bps=900 * KBPS
    )
    rm = RmMiddleware(
        monitor, [requirement], stream=stream, advise_reallocation=False
    )
    StaircaseLoad(
        build.network.host("L"),
        build.network.ip_of("N1"),
        StepSchedule.pulse(10.0, 26.0, 500 * KBPS),
    ).start()
    monitor.start()
    build.network.run(40.0)
    return rm


class TestRmStreamMode:
    def test_hysteresis_bit_identical_to_snapshot_mode(self):
        snapshot_rm = run_rm_scenario(stream=False)
        stream_rm = run_rm_scenario(stream=True)
        snapshot_events = [
            (a.event.state, a.event.time) for a in snapshot_rm.actions
        ]
        stream_events = [
            (a.event.state, a.event.time) for a in stream_rm.actions
        ]
        assert snapshot_events == stream_events
        assert len(snapshot_rm.violations()) >= 1  # the pulse really bit
        detector_a = snapshot_rm.detectors["S1<->N1"]
        detector_b = stream_rm.detectors["S1<->N1"]
        assert detector_a.reports_seen == detector_b.reports_seen
        assert detector_a.state == detector_b.state

    def test_stream_mode_uses_adapter_not_callback(self):
        rm = run_rm_scenario(stream=True)
        assert len(rm.stream_adapters) == 1
        assert rm.stream_adapters[0].events_seen > 0
        assert rm.monitor.stream is not None
