"""Unit tests for the discrete-event engine."""

import pytest

from repro.simnet.engine import SimulationError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run(10.0)
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        order = []
        for tag in range(5):
            sim.schedule(1.0, order.append, tag)
        sim.run(2.0)
        assert order == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run(5.0)
        assert seen == [2.5]

    def test_run_leaves_clock_at_until(self):
        sim = Simulator()
        sim.run(7.0)
        assert sim.now == 7.0

    def test_event_beyond_until_not_fired(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, 1)
        sim.run(4.999)
        assert fired == []
        sim.run(5.0)
        assert fired == [1]

    def test_schedule_during_run(self):
        sim = Simulator()
        seen = []

        def first():
            sim.schedule(1.0, lambda: seen.append(sim.now))

        sim.schedule(1.0, first)
        sim.run(3.0)
        assert seen == [2.0]

    def test_kwargs_passed(self):
        sim = Simulator()
        got = {}
        sim.schedule(1.0, lambda **kw: got.update(kw), x=1, y="z")
        sim.run(2.0)
        assert got == {"x": 1, "y": "z"}

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.run(5.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(4.0, lambda: None)

    def test_run_backwards_rejected(self):
        sim = Simulator()
        sim.run(5.0)
        with pytest.raises(SimulationError):
            sim.run(4.0)

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run(2.0)
        assert sim.events_processed == 4


class TestCancellation:
    def test_cancelled_event_not_fired(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, 1)
        handle.cancel()
        sim.run(2.0)
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run(2.0)

    def test_pending_property_lifecycle(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        assert handle.pending
        sim.run(2.0)
        assert not handle.pending and handle.fired

    def test_pending_count_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(1.0, lambda: None)
        drop.cancel()
        assert sim.pending_count() == 1
        assert keep.pending


class TestRunUntilIdle:
    def test_drains_all_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(100.0, seen.append, 1)
        sim.run_until_idle()
        assert seen == [1]
        assert sim.now == 100.0

    def test_respects_max_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, 1)
        sim.schedule(50.0, seen.append, 2)
        sim.run_until_idle(max_time=10.0)
        assert seen == [1]
        assert sim.now == 10.0


class TestPeriodicTask:
    def test_fires_every_interval(self):
        sim = Simulator()
        times = []
        sim.call_every(2.0, lambda: times.append(sim.now))
        sim.run(10.0)
        assert times == [2.0, 4.0, 6.0, 8.0, 10.0]

    def test_explicit_start(self):
        sim = Simulator()
        times = []
        sim.call_every(2.0, lambda: times.append(sim.now), start=1.0)
        sim.run(6.0)
        assert times == [1.0, 3.0, 5.0]

    def test_cancel_stops_firing(self):
        sim = Simulator()
        times = []
        task = sim.call_every(1.0, lambda: times.append(sim.now))
        sim.run(3.0)
        task.cancel()
        sim.run(6.0)
        assert times == [1.0, 2.0, 3.0]
        assert task.stopped

    def test_jitter_shifts_single_firing_without_drift(self):
        sim = Simulator()
        times = []
        jitters = iter([0.5, 0.0, 0.0, 0.0, 0.0])  # one per (re)arm
        sim.call_every(2.0, lambda: times.append(sim.now), jitter=lambda: next(jitters))
        sim.run(6.5)
        # Nominal grid stays 2,4,6 even though the first firing slid.
        assert times == [2.5, 4.0, 6.0]

    def test_callback_may_cancel_own_task(self):
        sim = Simulator()
        count = []

        def cb():
            count.append(sim.now)
            if len(count) == 2:
                task.cancel()

        task = sim.call_every(1.0, cb)
        sim.run(10.0)
        assert count == [1.0, 2.0]

    def test_non_positive_interval_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().call_every(0.0, lambda: None)

    def test_firings_counted(self):
        sim = Simulator()
        task = sim.call_every(1.0, lambda: None)
        sim.run(4.0)
        assert task.firings == 4
