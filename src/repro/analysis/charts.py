"""Terminal rendering of the paper's figures.

The paper's evaluation is communicated through time-series plots
(Figures 4-6).  This renderer draws the same series as ASCII so the
experiment drivers can *show* the figures in a terminal / CI log instead
of only printing tables.

Example::

    chart = AsciiChart(title="Figure 4b", width=70, height=12)
    chart.add_series("measured", times, measured, marker="*")
    chart.add_series("generated", times, generated, marker="-")
    print(chart.render())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


class ChartError(ValueError):
    """Raised for malformed chart input."""


@dataclass
class _Series:
    label: str
    times: np.ndarray
    values: np.ndarray
    marker: str


class AsciiChart:
    """A minimal multi-series scatter/step chart for monospaced output."""

    def __init__(
        self,
        title: str = "",
        width: int = 70,
        height: int = 14,
        y_label: str = "",
        x_label: str = "time (s)",
    ) -> None:
        if width < 20 or height < 4:
            raise ChartError("chart too small to be legible")
        self.title = title
        self.width = width
        self.height = height
        self.y_label = y_label
        self.x_label = x_label
        self._series: List[_Series] = []

    def add_series(
        self,
        label: str,
        times: Sequence[float],
        values: Sequence[float],
        marker: str = "*",
    ) -> None:
        times = np.asarray(times, dtype=float)
        values = np.asarray(values, dtype=float)
        if times.shape != values.shape:
            raise ChartError(f"series {label!r}: times and values disagree")
        if len(marker) != 1:
            raise ChartError("marker must be a single character")
        if times.size == 0:
            raise ChartError(f"series {label!r} is empty")
        self._series.append(_Series(label, times, values, marker))

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        if not self._series:
            raise ChartError("no series to draw")
        t_min = min(s.times.min() for s in self._series)
        t_max = max(s.times.max() for s in self._series)
        v_min = 0.0  # bandwidth charts anchor at zero, like the paper's
        v_max = max(s.values.max() for s in self._series)
        if v_max <= v_min:
            v_max = v_min + 1.0
        t_span = (t_max - t_min) or 1.0

        grid = [[" "] * self.width for _ in range(self.height)]
        for series in self._series:
            cols = ((series.times - t_min) / t_span * (self.width - 1)).round()
            rows = (
                (series.values - v_min) / (v_max - v_min) * (self.height - 1)
            ).round()
            for col, row in zip(cols.astype(int), rows.astype(int)):
                row = self.height - 1 - min(max(row, 0), self.height - 1)
                grid[row][min(max(col, 0), self.width - 1)] = series.marker

        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        label_width = 10
        for i, row in enumerate(grid):
            # Y-axis tick on the top, middle and bottom rows.
            if i == 0:
                tick = f"{v_max:>{label_width}.1f}"
            elif i == self.height - 1:
                tick = f"{v_min:>{label_width}.1f}"
            elif i == self.height // 2:
                tick = f"{(v_max + v_min) / 2:>{label_width}.1f}"
            else:
                tick = " " * label_width
            lines.append(f"{tick} |{''.join(row)}")
        axis = "-" * self.width
        lines.append(f"{' ' * label_width} +{axis}")
        left = f"{t_min:.0f}"
        right = f"{t_max:.0f}"
        pad = self.width - len(left) - len(right)
        lines.append(f"{' ' * label_width}  {left}{' ' * max(pad, 1)}{right}  {self.x_label}")
        legend = "   ".join(f"{s.marker} {s.label}" for s in self._series)
        lines.append(f"{' ' * label_width}  {legend}")
        if self.y_label:
            lines.insert(1 if self.title else 0, f"[{self.y_label}]")
        return "\n".join(lines)


def render_pair(pair, title: str = "", width: int = 70, height: int = 12) -> str:
    """Chart a :class:`~repro.experiments.scenarios.SeriesPair`."""
    chart = AsciiChart(title=title, width=width, height=height, y_label="KB/s")
    chart.add_series("generated", pair.times, pair.generated_kbps, marker="-")
    chart.add_series("measured", pair.times, pair.measured_kbps, marker="*")
    return chart.render()
