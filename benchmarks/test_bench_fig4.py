"""Benchmark + regeneration of Figure 4 (dynamically varying load).

Times the full 480-simulated-second staircase experiment and prints the
generated/measured series the paper plots as Figures 4a and 4b, then
asserts the paper's qualitative claims:

- the measured series tracks the staircase pattern;
- measured is slightly ABOVE generated (headers + monitoring traffic);
- the load vanishes when the generator stops at t=420 s.
"""

import numpy as np

from repro.experiments import fig4


def test_bench_fig4_staircase(benchmark, fig4_result):
    result = benchmark.pedantic(
        lambda: fig4.run(seed=1), rounds=1, iterations=1
    )
    # Print the paper's series (sampled) for the session log.
    print()
    for line in fig4.format_series(fig4_result, stride=10):
        print(line)

    pair = fig4_result.pair
    # Shape assertions on the shared (seed 0) run.
    for level in (100.0, 200.0, 300.0, 400.0, 500.0):
        window = pair.generated_kbps == level
        assert window.sum() >= 10, f"level {level} under-sampled"
        mean = pair.measured_kbps[window].mean()
        assert level * 1.0 < mean < level * 1.10, (level, mean)
    # After elimination at 420 s only background remains.
    tail = pair.times > 430
    assert pair.measured_kbps[tail].mean() < 10.0
    # And the experiment produced zero SNMP losses.
    assert fig4_result.monitor_stats["snmp_timeouts"] == 0


def test_bench_fig4_reporting_overhead(benchmark, fig4_result):
    """Micro-bench: one report-series extraction from a full run."""
    scenario = fig4_result.scenario
    label = fig4_result.pair.label

    def extract():
        series = scenario.monitor.history.series(label)
        return series.used().sum()

    total = benchmark(extract)
    assert total > 0
