"""Span-based tracing of the monitor's own activity, on simulated time.

A span is one timed unit of monitor work: a poll cycle, one agent's SNMP
exchange inside it, a path computation inside a report.  Because the
simulator advances time only between events, synchronous code takes zero
simulated time -- spans therefore support *explicit* begin/finish across
event-loop turns (a poll cycle's span stays open until its last response
lands), not just context-manager scoping.

Finished spans land in a bounded ring buffer (a long-running monitor
must not accumulate trace state without bound); spans slower than
``slow_threshold`` are additionally kept in a dedicated slow-span ring
and logged, which is the "why was cycle 1041 slow?" forensic trail.
"""

from __future__ import annotations

import itertools
import logging
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

logger = logging.getLogger("repro.telemetry")


class Span:
    """One timed operation; ``finish`` may happen many events later."""

    __slots__ = ("tracer", "name", "span_id", "parent_id", "start", "end", "attrs")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        start: float,
        attrs: Dict[str, object],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs

    @property
    def open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def finish(self, **attrs: object) -> "Span":
        """Close the span at the tracer's current clock time."""
        if attrs:
            self.attrs.update(attrs)
        self.tracer._finish(self)
        return self

    # Context-manager sugar for synchronous sections.
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self.finish()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration:.6f}s" if self.end is not None else "open"
        return f"<Span {self.name} #{self.span_id} {state} {self.attrs}>"


class _NullSpan:
    """Shared do-nothing span handed out when tracing is disabled."""

    __slots__ = ()
    name = "<disabled>"
    span_id = -1
    parent_id = None
    start = 0.0
    end = 0.0
    attrs: Dict[str, object] = {}
    open = False
    duration = 0.0

    def finish(self, **attrs: object) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()


class Tracer:
    """Creates spans against a clock and retains the finished ones.

    ``clock`` is any zero-argument callable returning seconds -- the
    monitor passes the simulator's clock, so all spans live on simulated
    time and stay deterministic under a seed.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        capacity: int = 512,
        slow_threshold: Optional[float] = None,
        slow_capacity: int = 64,
        enabled: bool = True,
    ) -> None:
        if capacity < 1 or slow_capacity < 1:
            raise ValueError("tracer ring capacities must be >= 1")
        self.clock = clock
        self.enabled = enabled
        self.slow_threshold = slow_threshold
        self.finished: Deque[Span] = deque(maxlen=capacity)
        self.slow: Deque[Span] = deque(maxlen=slow_capacity)
        self.spans_started = 0
        self.spans_finished = 0
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    def begin(self, name: str, parent: Optional[Span] = None, **attrs: object):
        """Open a span; returns a shared no-op span when disabled."""
        if not self.enabled:
            return NULL_SPAN
        self.spans_started += 1
        parent_id = None
        if parent is not None and parent is not NULL_SPAN:
            parent_id = parent.span_id
        return Span(self, name, next(self._ids), parent_id, self.clock(), attrs)

    def span(self, name: str, parent: Optional[Span] = None, **attrs: object):
        """Alias of :meth:`begin`, reads better with ``with`` blocks."""
        return self.begin(name, parent=parent, **attrs)

    def _finish(self, span: Span) -> None:
        if span.end is not None:
            return  # idempotent: a forced cycle close may race a late response
        span.end = self.clock()
        self.spans_finished += 1
        self.finished.append(span)
        if self.slow_threshold is not None and span.duration > self.slow_threshold:
            self.slow.append(span)
            logger.info(
                "slow span %s #%d: %.3fs (threshold %.3fs) %s",
                span.name, span.span_id, span.duration, self.slow_threshold,
                span.attrs,
            )

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def spans(self, name: Optional[str] = None) -> List[Span]:
        """Finished spans, optionally filtered by name (oldest first)."""
        if name is None:
            return list(self.finished)
        return [s for s in self.finished if s.name == name]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.finished if s.parent_id == span.span_id]

    def durations(self, name: str) -> List[float]:
        return [s.duration for s in self.finished if s.name == name]

    def format_slow(self) -> str:
        """Human-readable slow-span log (newest last)."""
        if not self.slow:
            return "(no slow spans)"
        lines = []
        for span in self.slow:
            attrs = " ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
            lines.append(
                f"[{span.start:9.3f}s] {span.name} took {span.duration:.3f}s"
                + (f" ({attrs})" if attrs else "")
            )
        return "\n".join(lines)
