"""Telemetry overhead guard: the monitor watching itself must stay cheap.

Runs the Figure-4 scenario twice -- histograms/spans enabled vs disabled
-- and asserts the instrumented run costs at most 10 % more wall time.
Uses plain ``perf_counter`` best-of-rounds rather than the
pytest-benchmark fixture so CI can run this file with stock pytest.
"""

import time

import numpy as np

from repro.experiments import fig4

ROUNDS = 3
MAX_OVERHEAD_RATIO = 1.10


def _best_of(fn, rounds=ROUNDS):
    """Minimum wall time over ``rounds`` runs (noise-robust estimator)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_telemetry_overhead_under_ten_percent():
    # One warm-up each so import costs and allocator warm-up are excluded.
    baseline_result = fig4.run(seed=0, telemetry=False)
    instrumented_result = fig4.run(seed=0, telemetry=True)

    # Telemetry must observe, never perturb: identical measured series.
    np.testing.assert_array_equal(
        baseline_result.pair.measured_kbps,
        instrumented_result.pair.measured_kbps,
    )
    assert baseline_result.monitor_stats == instrumented_result.monitor_stats

    off = _best_of(lambda: fig4.run(seed=0, telemetry=False))
    on = _best_of(lambda: fig4.run(seed=0, telemetry=True))
    ratio = on / off
    print(
        f"\nfig4 wall time: telemetry off {off:.3f}s, on {on:.3f}s, "
        f"ratio {ratio:.3f} (budget {MAX_OVERHEAD_RATIO:.2f})"
    )
    assert ratio <= MAX_OVERHEAD_RATIO, (
        f"telemetry overhead {ratio:.3f}x exceeds the "
        f"{MAX_OVERHEAD_RATIO:.2f}x budget"
    )


def test_bench_instrumented_run_populates_registry():
    """The timed configuration is the real one: metrics actually flow."""
    result = fig4.run(seed=0, telemetry=True)
    telemetry = result.scenario.monitor.telemetry
    assert telemetry.registry.value("poll_cycle_seconds")["count"] > 100
    rtt = telemetry.registry.get("snmp_rtt_seconds")
    assert len(rtt.children()) == 6
    assert telemetry.tracer.spans_finished > 1000
