"""Discrete-event simulation engine.

A minimal but production-grade event scheduler: a binary heap of timestamped
callbacks with stable FIFO ordering for simultaneous events, cancellable
handles, and a monotonic simulation clock.  Everything else in
:mod:`repro.simnet` (links, hosts, traffic generators, the SNMP poller) is
driven by this loop.

The paper's experiments run for a few hundred simulated seconds with loads
up to 2000 KB/s of 1472-byte datagrams; at roughly five events per frame
that is a few million events per experiment, which this pure-Python heap
handles in seconds.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for scheduler misuse (negative delays, running backwards)."""


@dataclass(order=True)
class _HeapEntry:
    time: float
    seq: int
    handle: "EventHandle" = field(compare=False)


class EventHandle:
    """Cancellable reference to a scheduled callback.

    Cancellation is lazy: the heap entry stays in place and is discarded
    when it surfaces, which keeps :meth:`Simulator.schedule` O(log n) and
    :meth:`cancel` O(1).
    """

    __slots__ = ("callback", "args", "kwargs", "time", "cancelled", "fired")

    def __init__(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple,
        kwargs: dict,
    ) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while the event is still waiting to fire."""
        return not (self.cancelled or self.fired)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<EventHandle t={self.time:.6f} {name} {state}>"


class Simulator:
    """Event-heap simulator with a float-seconds clock.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, fn, arg)      # relative delay
        sim.schedule_at(10.0, fn)       # absolute time
        sim.run(until=100.0)

    The clock starts at 0.0 and only moves forward.  Callbacks scheduled
    for the same instant run in FIFO order of scheduling, which makes the
    whole simulation deterministic.
    """

    def __init__(self) -> None:
        self._heap: list[_HeapEntry] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._events_processed = 0
        self._running = False

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total callbacks executed so far (for benchmarks/diagnostics)."""
        return self._events_processed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> EventHandle:
        """Schedule ``callback(*args, **kwargs)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, *args, **kwargs)

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, clock already at t={self._now!r}"
            )
        handle = EventHandle(time, callback, args, kwargs)
        heapq.heappush(self._heap, _HeapEntry(time, next(self._seq), handle))
        return handle

    def call_every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        start: Optional[float] = None,
        jitter: Callable[[], float] | None = None,
        **kwargs: Any,
    ) -> "PeriodicTask":
        """Run ``callback`` every ``interval`` seconds until cancelled.

        ``jitter``, if given, is called before each firing and its return
        value (seconds, may be negative but the resulting delay is clamped
        to >= 0) is added to that firing time only -- the underlying period
        does not drift.  This is how the SNMP poller models the paper's
        "slight delay in SNMP polling".
        """
        if interval <= 0:
            raise SimulationError(f"non-positive interval {interval!r}")
        task = PeriodicTask(self, interval, callback, args, kwargs, jitter)
        first = self._now + interval if start is None else start
        task._arm(max(first, self._now))
        return task

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: float) -> None:
        """Process events until the clock reaches ``until`` (inclusive).

        The clock is left exactly at ``until`` even if the heap drains
        early, so back-to-back ``run`` calls behave like one long run.
        """
        if until < self._now:
            raise SimulationError(f"cannot run backwards to t={until!r}")
        self._running = True
        try:
            while self._heap and self._heap[0].time <= until:
                entry = heapq.heappop(self._heap)
                handle = entry.handle
                if handle.cancelled:
                    continue
                self._now = entry.time
                handle.fired = True
                self._events_processed += 1
                handle.callback(*handle.args, **handle.kwargs)
            self._now = until
        finally:
            self._running = False

    def run_until_idle(self, max_time: float = float("inf")) -> None:
        """Process every pending event, or stop at ``max_time``."""
        self._running = True
        try:
            while self._heap:
                entry = self._heap[0]
                if entry.time > max_time:
                    self._now = max_time
                    return
                heapq.heappop(self._heap)
                handle = entry.handle
                if handle.cancelled:
                    continue
                self._now = entry.time
                handle.fired = True
                self._events_processed += 1
                handle.callback(*handle.args, **handle.kwargs)
        finally:
            self._running = False

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for e in self._heap if not e.handle.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self._now:.6f} queued={len(self._heap)}>"


class PeriodicTask:
    """A recurring callback created by :meth:`Simulator.call_every`."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        jitter: Callable[[], float] | None,
    ) -> None:
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._args = args
        self._kwargs = kwargs
        self._jitter = jitter
        self._next_nominal = 0.0
        self._handle: EventHandle | None = None
        self._stopped = False
        self.firings = 0

    def _arm(self, nominal_time: float) -> None:
        self._next_nominal = nominal_time
        actual = nominal_time
        if self._jitter is not None:
            actual = max(self._sim.now, nominal_time + self._jitter())
        self._handle = self._sim.schedule_at(actual, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.firings += 1
        # Re-arm first so the callback may cancel the task.
        self._arm(self._next_nominal + self.interval)
        self._callback(*self._args, **self._kwargs)

    def cancel(self) -> None:
        """Stop the task; the pending firing (if any) is cancelled too."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()

    @property
    def stopped(self) -> bool:
        return self._stopped
