"""The measurement-integrity pipeline: validators, trust, cross-checks.

Unit tests cover each validator and the trust/quarantine dynamics in
isolation; the acceptance tests run corruption-class faults on the
paper's Figure-3 testbed and assert the pipeline's end-to-end promises:

- a corrupted interface is quarantined within three poll cycles of the
  fault's onset, and the paths that depend on it are never reported as
  trusted while the lie persists;
- paths that do not traverse the corrupted interface are *bit-identical*
  to a fault-free run with the same seed (the fault injection is
  size-preserving on the wire, so nothing else may shift);
- the two-ended cross-checker catches an agent that lies consistently
  from t=0 (no onset transient to trip the per-sample validators) and
  attributes the mismatch to the lying end;
- a fault-free run never trips a violation, with or without
  cross-checking (zero false positives).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.monitor import NetworkMonitor
from repro.core.poller import InterfaceRates, _CounterSnapshot
from repro.experiments.scenarios import Scenario
from repro.experiments.testbed import TESTBED_SPEC_TEXT, build_testbed
from repro.spec.parser import parse_spec
from repro.integrity import (
    CrossChecker,
    IntegrityConfig,
    IntegrityPipeline,
    IntegrityVerdict,
    QuarantineManager,
    RateBoundValidator,
    SampleContext,
    Severity,
    SpeedValidator,
    StuckCounterValidator,
    WrapRiskValidator,
    extra_poll_indexes,
    two_ended_pairs,
    wrap_period_seconds,
)
from repro.simnet.faults import CounterCorruption, SpeedMisreport, StuckCounters
from repro.simnet.trafficgen import KBPS, StepSchedule
from repro.snmp.datatypes import Counter32, TimeTicks
from repro.telemetry.events import (
    COUNTER_WRAP_RISK,
    CROSS_CHECK_MISMATCH,
    INTEGRITY_VIOLATION,
    QUARANTINE_ENTER,
    QUARANTINE_EXIT,
)

POLL = 2.0


def figure3_spec():
    return parse_spec(TESTBED_SPEC_TEXT)


def collect_reports(scenario):
    """Subscribe before the run; returns label -> [PathReport, ...]."""
    reports = {}
    scenario.monitor.subscribe(
        lambda r: reports.setdefault(r.label, []).append(r)
    )
    return reports


# ----------------------------------------------------------------------
# Helpers: hand-built samples and snapshots
# ----------------------------------------------------------------------
def snapshot(uptime_s=0.0, octets_in=0, octets_out=0, ucast=0):
    return _CounterSnapshot(
        uptime=TimeTicks.from_seconds(uptime_s),
        octets_in=Counter32.wrap(octets_in),
        octets_out=Counter32.wrap(octets_out),
        ucast_in=Counter32.wrap(ucast),
        ucast_out=Counter32.wrap(ucast),
        nucast_in=Counter32(0),
        nucast_out=Counter32(0),
    )


def sample(node="S1", if_index=1, time=2.0, interval=2.0, in_bps=0.0, out_bps=0.0):
    return InterfaceRates(
        node=node, if_index=if_index, time=time, interval=interval,
        in_bytes_per_s=in_bps, out_bytes_per_s=out_bps,
        in_pkts_per_s=0.0, out_pkts_per_s=0.0,
    )


def context(s, prev=None, cur=None, speed=100e6, polled_speed=None):
    return SampleContext(
        sample=s,
        prev=prev if prev is not None else snapshot(0.0),
        cur=cur if cur is not None else snapshot(s.interval),
        speed_bps=speed,
        polled_speed_bps=polled_speed,
        configured_interval=s.interval,
    )


def verdict(check="rate_bound", severity=Severity.VIOLATION, decays=True, t=0.0):
    return IntegrityVerdict(
        check=check, severity=severity, node="A", if_index=1, time=t,
        decays_trust=decays,
    )


# ----------------------------------------------------------------------
# Validators
# ----------------------------------------------------------------------
class TestRateBoundValidator:
    def test_within_tolerance_is_clean(self):
        v = RateBoundValidator(tolerance=0.5)
        # 100 Mb/s line: 12.5 MB/s; 1.5x headroom allows 18.75 MB/s.
        ok = sample(in_bps=15e6, out_bps=18.7e6)
        assert v.check(context(ok)) == []

    def test_over_bound_is_violation(self):
        v = RateBoundValidator(tolerance=0.5)
        bad = sample(out_bps=20e6)
        found = v.check(context(bad))
        assert [f.check for f in found] == ["rate_bound"]
        assert found[0].severity is Severity.VIOLATION
        assert found[0].decays_trust

    def test_regression_diagnosed_separately(self):
        # A counter running backwards reads as a near-4GB wrap delta.
        prev = snapshot(0.0, octets_out=50_000)
        cur = snapshot(2.0, octets_out=10_000)
        rate = cur.octets_out.delta(prev.octets_out) / 2.0
        bad = sample(out_bps=rate)
        found = RateBoundValidator().check(context(bad, prev=prev, cur=cur))
        assert [f.check for f in found] == ["counter_regression"]

    def test_polled_speed_takes_precedence(self):
        # The agent's own ifSpeed claim bounds the check when present.
        v = RateBoundValidator(tolerance=0.5)
        s = sample(out_bps=5e6)  # fine at 100 Mb/s, absurd at 10 Mb/s
        assert v.check(context(s, speed=100e6)) == []
        assert v.check(context(s, speed=100e6, polled_speed=10e6))

    def test_no_speed_means_no_check(self):
        assert RateBoundValidator().check(context(sample(out_bps=1e9), speed=None)) == []

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            RateBoundValidator(tolerance=-0.1)


class TestStuckCounterValidator:
    def frozen_ctx(self, t):
        frozen = snapshot(0.0, octets_in=500, octets_out=500, ucast=5)
        later = snapshot(t, octets_in=500, octets_out=500, ucast=5)
        return context(sample(time=t), prev=frozen, cur=later)

    def moving_ctx(self, t):
        prev = snapshot(t - 2.0, octets_in=100, ucast=1)
        cur = snapshot(t, octets_in=300, ucast=3)
        return context(sample(time=t, in_bps=100.0), prev=prev, cur=cur)

    def test_idle_from_start_never_flags(self):
        v = StuckCounterValidator(stuck_after=3)
        for t in range(2, 30, 2):
            assert v.check(self.frozen_ctx(float(t))) == []

    def test_frozen_after_activity_flags(self):
        v = StuckCounterValidator(stuck_after=3)
        assert v.check(self.moving_ctx(2.0)) == []
        assert v.check(self.frozen_ctx(4.0)) == []
        assert v.check(self.frozen_ctx(6.0)) == []
        found = v.check(self.frozen_ctx(8.0))  # third frozen poll
        assert [f.check for f in found] == ["stuck_counters"]
        assert found[0].severity is Severity.SUSPECT
        assert not found[0].decays_trust  # stuck != malicious by default

    def test_movement_resets_streak(self):
        v = StuckCounterValidator(stuck_after=2)
        v.check(self.moving_ctx(2.0))
        v.check(self.frozen_ctx(4.0))
        assert v.check(self.moving_ctx(6.0)) == []
        assert v.check(self.frozen_ctx(8.0)) == []  # streak restarted at 1

    def test_forget_drops_state(self):
        v = StuckCounterValidator(stuck_after=2)
        v.check(self.moving_ctx(2.0))
        v.check(self.frozen_ctx(4.0))
        v.forget("S1", 1)  # agent restarted
        assert v.check(self.frozen_ctx(6.0)) == []


class TestSpeedValidator:
    def test_mismatch_is_violation(self):
        found = SpeedValidator().check(
            context(sample(), speed=100e6, polled_speed=10e6)
        )
        assert [f.check for f in found] == ["speed_mismatch"]
        assert found[0].severity is Severity.VIOLATION

    def test_agreement_within_tolerance(self):
        v = SpeedValidator(rel_tolerance=0.01)
        assert v.check(context(sample(), speed=100e6, polled_speed=100e6)) == []
        assert v.check(context(sample(), speed=100e6, polled_speed=100.5e6)) == []

    def test_unpolled_or_unrepresentable_skipped(self):
        v = SpeedValidator()
        assert v.check(context(sample(), speed=100e6, polled_speed=None)) == []
        # A >= 2^32 bit/s declared speed cannot fit in a Gauge32.
        assert v.check(context(sample(), speed=10e9, polled_speed=1e6)) == []


class TestWrapRiskValidator:
    def test_wrap_period(self):
        assert wrap_period_seconds(100e6) == pytest.approx(343.6, abs=0.1)
        assert wrap_period_seconds(10e6) == pytest.approx(3436.0, abs=1.0)

    def test_short_interval_clean(self):
        assert WrapRiskValidator().check(context(sample(interval=2.0))) == []

    def test_long_interval_suspect_without_decay(self):
        long = sample(interval=200.0)  # > 171.8 s half-wrap at 100 Mb/s
        found = WrapRiskValidator().check(context(long))
        assert [f.check for f in found] == ["wrap_risk"]
        assert found[0].severity is Severity.SUSPECT
        assert not found[0].decays_trust


# ----------------------------------------------------------------------
# Trust dynamics / quarantine
# ----------------------------------------------------------------------
class TestQuarantineManager:
    def test_two_violations_quarantine(self):
        qm = QuarantineManager()
        qm.apply("A", 1, [verdict(t=0.0)], 0.0)
        assert not qm.is_quarantined("A", 1)  # 0.5: degraded, not out
        qm.apply("A", 1, [verdict(t=2.0)], 2.0)
        assert qm.is_quarantined("A", 1)  # 0.25 < 0.3
        assert qm.quarantined_keys() == [("A", 1)]

    def test_release_needs_six_clean_polls(self):
        qm = QuarantineManager()
        for t in (0.0, 2.0):
            qm.apply("A", 1, [verdict(t=t)], t)
        for i in range(5):
            qm.record_clean("A", 1, 4.0 + 2 * i)
            assert qm.is_quarantined("A", 1), f"released after {i + 1} clean polls"
        qm.record_clean("A", 1, 14.0)  # 0.25 + 6*0.1 = 0.85 >= 0.8
        assert not qm.is_quarantined("A", 1)
        rec = qm.record("A", 1)
        assert rec.quarantines == 1 and rec.releases == 1

    def test_suspect_decays_slower_than_violation(self):
        qm = QuarantineManager()
        qm.apply("A", 1, [verdict(severity=Severity.SUSPECT, t=0.0)], 0.0)
        qm.apply("B", 1, [verdict(t=0.0)], 0.0)
        assert qm.trust("A", 1) == pytest.approx(0.7)
        assert qm.trust("B", 1) == pytest.approx(0.5)

    def test_non_decaying_verdict_leaves_trust_alone(self):
        qm = QuarantineManager()
        qm.apply("A", 1, [verdict(check="wrap_risk", severity=Severity.SUSPECT,
                                  decays=False, t=0.0)], 0.0)
        assert qm.trust("A", 1) == 1.0
        assert qm.record("A", 1).suspects == 1  # still counted

    def test_trust_capped_at_one(self):
        qm = QuarantineManager()
        for i in range(20):
            qm.record_clean("A", 1, float(i))
        assert qm.trust("A", 1) == 1.0

    def test_unknown_interface_fully_trusted(self):
        qm = QuarantineManager()
        assert qm.trust("nobody", 9) == 1.0
        assert not qm.is_quarantined("nobody", 9)

    @given(st.lists(st.sampled_from(["violation", "suspect", "clean"]), max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_score_bounded_and_state_consistent(self, moves):
        qm = QuarantineManager()
        for i, move in enumerate(moves):
            t = float(i)
            if move == "clean":
                qm.record_clean("A", 1, t)
            else:
                sev = Severity.VIOLATION if move == "violation" else Severity.SUSPECT
                qm.apply("A", 1, [verdict(severity=sev, t=t)], t)
            rec = qm.record("A", 1)
            assert 0.0 <= rec.score <= 1.0
            if rec.quarantined:
                # Hysteresis: inside quarantine the score is always
                # below the release threshold.
                assert rec.score < 0.8
        rec = qm.record("A", 1)
        assert rec.releases <= rec.quarantines


# ----------------------------------------------------------------------
# Cross-checking
# ----------------------------------------------------------------------
class TestCrossPairs:
    def test_testbed_pairs(self):
        pairs = two_ended_pairs(figure3_spec())
        labels = sorted(p.label for p in pairs)
        # L, S1, S2 attach to the switch with agents on both ends; the
        # hub legs (N1, N2, switch.port8) have a hub in the middle and
        # the S3-S6 legs have no host agent, so neither cross-checks.
        assert labels == [
            "L.eth0<->switch.port1",
            "S1.hme0<->switch.port2",
            "S2.hme0<->switch.port3",
        ]
        for pair in pairs:
            assert pair.primary.node != "switch"  # host end preferred
            assert pair.secondary.node == "switch"

    def test_extra_poll_indexes(self):
        pairs = two_ended_pairs(figure3_spec())
        assert extra_poll_indexes(pairs) == {"switch": [1, 2, 3]}


class TestCrossChecker:
    def pair(self):
        return next(
            p for p in two_ended_pairs(figure3_spec()) if p.primary.node == "S1"
        )

    def samples(self, pair, a_out, b_in, t=10.0):
        a, b = pair.primary, pair.secondary
        return {
            a.key(): sample(node=a.node, if_index=a.if_index, time=t,
                            out_bps=a_out, in_bps=100.0),
            b.key(): sample(node=b.node, if_index=b.if_index, time=t,
                            in_bps=b_in, out_bps=100.0),
        }

    def test_agreement_within_tolerance(self):
        pair = self.pair()
        checker = CrossChecker([pair], breach_count=1)
        findings = checker.check(self.samples(pair, 100_000.0, 110_000.0), 10.0)
        assert [f.mismatch for f in findings] == [False]

    def test_mismatch_debounced(self):
        pair = self.pair()
        checker = CrossChecker([pair], breach_count=2)
        first = checker.check(self.samples(pair, 200_000.0, 50_000.0, t=10.0), 10.0)
        assert not any(f.mismatch for f in first)  # one breach: noise
        second = checker.check(self.samples(pair, 200_000.0, 50_000.0, t=12.0), 12.0)
        assert [f.mismatch for f in second] == [True]
        assert checker.mismatches == 1

    def test_agreement_resets_streak(self):
        pair = self.pair()
        checker = CrossChecker([pair], breach_count=2)
        checker.check(self.samples(pair, 200_000.0, 50_000.0, t=10.0), 10.0)
        checker.check(self.samples(pair, 100_000.0, 100_000.0, t=12.0), 12.0)
        third = checker.check(self.samples(pair, 200_000.0, 50_000.0, t=14.0), 14.0)
        assert not any(f.mismatch for f in third)

    def test_small_absolute_noise_ignored(self):
        pair = self.pair()
        checker = CrossChecker([pair], breach_count=1, abs_floor_bps=4096.0)
        # 3 KB/s apart is under the absolute floor even though the
        # relative disagreement is large.
        findings = checker.check(self.samples(pair, 4000.0, 1000.0), 10.0)
        assert not any(f.mismatch for f in findings)

    def test_stale_end_skips_the_pair(self):
        pair = self.pair()
        checker = CrossChecker([pair], breach_count=1, max_sample_age=4.0)
        samples = self.samples(pair, 200_000.0, 50_000.0, t=2.0)
        assert checker.check(samples, 10.0) == []  # both ends 8 s old

    def test_recent_offender_attribution(self):
        pair = self.pair()
        checker = CrossChecker([pair], breach_count=1)
        findings = checker.check(
            self.samples(pair, 200_000.0, 50_000.0), 10.0,
            recent_offender=lambda node, i: node == "S1",
        )
        assert findings[0].mismatch and findings[0].blamed == "S1"
        verdicts = checker.verdicts_for(findings[0])
        assert [(v.node, v.severity) for v in verdicts] == [("S1", Severity.VIOLATION)]

    def test_tie_suspects_both_ends(self):
        pair = self.pair()
        checker = CrossChecker([pair], breach_count=1)
        findings = checker.check(self.samples(pair, 200_000.0, 50_000.0), 10.0)
        assert findings[0].mismatch and findings[0].blamed is None
        verdicts = checker.verdicts_for(findings[0])
        assert {v.node for v in verdicts} == {"S1", "switch"}
        assert {v.severity for v in verdicts} == {Severity.SUSPECT}


# ----------------------------------------------------------------------
# Satellite: sysUpTime (TimeTicks) wraps at 2^32 hundredths (~497 days)
# ----------------------------------------------------------------------
class TestTimeTicksWrap:
    def test_delta_seconds_across_wrap(self):
        before = TimeTicks(2 ** 32 - 100)  # 1 s before the wrap
        after = TimeTicks(100)  # 1 s after
        assert before.delta_seconds(TimeTicks(2 ** 32 - 300)) == pytest.approx(2.0)
        assert after.delta_seconds(before) == pytest.approx(2.0)

    @given(start=st.integers(0, 2 ** 32 - 1), ticks=st.integers(1, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_delta_seconds_wrap_invariant(self, start, ticks):
        older = TimeTicks(start)
        newer = TimeTicks((start + ticks) % 2 ** 32)
        assert newer.delta_seconds(older) == pytest.approx(ticks / 100.0)

    @given(start=st.integers(0, 2 ** 32 - 1), delta=st.integers(0, 2 ** 31))
    @settings(max_examples=100, deadline=None)
    def test_counter32_delta_wrap_invariant(self, start, delta):
        older = Counter32(start)
        newer = Counter32((start + delta) % 2 ** 32)
        assert newer.delta(older) == delta

    def test_rate_stays_finite_and_correct_through_ingest(self):
        """Drive the real poller ingest across the sysUpTime wrap."""
        build = build_testbed()
        monitor = NetworkMonitor(build, "L", poll_interval=POLL)
        poller = monitor._poller
        wrap = 2 ** 32
        # Baseline 1 s before the wrap, next poll 1 s after: the raw
        # tick values regress but the wrap-aware delta is 2 s.
        poller._ingest("S1", 1, snapshot_at_ticks(wrap - 100, octets=1_000))
        poller._ingest("S1", 1, snapshot_at_ticks(100, octets=1_000 + 25_000))
        got = poller.rates.latest("S1", 1)
        assert got is not None
        assert got.interval == pytest.approx(2.0)
        assert math.isfinite(got.in_bytes_per_s)
        assert got.in_bytes_per_s == pytest.approx(12_500.0)
        # The integrity pipeline saw nothing wrong with it.
        assert monitor.integrity.trust("S1", 1) == 1.0
        assert monitor.telemetry.events.count(INTEGRITY_VIOLATION) == 0


def snapshot_at_ticks(ticks, octets):
    return _CounterSnapshot(
        uptime=TimeTicks(ticks % 2 ** 32),
        octets_in=Counter32.wrap(octets),
        octets_out=Counter32.wrap(octets),
        ucast_in=Counter32.wrap(octets // 500),
        ucast_out=Counter32.wrap(octets // 500),
        nucast_in=Counter32(0),
        nucast_out=Counter32(0),
    )


# ----------------------------------------------------------------------
# Satellite: Counter32 wrap-risk configuration guard
# ----------------------------------------------------------------------
class TestWrapRiskGuard:
    def test_slow_polling_warns_once_per_fast_interface(self):
        pipeline = IntegrityPipeline(
            speeds={("A", 1): 100e6, ("B", 1): 10e6},
            poll_interval=200.0,  # beyond 171.8 s at 100 Mb/s, safe at 10
        )
        assert pipeline.wrap_risky_interfaces == [("A", 1)]
        events = pipeline.telemetry.events.events(COUNTER_WRAP_RISK)
        assert len(events) == 1
        assert events[0].attrs["node"] == "A"
        assert events[0].attrs["half_wrap_seconds"] == pytest.approx(171.8)

    def test_paper_interval_is_safe(self):
        pipeline = IntegrityPipeline(speeds={("A", 1): 100e6}, poll_interval=POLL)
        assert pipeline.wrap_risky_interfaces == []
        assert pipeline.telemetry.events.count(COUNTER_WRAP_RISK) == 0

    def test_monitor_surfaces_the_warning(self):
        build = build_testbed()
        monitor = NetworkMonitor(build, "L", poll_interval=200.0)
        assert monitor.telemetry.events.count(COUNTER_WRAP_RISK) >= 1


# ----------------------------------------------------------------------
# Acceptance: corruption on the Figure-3 testbed
# ----------------------------------------------------------------------
FAULT_AT = 10.0
RUN_UNTIL = 40.0


def corrupted_scenario(fault=True):
    scenario = Scenario(poll_interval=POLL, seed=0)
    scenario.watch("S1", "N1")
    scenario.watch("S4", "S5")
    scenario.reports = collect_reports(scenario)
    if fault:
        CounterCorruption(
            scenario.network.sim,
            scenario.build.agents["S1"],
            at=FAULT_AT,
            seed=0,
            events=scenario.monitor.telemetry.events,
        )
    scenario.run(RUN_UNTIL)
    return scenario


@pytest.fixture(scope="module")
def corrupted_run():
    return corrupted_scenario(fault=True)


@pytest.fixture(scope="module")
def clean_run():
    return corrupted_scenario(fault=False)


class TestCorruptionAcceptance:
    def test_clean_run_has_zero_false_positives(self, clean_run):
        stats = clean_run.monitor.stats()
        assert stats["integrity_violations"] == 0
        assert stats["integrity_rejected"] == 0
        assert stats["integrity_quarantined"] == 0

    def test_quarantined_within_three_cycles(self, corrupted_run):
        bus = corrupted_run.monitor.telemetry.events
        entries = bus.events(QUARANTINE_ENTER)
        assert entries, "corruption never triggered quarantine"
        first = entries[0]
        assert first.attrs["node"] == "S1"
        assert first.time <= FAULT_AT + 3 * POLL
        assert corrupted_run.monitor.integrity.is_quarantined("S1", 1)

    def test_violations_detected_and_samples_withheld(self, corrupted_run):
        stats = corrupted_run.monitor.stats()
        assert stats["integrity_violations"] > 0
        assert stats["integrity_rejected"] > 0
        assert stats["integrity_quarantined"] == 1
        checks = {
            e.attrs["check"]
            for e in corrupted_run.monitor.telemetry.events.events(INTEGRITY_VIOLATION)
        }
        # Random 32-bit garbage both overshoots line rate and regresses.
        assert checks <= {"rate_bound", "counter_regression"}
        assert checks

    def test_affected_path_is_never_trusted_under_corruption(self, corrupted_run):
        series = corrupted_run.reports["S1<->N1"]
        post = [r for r in series if r.time > FAULT_AT + 3 * POLL]
        assert post
        for report in post:
            assert not report.trusted, report.summary()
            assert report.degraded or report.unavailable or report.any_quarantined

    def test_unaffected_path_is_bit_identical(self, corrupted_run, clean_run):
        label = "S4<->S5"
        with_fault = corrupted_run.path_series(label)
        without = clean_run.path_series(label)
        assert len(with_fault) == len(without) > 0
        assert np.array_equal(with_fault.times(), without.times())
        assert np.array_equal(with_fault.used(), without.used())
        assert np.array_equal(with_fault.available(), without.available())

    def test_trust_recovers_after_fault_would_clear(self):
        scenario = Scenario(poll_interval=POLL, seed=0)
        scenario.watch("S1", "N1")
        reports = collect_reports(scenario)
        CounterCorruption(
            scenario.network.sim, scenario.build.agents["S1"],
            at=10.0, until=16.0, seed=0,
            events=scenario.monitor.telemetry.events,
        )
        scenario.run(60.0)
        bus = scenario.monitor.telemetry.events
        assert bus.count(QUARANTINE_ENTER) == 1
        assert bus.count(QUARANTINE_EXIT) == 1
        release = bus.last(QUARANTINE_EXIT)
        assert release.attrs["node"] == "S1"
        assert release.time > 16.0
        assert not scenario.monitor.integrity.is_quarantined("S1", 1)
        assert scenario.monitor.integrity.trust("S1", 1) >= 0.8
        settled = [
            r for r in reports["S1<->N1"]
            if r.time >= release.time + 2 * POLL
        ]
        assert settled and all(r.trusted for r in settled)


# ----------------------------------------------------------------------
# Acceptance: two-ended cross-checks catch a consistent liar
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def byzantine_run():
    """S1 under-reports ifOutOctets by 70% from t=0: no onset transient,
    so only the cross-check can catch it."""
    scenario = Scenario(poll_interval=POLL, seed=1, cross_check=True)
    scenario.watch("S1", "N1")
    scenario.reports = collect_reports(scenario)
    scenario.add_load("L", "S1", StepSchedule.pulse(5.0, 35.0, 200 * KBPS))
    CounterCorruption(
        scenario.network.sim, scenario.build.agents["S1"],
        at=0.0, mode="scaled", scale=0.3,
        events=scenario.monitor.telemetry.events,
    )
    scenario.run(RUN_UNTIL)
    return scenario


class TestCrossCheckAcceptance:
    def test_clean_cross_check_run_is_quiet(self):
        scenario = Scenario(poll_interval=POLL, seed=1, cross_check=True)
        scenario.watch("S1", "N1")
        scenario.add_load("L", "S1", StepSchedule.pulse(5.0, 35.0, 200 * KBPS))
        scenario.run(RUN_UNTIL)
        stats = scenario.monitor.stats()
        assert stats["cross_check_mismatches"] == 0
        assert stats["integrity_violations"] == 0
        assert stats["integrity_quarantined"] == 0

    def test_mismatch_flagged_and_blamed_on_the_liar(self, byzantine_run):
        bus = byzantine_run.monitor.telemetry.events
        mismatches = bus.events(CROSS_CHECK_MISMATCH)
        assert mismatches, "cross-check never fired on a lying agent"
        assert all(e.attrs["pair"] == "S1.hme0<->switch.port2" for e in mismatches)
        blamed = {e.attrs["blamed"] for e in mismatches}
        assert blamed == {"S1"}, f"attribution hit the wrong end: {blamed}"

    def test_liar_quarantined_and_path_untrusted(self, byzantine_run):
        monitor = byzantine_run.monitor
        assert monitor.integrity.is_quarantined("S1", 1)
        assert monitor.stats()["integrity_quarantined"] >= 1
        late = [
            r for r in byzantine_run.reports["S1<->N1"] if r.time > 20.0
        ]
        assert late and not any(r.trusted for r in late)

    def test_status_surface_reflects_the_quarantine(self, byzantine_run):
        status = byzantine_run.monitor.integrity.status()
        assert "S1:1" in status["quarantined"]
        row = next(r for r in status["interfaces"] if r["node"] == "S1")
        assert row["quarantined"] and row["trust"] < 0.3
        assert {p["pair"] for p in status["pairs"]} == {
            "L.eth0<->switch.port1",
            "S1.hme0<->switch.port2",
            "S2.hme0<->switch.port3",
        }


# ----------------------------------------------------------------------
# Acceptance: the other corruption classes
# ----------------------------------------------------------------------
class TestOtherFaultClasses:
    def test_stuck_counters_blamed_by_cross_check(self):
        scenario = Scenario(poll_interval=POLL, seed=0, cross_check=True)
        scenario.watch("S2", "N1")
        scenario.add_load("L", "S2", StepSchedule.pulse(5.0, 38.0, 250 * KBPS))
        StuckCounters(
            scenario.network.sim, scenario.build.agents["S2"],
            at=16.0, events=scenario.monitor.telemetry.events,
        )
        scenario.run(RUN_UNTIL)
        bus = scenario.monitor.telemetry.events
        mismatches = bus.events(CROSS_CHECK_MISMATCH)
        assert mismatches
        assert {e.attrs["blamed"] for e in mismatches} == {"S2"}
        assert scenario.monitor.integrity.is_quarantined("S2", 1)
        # The per-sample validator annotated the freeze as SUSPECT too.
        assert scenario.monitor.telemetry.registry.value(
            "integrity_suspect_samples_total"
        ) > 0

    def test_speed_misreport_caught_by_polled_ifspeed(self):
        scenario = Scenario(poll_interval=POLL, seed=0, cross_check=True)
        scenario.watch("S1", "N1")
        SpeedMisreport(
            scenario.network.sim, scenario.build.agents["S1"],
            if_index=1, claimed_bps=10_000_000, at=8.0,
            events=scenario.monitor.telemetry.events,
        )
        scenario.run(30.0)
        checks = {
            e.attrs["check"]
            for e in scenario.monitor.telemetry.events.events(INTEGRITY_VIOLATION)
        }
        assert "speed_mismatch" in checks
        assert scenario.monitor.integrity.is_quarantined("S1", 1)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestIntegrityCli:
    def test_corrupt_flag_shows_quarantine(self, capsys):
        from repro.cli import main

        assert main([
            "integrity", "--corrupt", "S1:random:10", "--until", "30",
        ]) == 0
        out = capsys.readouterr().out
        assert "QUARANTINED" in out
        assert "integrity_violation" in out
        assert "integrity stats:" in out

    def test_json_format(self, capsys):
        import json

        from repro.cli import main

        assert main([
            "integrity", "--cross-check", "--until", "10", "--format", "json",
        ]) == 0
        data = json.loads(capsys.readouterr().out)
        assert set(data) == {"status", "events", "stats"}
        assert len(data["status"]["pairs"]) == 3
        assert data["stats"]["integrity_violations"] == 0

    def test_malformed_corrupt_spec(self, capsys):
        from repro.cli import main

        assert main(["integrity", "--corrupt", "S1:random"]) == 2
        assert main(["integrity", "--corrupt", "S9:random:5"]) == 2
        assert main(["integrity", "--corrupt", "S1:banana:5"]) == 2


# ----------------------------------------------------------------------
# Config plumbing
# ----------------------------------------------------------------------
class TestIntegrityKnobs:
    def test_custom_config_reaches_the_pipeline(self):
        build = build_testbed()
        cfg = IntegrityConfig(rate_tolerance=0.9, quarantine_below=0.1)
        monitor = NetworkMonitor(build, "L", integrity=cfg)
        assert monitor.integrity.config.rate_tolerance == 0.9
        assert monitor.integrity.quarantine.quarantine_below == 0.1

    def test_integrity_off_keeps_stats_resolvable(self):
        build = build_testbed()
        monitor = NetworkMonitor(build, "L", integrity=False)
        monitor.watch_path("S1", "N1")
        monitor.start()
        build.network.run(10.0)
        assert monitor.integrity is None
        stats = monitor.stats()
        assert stats["integrity_violations"] == 0
        assert stats["integrity_rejected"] == 0
        assert stats["samples"] > 0
