"""Column codecs: delta-of-delta timestamps and XOR float values.

Both codecs are streaming (one encoder/decoder object per column per
chunk) and **bit-exact**: ``decode(encode(xs)) == xs`` down to the IEEE
bit pattern, including NaN payloads, signed zeros and denormals.  That
exactness is what lets the measurement history swap its Python-object
lists for compressed chunks without perturbing a single figure.

Timestamps
----------
Simulation timestamps are float seconds, but almost always sit on a
regular polling grid, so they are quantised to integer microsecond
ticks and the *delta of deltas* between consecutive ticks is stored
with a Gorilla-style prefix code::

    0                      dod == 0           (steady cadence: 1 bit)
    10   + 7-bit zigzag    |dod| <  2**6 us
    110  + 12-bit zigzag   |dod| <  2**11 us
    1110 + 32-bit zigzag   |dod| <  2**31 us
    11110 + 64-bit zigzag  anything else that quantises exactly
    11111 + 64 raw bits    escape: the float64 verbatim

The escape fires whenever ``ticks / 1e6`` would not round-trip the
original float (arbitrary jittered times, sub-microsecond residue), so
quantisation can never lose data -- it only ever *saves* bits.

Values
------
Classic Gorilla XOR: each float64 is XORed with its predecessor.  A zero
XOR costs one bit; otherwise the significant window of the XOR is
written either inside the previous window (``10``) or with a fresh
5-bit leading-zero count and 6-bit width (``11``).
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple

import numpy as np

from repro.tsdb.bits import BitReader, BitWriter, zigzag_decode, zigzag_encode

TICKS_PER_SECOND = 1_000_000  # microsecond grid

_PACK = struct.Struct(">d").pack
_UNPACK = struct.Struct(">d").unpack


def _float_to_bits(value: float) -> int:
    return int.from_bytes(_PACK(value), "big")


def _bits_to_float(bits: int) -> float:
    return _UNPACK(bits.to_bytes(8, "big"))[0]


# ----------------------------------------------------------------------
# Timestamps
# ----------------------------------------------------------------------
class TimestampEncoder:
    """Streaming delta-of-delta encoder for monotonic float timestamps."""

    __slots__ = ("writer", "count", "_prev_ticks", "_prev_delta")

    def __init__(self, writer: BitWriter) -> None:
        self.writer = writer
        self.count = 0
        self._prev_ticks: int | None = None
        self._prev_delta: int | None = None

    def append(self, t: float) -> None:
        w = self.writer
        ticks = round(t * TICKS_PER_SECOND)
        exact = (ticks / TICKS_PER_SECOND) == t
        if self.count == 0:
            # First sample: always the raw float (no control code).
            w.write_bits(_float_to_bits(t), 64)
        elif not exact or self._prev_ticks is None:
            w.write_bits(0b11111, 5)
            w.write_bits(_float_to_bits(t), 64)
        else:
            delta = ticks - self._prev_ticks
            dod = delta - (self._prev_delta if self._prev_delta is not None else 0)
            zz = zigzag_encode(dod)
            if dod == 0:
                w.write_bit(0)
            elif zz < (1 << 7):
                w.write_bits(0b10, 2)
                w.write_bits(zz, 7)
            elif zz < (1 << 12):
                w.write_bits(0b110, 3)
                w.write_bits(zz, 12)
            elif zz < (1 << 32):
                w.write_bits(0b1110, 4)
                w.write_bits(zz, 32)
            elif zz < (1 << 64):
                w.write_bits(0b11110, 5)
                w.write_bits(zz, 64)
            else:  # pragma: no cover - astronomically spaced samples
                w.write_bits(0b11111, 5)
                w.write_bits(_float_to_bits(t), 64)
        self._sync(ticks, exact)
        self.count += 1

    def _sync(self, ticks: int, exact: bool) -> None:
        """Advance the delta chain exactly as the decoder will."""
        if exact:
            if self._prev_ticks is not None:
                self._prev_delta = ticks - self._prev_ticks
            self._prev_ticks = ticks
        else:
            self._prev_ticks = None
            self._prev_delta = None


class TimestampDecoder:
    """Mirror of :class:`TimestampEncoder`."""

    __slots__ = ("reader", "count", "_prev_ticks", "_prev_delta", "_prev_t")

    def __init__(self, reader: BitReader) -> None:
        self.reader = reader
        self.count = 0
        self._prev_ticks: int | None = None
        self._prev_delta: int | None = None
        self._prev_t = 0.0

    def next(self) -> float:
        r = self.reader
        if self.count == 0:
            t = _bits_to_float(r.read_bits(64))
        elif r.read_bit() == 0:
            t = self._advance(0)
        elif r.read_bit() == 0:
            t = self._advance(zigzag_decode(r.read_bits(7)))
        elif r.read_bit() == 0:
            t = self._advance(zigzag_decode(r.read_bits(12)))
        elif r.read_bit() == 0:
            t = self._advance(zigzag_decode(r.read_bits(32)))
        elif r.read_bit() == 0:
            t = self._advance(zigzag_decode(r.read_bits(64)))
        else:
            t = _bits_to_float(r.read_bits(64))
        # Re-derive the chain state from the decoded value, exactly as
        # the encoder did from the original (they are bit-identical).
        ticks = round(t * TICKS_PER_SECOND)
        exact = (ticks / TICKS_PER_SECOND) == t
        if exact:
            if self._prev_ticks is not None:
                self._prev_delta = ticks - self._prev_ticks
            self._prev_ticks = ticks
        else:
            self._prev_ticks = None
            self._prev_delta = None
        self.count += 1
        self._prev_t = t
        return t

    def _advance(self, dod: int) -> float:
        delta = (self._prev_delta if self._prev_delta is not None else 0) + dod
        ticks = self._prev_ticks + delta
        return ticks / TICKS_PER_SECOND


# ----------------------------------------------------------------------
# Values
# ----------------------------------------------------------------------
class ValueEncoder:
    """Streaming Gorilla XOR encoder for float64 values.

    By default each value is XORed against its predecessor.  A caller
    may instead supply per-sample *prediction bits* (``base_bits``) from
    any deterministic model -- e.g. "available = capacity - used" in the
    measurement history.  A perfect prediction costs one bit; a miss
    costs no more than the plain codec, and decoding is exact either
    way, so predictors can only ever help.
    """

    __slots__ = ("writer", "count", "_prev_bits", "_leading", "_sigbits")

    def __init__(self, writer: BitWriter) -> None:
        self.writer = writer
        self.count = 0
        self._prev_bits = 0
        self._leading = -1  # current window; -1 = none yet
        self._sigbits = 0

    def append(self, value: float, base_bits: int | None = None) -> None:
        w = self.writer
        bits = _float_to_bits(value)
        if base_bits is None and self.count == 0:
            w.write_bits(bits, 64)
        else:
            xor = bits ^ (self._prev_bits if base_bits is None else base_bits)
            if xor == 0:
                w.write_bit(0)
            else:
                leading = 64 - xor.bit_length()
                if leading > 31:
                    leading = 31  # 5-bit field; extra zeros ride in the window
                trailing = (xor & -xor).bit_length() - 1
                sigbits = 64 - leading - trailing
                if (
                    self._leading >= 0
                    and leading >= self._leading
                    and trailing >= 64 - self._leading - self._sigbits
                ):
                    # Fits the previous significant window: '10' + window.
                    w.write_bits(0b10, 2)
                    w.write_bits(xor >> (64 - self._leading - self._sigbits), self._sigbits)
                else:
                    w.write_bits(0b11, 2)
                    w.write_bits(leading, 5)
                    w.write_bits(sigbits - 1, 6)
                    w.write_bits(xor >> trailing, sigbits)
                    self._leading = leading
                    self._sigbits = sigbits
        self._prev_bits = bits
        self.count += 1


class ValueDecoder:
    """Mirror of :class:`ValueEncoder`."""

    __slots__ = ("reader", "count", "_prev_bits", "_leading", "_sigbits")

    def __init__(self, reader: BitReader) -> None:
        self.reader = reader
        self.count = 0
        self._prev_bits = 0
        self._leading = -1
        self._sigbits = 0

    def next(self, base_bits: int | None = None) -> float:
        r = self.reader
        base = self._prev_bits if base_bits is None else base_bits
        if base_bits is None and self.count == 0:
            bits = r.read_bits(64)
        elif r.read_bit() == 0:
            bits = base
        else:
            if r.read_bit() == 0:
                window = r.read_bits(self._sigbits)
                xor = window << (64 - self._leading - self._sigbits)
            else:
                leading = r.read_bits(5)
                sigbits = r.read_bits(6) + 1
                window = r.read_bits(sigbits)
                xor = window << (64 - leading - sigbits)
                self._leading = leading
                self._sigbits = sigbits
            bits = base ^ xor
        self._prev_bits = bits
        self.count += 1
        return _bits_to_float(bits)


# ----------------------------------------------------------------------
# Whole-column helpers (what chunk sealing actually calls)
# ----------------------------------------------------------------------
def encode_timestamps(times: Sequence[float]) -> bytes:
    writer = BitWriter()
    enc = TimestampEncoder(writer)
    for t in times:
        enc.append(t)
    return writer.to_bytes()


def decode_timestamps(data: bytes, count: int) -> np.ndarray:
    dec = TimestampDecoder(BitReader(data))
    out = np.empty(count, dtype=np.float64)
    for i in range(count):
        out[i] = dec.next()
    return out


def encode_column(
    values: Sequence[float], predictions: Sequence[float] | None = None
) -> bytes:
    """Encode one column, optionally against per-sample predictions."""
    writer = BitWriter()
    enc = ValueEncoder(writer)
    if predictions is None:
        for v in values:
            enc.append(v)
    else:
        for v, p in zip(values, predictions):
            enc.append(v, base_bits=_float_to_bits(float(p)))
    return writer.to_bytes()


def decode_column(
    data: bytes, count: int, predictions: Sequence[float] | None = None
) -> np.ndarray:
    dec = ValueDecoder(BitReader(data))
    out = np.empty(count, dtype=np.float64)
    if predictions is None:
        for i in range(count):
            out[i] = dec.next()
    else:
        for i in range(count):
            out[i] = dec.next(base_bits=_float_to_bits(float(predictions[i])))
    return out
