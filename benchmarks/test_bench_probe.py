"""Regression gate: the active probe plane at scale.

Runs the probe scheduler on a 114-host generated topology (the same
``scale_spec`` shape the stream bench uses) and holds the plane to its
acceptance properties:

- **Budgeted overhead.**  Probe load, measured from the DSCP-marked
  per-interface ToS octet counters on the probing host (i.e. what
  actually hit the wire, not what the scheduler believes it sent),
  stays within ``budget_fraction`` of the narrowest watched link --
  with a 10% allowance for Ethernet framing on top of the scheduler's
  IP-level arithmetic.  Probing must never perturb what it measures.
- **Fairness.**  Round-robin train counts across watched paths differ
  by at most one on a fault-free run.
- **Zero false disagreements.**  A fault-free run under metered
  background load produces no cross-validation findings: every probe
  figure lands inside the passive ``[available, capacity]`` envelope.
- **Detection within three probe rounds.**  A ``SpeedMisreport`` liar
  (physical link negotiated down, agent still claiming the spec speed
  -- invisible to every passive validator) is flagged as a
  ``quarantine_candidate_agent`` within three completed trains on the
  affected path, and the path's report confidence is capped.

Writes ``BENCH_probe.json`` for the CI artifact upload.
"""

import json
from pathlib import Path

from repro.core.monitor import NetworkMonitor
from repro.experiments.scale import scale_spec
from repro.probe import PROBE_TOS
from repro.simnet.faults import SpeedMisreport
from repro.simnet.trafficgen import StaircaseLoad, StepSchedule
from repro.spec.builder import build_network
from repro.telemetry.events import PROBE_DISAGREEMENT, PROBE_TRAIN_COMPLETED

UNTIL = 40.0
BUDGET_FRACTION = 0.02
FRAMING_ALLOWANCE = 1.10  # Ethernet framing rides on the IP-level budget
DETECTION_TRAINS = 3  # liar must be flagged within this many path probes
WATCHES = ("h5_0", "n0_0", "h2_0")  # chain end, hub pocket, liar-to-be

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_probe.json"


def _probed_scale():
    spec = scale_spec(
        switches=6, hosts_per_switch=18, arity=1, hub_pockets=2, hub_hosts=3
    )
    hosts = [n.name for n in spec.hosts()]
    assert len(hosts) >= 100, f"benchmark topology too small: {len(hosts)} hosts"
    build = build_network(spec)
    monitor = NetworkMonitor(build, "h0_0", poll_interval=2.0, poll_jitter=0.0)
    for dst in WATCHES:
        monitor.watch_path("h0_0", dst)
    prober = monitor.enable_probing(budget_fraction=BUDGET_FRACTION)
    return build, monitor, prober, len(hosts)


def test_bench_probe_overhead_fairness_detection():
    # -- Fault-free run under metered background load -------------------
    build, monitor, prober, n_hosts = _probed_scale()
    net = build.network
    StaircaseLoad(
        net.host("h3_0"),
        net.ip_of("h3_1"),
        StepSchedule.pulse(5.0, 35.0, 400_000.0),
    ).start()
    monitor.start()
    net.run(UNTIL)

    stats = prober.stats()
    narrowest = min(prober.narrowest_bytes(lb) for lb in stats["trains_per_path"])
    budget_bytes_per_s = BUDGET_FRACTION * narrowest
    # Every probe leaves the monitoring host, DSCP-marked: the ToS
    # counter on its interface is the ground truth for probe load.
    probe_octets = monitor.network.host("h0_0").interfaces[0].tos_out_octets.get(
        PROBE_TOS, 0
    )
    probe_load = probe_octets / UNTIL
    counts = stats["trains_per_path"]
    fairness_spread = max(counts.values()) - min(counts.values())
    false_disagreements = monitor.stats()["probe_disagreements"]

    # -- Liar run: physical 10 Mb/s, claimed 100 Mb/s -------------------
    build, monitor, prober, _ = _probed_scale()
    net = build.network
    liar_iface = net.host("h2_0").interfaces[0]
    liar_iface.speed_bps = 10e6
    link = liar_iface.link
    link.bandwidth_bps = 10e6
    for end in link.endpoints:
        link.channel_from(end).bandwidth_bps = 10e6
    SpeedMisreport(
        net.sim, build.agents["h2_0"], if_index=1, claimed_bps=100_000_000,
        at=0.0, events=monitor.telemetry.events,
    )
    monitor.start()
    net.run(UNTIL)

    bus = monitor.telemetry.events
    flagged = bus.events(PROBE_DISAGREEMENT)
    first_flag = flagged[0] if flagged else None
    trains_to_detect = (
        len(
            [
                e
                for e in bus.events(PROBE_TRAIN_COMPLETED)
                if e.attrs.get("path") == "h0_0<->h2_0"
                and e.time <= first_flag.time
            ]
        )
        if first_flag is not None
        else None
    )
    causes = sorted({e.attrs.get("cause") for e in flagged})
    liar_report = monitor.current_report("h0_0<->h2_0")

    results = {
        "hosts": n_hosts,
        "watched_paths": len(WATCHES),
        "until_s": UNTIL,
        "budget_fraction": BUDGET_FRACTION,
        "round_interval_s": stats["round_interval"],
        "train_bytes": stats["train_bytes"],
        "budget_bytes_per_s": round(budget_bytes_per_s, 1),
        "probe_octets": probe_octets,
        "probe_load_bytes_per_s": round(probe_load, 1),
        "probe_load_pct_of_budget": round(100.0 * probe_load / budget_bytes_per_s, 1),
        "trains_per_path": counts,
        "fairness_spread": fairness_spread,
        "false_disagreements": false_disagreements,
        "liar_first_flag_s": round(first_flag.time, 3) if first_flag else None,
        "liar_trains_to_detect": trains_to_detect,
        "liar_causes": causes,
        "liar_confidence": liar_report.confidence,
    }
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nprobe bench: {json.dumps(results, indent=2)}")

    assert probe_load <= budget_bytes_per_s * FRAMING_ALLOWANCE, (
        f"probe plane overran its budget: {probe_load:.0f} B/s on the wire "
        f"vs {budget_bytes_per_s:.0f} B/s allowed "
        f"(x{FRAMING_ALLOWANCE} framing allowance)"
    )
    assert stats["trains_started"] >= 30, "scheduler barely ran; bench is vacuous"
    assert fairness_spread <= 1, f"round-robin unfair: {counts}"
    assert false_disagreements == 0, (
        f"fault-free run produced {false_disagreements} disagreements"
    )
    assert first_flag is not None, "liar never flagged"
    assert trains_to_detect <= DETECTION_TRAINS, (
        f"detection took {trains_to_detect} trains on the liar path "
        f"(budget {DETECTION_TRAINS})"
    )
    assert "quarantine_candidate_agent" in causes
    assert liar_report.confidence <= 0.4 and liar_report.degraded
