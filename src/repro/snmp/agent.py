"""The SNMP agent ("SNMP demon" in the paper's words).

An agent binds UDP port 161 on a host or on a switch's management stack,
decodes incoming BER messages, services Get / GetNext / GetBulk against a
:class:`~repro.snmp.mib.MibTree`, and sends the response back across the
simulated network after a small processing delay.

The processing delay matters for fidelity: the paper observed that
"occasionally, some data bytes are counted in a later SNMP message instead
of an earlier one, resulting in an abnormally small value followed by an
abnormally large one" -- their dominant error source.  Seeded jitter on the
agent's response time (plus genuine queueing of the response packets)
reproduces that effect.
"""

from __future__ import annotations

import random
import zlib
from typing import List, Optional

from repro.snmp import ber
from repro.snmp.datatypes import EndOfMibView, NoSuchInstance, NoSuchObject, SnmpValue
from repro.snmp.errors import ErrorStatus
from repro.snmp.message import VERSION_1, VERSION_2C, Message
from repro.snmp.mib import MibError, MibTree, register_snmp_group
from repro.snmp.oid import Oid
from repro.snmp.pdu import MAX_BULK_REPETITIONS, Pdu, VarBind
from repro.simnet.address import IPv4Address
from repro.simnet.sockets import SNMP_PORT

DEFAULT_RESPONSE_DELAY = 0.5e-3  # seconds of agent processing
DEFAULT_RESPONSE_JITTER = 1.5e-3  # uniform extra, seeded

__all__ = ["SnmpAgent", "MAX_BULK_REPETITIONS"]


class SnmpAgent:
    """Serve a MIB over the simulated network.

    ``endpoint`` is a :class:`~repro.simnet.host.Host` or a
    :class:`~repro.simnet.mgmt.ManagementStack` (they share the socket
    API).  The agent answers both SNMPv1 and v2c, with the correct error
    semantics for each.
    """

    def __init__(
        self,
        endpoint,
        mib: MibTree,
        community: str = "public",
        port: int = SNMP_PORT,
        response_delay: float = DEFAULT_RESPONSE_DELAY,
        response_jitter: float = DEFAULT_RESPONSE_JITTER,
        seed: int = 0,
    ) -> None:
        self.endpoint = endpoint
        self.mib = mib
        self.community = community
        self.sim = endpoint.sim
        self.response_delay = response_delay
        self.response_jitter = response_jitter
        # Seed mixes in the endpoint name deterministically (str hash is
        # randomised per-process, so crc32 instead).
        self.rng = random.Random(seed ^ zlib.crc32(endpoint.name.encode()))
        self.socket = endpoint.create_socket(port)
        self.socket.on_receive = self._on_datagram
        # Statistics, served back over SNMP as the RFC 1213 snmp group.
        self.in_packets = 0
        self.out_packets = 0
        self.malformed = 0
        self.bad_community = 0
        self.unsupported = 0
        self.get_requests = 0
        try:
            register_snmp_group(mib, self)
        except MibError:
            pass  # a shared/prebuilt tree may already carry the group

    @property
    def name(self) -> str:
        return self.endpoint.name

    # ------------------------------------------------------------------
    # Notifications
    # ------------------------------------------------------------------
    def enable_link_traps(
        self, destination: IPv4Address, community: Optional[str] = None,
        port: int = 162,
    ) -> None:
        """Emit linkDown/linkUp traps to ``destination`` on state changes.

        Observes every interface of the device this agent serves.  Trap
        datagrams leave through the agent's ordinary socket, so they are
        genuine network traffic (and can themselves be lost -- traps are
        unacknowledged, which is why the poller remains the backstop).
        """
        self._trap_destination = (destination, port)
        self._trap_community = community if community is not None else self.community
        self._observe_interfaces()
        self.traps_sent = 0

    def enable_link_informs(
        self, destination: IPv4Address, community: Optional[str] = None,
        port: int = 162, timeout: float = 2.0, max_attempts: int = 30,
    ) -> None:
        """Like :meth:`enable_link_traps`, but acknowledged.

        Link-state notifications become InformRequests that retransmit
        until the receiver acknowledges -- so a linkDown about the
        agent's own uplink is delivered once connectivity returns,
        instead of dying with the link.
        """
        from repro.snmp.trap import InformSender  # local: avoid cycle

        self._inform_sender = InformSender(
            self.endpoint, destination,
            community=community if community is not None else self.community,
            port=port, timeout=timeout, max_attempts=max_attempts,
        )
        self._observe_interfaces()
        self.traps_sent = 0

    def _observe_interfaces(self) -> None:
        device = getattr(self.endpoint, "switch", self.endpoint)
        for iface in getattr(device, "interfaces", []):
            if self._on_link_state not in iface.state_observers:
                iface.state_observers.append(self._on_link_state)

    def _on_link_state(self, iface, up: bool) -> None:
        from repro.snmp.mib import SYS_UPTIME  # local import avoids a cycle
        from repro.snmp.trap import build_trap_pdu, TRAP_LINK_DOWN, TRAP_LINK_UP
        from repro.snmp.pdu import VarBind
        from repro.snmp.mib import IF_INDEX
        from repro.snmp.datatypes import Integer

        uptime = self.mib.get(SYS_UPTIME)
        trap_oid = TRAP_LINK_UP if up else TRAP_LINK_DOWN
        varbinds = [VarBind(IF_INDEX + str(iface.if_index), Integer(iface.if_index))]
        inform_sender = getattr(self, "_inform_sender", None)
        if inform_sender is not None:
            pdu = build_trap_pdu(uptime, trap_oid, varbinds, confirmed=True)
            inform_sender.send(pdu)
            self.traps_sent += 1
            return
        destination = getattr(self, "_trap_destination", None)
        if destination is None:
            return
        pdu = build_trap_pdu(uptime, trap_oid, varbinds, confirmed=False)
        payload = Message(VERSION_2C, self._trap_community, pdu).encode()
        self.socket.sendto(payload, destination)
        self.traps_sent += 1

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def _on_datagram(
        self, payload: Optional[bytes], size: int, src_ip: IPv4Address, src_port: int
    ) -> None:
        self.in_packets += 1
        if payload is None:
            self.malformed += 1
            return
        try:
            message = Message.decode(payload)
        except ber.BerError:
            self.malformed += 1
            return
        if message.community != self.community:
            # RFC 1157: silently drop (and would send an authenticationFailure
            # trap); the manager sees a timeout.
            self.bad_community += 1
            return
        pdu = message.pdu
        if pdu.kind == "get":
            self.get_requests += 1
            response = self._handle_get(message.version, pdu)
        elif pdu.kind == "get-next":
            response = self._handle_get_next(message.version, pdu)
        elif pdu.kind == "get-bulk" and message.version == VERSION_2C:
            response = self._handle_get_bulk(pdu)
        elif pdu.kind == "set":
            # The monitor is read-only; reject all sets.
            status = (
                ErrorStatus.READ_ONLY if message.version == VERSION_1
                else ErrorStatus.NOT_WRITABLE
            )
            response = pdu.response(pdu.varbinds, status, 1 if pdu.varbinds else 0)
        else:
            self.unsupported += 1
            return
        reply = Message(message.version, self.community, response).encode()
        delay = self.response_delay + self.rng.random() * self.response_jitter
        self.sim.schedule(delay, self._send_reply, reply, src_ip, src_port)

    def _send_reply(self, payload: bytes, dst_ip: IPv4Address, dst_port: int) -> None:
        self.out_packets += 1
        self.socket.sendto(payload, (dst_ip, dst_port))

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def _handle_get(self, version: int, pdu: Pdu) -> Pdu:
        out: List[VarBind] = []
        for i, vb in enumerate(pdu.varbinds):
            value = self.mib.get(vb.oid)
            if value is None:
                if version == VERSION_1:
                    # v1: whole request fails with noSuchName at this index.
                    return pdu.response(pdu.varbinds, ErrorStatus.NO_SUCH_NAME, i + 1)
                exc: SnmpValue = (
                    NoSuchInstance() if self.mib.has_subtree(vb.oid.parent)
                    else NoSuchObject()
                ) if len(vb.oid) > 1 else NoSuchObject()
                out.append(VarBind(vb.oid, exc))
            else:
                out.append(VarBind(vb.oid, value))
        return pdu.response(out)

    def _handle_get_next(self, version: int, pdu: Pdu) -> Pdu:
        out: List[VarBind] = []
        for i, vb in enumerate(pdu.varbinds):
            hit = self.mib.get_next(vb.oid)
            if hit is None:
                if version == VERSION_1:
                    return pdu.response(pdu.varbinds, ErrorStatus.NO_SUCH_NAME, i + 1)
                out.append(VarBind(vb.oid, EndOfMibView()))
            else:
                out.append(VarBind(hit[0], hit[1]))
        return pdu.response(out)

    def _handle_get_bulk(self, pdu: Pdu) -> Pdu:
        # Decode already validated both fields as non-negative; the agent
        # additionally clamps the repetition count to its own bound.
        non_repeaters = pdu.non_repeaters
        max_repetitions = min(pdu.max_repetitions, MAX_BULK_REPETITIONS)
        out: List[VarBind] = []
        for vb in pdu.varbinds[:non_repeaters]:
            hit = self.mib.get_next(vb.oid)
            out.append(
                VarBind(hit[0], hit[1]) if hit is not None else VarBind(vb.oid, EndOfMibView())
            )
        for vb in pdu.varbinds[non_repeaters:]:
            cursor = vb.oid
            ended = False
            for _ in range(max_repetitions):
                hit = self.mib.get_next(cursor)
                if hit is None:
                    if not ended:
                        out.append(VarBind(cursor, EndOfMibView()))
                        ended = True
                    break
                out.append(VarBind(hit[0], hit[1]))
                cursor = hit[0]
        return pdu.response(out)
