"""SNMP value types.

Each class pairs a Python value with its BER tag and knows how to encode
itself; :func:`decode_value` is the single dispatch point used by the PDU
decoder.  The set covers everything MIB-II needs (Table 1 of the paper
uses TimeTicks, Gauge32 and Counter32) plus the SNMPv2c exception values.
"""

from __future__ import annotations

from typing import Union

from repro.snmp import ber
from repro.snmp.oid import Oid


class SnmpValue:
    """Base class: a tagged, BER-encodable SNMP value."""

    tag: int = -1

    def encode(self) -> bytes:  # pragma: no cover - abstract
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))


class Integer(SnmpValue):
    """ASN.1 INTEGER (signed 32-bit in SNMP usage)."""

    tag = ber.TAG_INTEGER

    def __init__(self, value: int) -> None:
        self.value = int(value)

    def encode(self) -> bytes:
        return ber.encode_tlv(self.tag, ber.encode_integer_content(self.value))

    def __repr__(self) -> str:
        return f"Integer({self.value})"


class OctetString(SnmpValue):
    tag = ber.TAG_OCTET_STRING

    def __init__(self, value: Union[bytes, str]) -> None:
        self.value = value.encode() if isinstance(value, str) else bytes(value)

    def encode(self) -> bytes:
        return ber.encode_tlv(self.tag, self.value)

    def as_text(self) -> str:
        return self.value.decode(errors="replace")

    def __repr__(self) -> str:
        return f"OctetString({self.value!r})"


class Null(SnmpValue):
    tag = ber.TAG_NULL

    def encode(self) -> bytes:
        return ber.encode_tlv(self.tag, b"")

    def __repr__(self) -> str:
        return "Null()"


class ObjectIdentifier(SnmpValue):
    tag = ber.TAG_OID

    def __init__(self, value) -> None:
        self.value = Oid(value)

    def encode(self) -> bytes:
        return ber.encode_tlv(self.tag, ber.encode_oid_content(self.value))

    def __repr__(self) -> str:
        return f"ObjectIdentifier('{self.value}')"


class IpAddress(SnmpValue):
    tag = ber.TAG_IPADDRESS

    def __init__(self, value: Union[bytes, str]) -> None:
        if isinstance(value, str):
            parts = value.split(".")
            if len(parts) != 4:
                raise ber.BerError(f"malformed IpAddress {value!r}")
            value = bytes(int(p) for p in parts)
        if len(value) != 4:
            raise ber.BerError(f"IpAddress needs 4 octets, got {len(value)}")
        self.value = bytes(value)

    def encode(self) -> bytes:
        return ber.encode_tlv(self.tag, self.value)

    def as_text(self) -> str:
        return ".".join(str(b) for b in self.value)

    def __repr__(self) -> str:
        return f"IpAddress('{self.as_text()}')"


class _Unsigned(SnmpValue):
    bits = 32

    def __init__(self, value: int) -> None:
        value = int(value)
        if not 0 <= value < (1 << self.bits):
            raise ber.BerError(
                f"{type(self).__name__} out of range: {value!r}"
            )
        self.value = value

    def encode(self) -> bytes:
        return ber.encode_tlv(self.tag, ber.encode_unsigned_content(self.value, self.bits))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.value})"


class Counter32(_Unsigned):
    """Monotonic 32-bit counter that wraps at 2^32 (ifInOctets et al.).

    :meth:`delta` implements the wrap-aware subtraction the paper's poller
    performs ("the old value is subtracted from the new one").
    """

    tag = ber.TAG_COUNTER32

    @staticmethod
    def wrap(raw: int) -> "Counter32":
        """Truncate a free-running simulator counter onto the wire type."""
        return Counter32(raw % (1 << 32))

    def delta(self, older: "Counter32") -> int:
        """Counts accumulated since ``older``, assuming at most one wrap."""
        return (self.value - older.value) % (1 << 32)


class Gauge32(_Unsigned):
    """Non-wrapping 32-bit gauge (ifSpeed)."""

    tag = ber.TAG_GAUGE32


class TimeTicks(_Unsigned):
    """Hundredths of a second since the agent re-initialised (sysUpTime)."""

    tag = ber.TAG_TIMETICKS

    @staticmethod
    def from_seconds(seconds: float) -> "TimeTicks":
        return TimeTicks(int(round(seconds * 100)) % (1 << 32))

    def to_seconds(self) -> float:
        return self.value / 100.0

    def delta_seconds(self, older: "TimeTicks") -> float:
        """Elapsed seconds since ``older``, wrap-aware."""
        return ((self.value - older.value) % (1 << 32)) / 100.0


class Counter64(_Unsigned):
    """64-bit counter (SNMPv2c; provided for high-speed-interface tests)."""

    tag = ber.TAG_COUNTER64
    bits = 64


class _Exception(SnmpValue):
    """Base for SNMPv2c varbind exception values (zero-length content)."""

    def encode(self) -> bytes:
        return ber.encode_tlv(self.tag, b"")

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NoSuchObject(_Exception):
    tag = ber.TAG_NO_SUCH_OBJECT


class NoSuchInstance(_Exception):
    tag = ber.TAG_NO_SUCH_INSTANCE


class EndOfMibView(_Exception):
    tag = ber.TAG_END_OF_MIB_VIEW


_DECODERS = {
    ber.TAG_INTEGER: lambda c: Integer(ber.decode_integer_content(c)),
    ber.TAG_OCTET_STRING: lambda c: OctetString(c),
    ber.TAG_NULL: lambda c: Null(),
    ber.TAG_OID: lambda c: ObjectIdentifier(ber.decode_oid_content(c)),
    ber.TAG_IPADDRESS: lambda c: IpAddress(c),
    ber.TAG_COUNTER32: lambda c: Counter32(ber.decode_unsigned_content(c, 32)),
    ber.TAG_GAUGE32: lambda c: Gauge32(ber.decode_unsigned_content(c, 32)),
    ber.TAG_TIMETICKS: lambda c: TimeTicks(ber.decode_unsigned_content(c, 32)),
    ber.TAG_COUNTER64: lambda c: Counter64(ber.decode_unsigned_content(c, 64)),
    ber.TAG_NO_SUCH_OBJECT: lambda c: NoSuchObject(),
    ber.TAG_NO_SUCH_INSTANCE: lambda c: NoSuchInstance(),
    ber.TAG_END_OF_MIB_VIEW: lambda c: EndOfMibView(),
}


def decode_value(data: bytes, offset: int = 0):
    """Decode one SNMP value TLV; returns (value, new_offset)."""
    tag, content, new_offset = ber.decode_tlv(data, offset)
    decoder = _DECODERS.get(tag)
    if decoder is None:
        raise ber.BerError(f"unsupported SNMP value tag 0x{tag:02x}")
    if tag in (ber.TAG_NULL, ber.TAG_NO_SUCH_OBJECT, ber.TAG_NO_SUCH_INSTANCE,
               ber.TAG_END_OF_MIB_VIEW) and content:
        raise ber.BerError(f"tag 0x{tag:02x} must have empty content")
    return decoder(content), new_offset
