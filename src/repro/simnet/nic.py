"""Network interfaces with MIB-II counters.

Every interface maintains exactly the statistics the paper's monitor polls
(Table 1): ``ifSpeed`` (static bandwidth), ``ifInOctets``/``ifOutOctets``
and the unicast/non-unicast packet counters.  Counters are free-running
Python integers; the SNMP layer truncates them to Counter32 on the wire, so
the poller's 2^32 wrap handling is exercised for real.

Counting semantics (a deliberate modelling decision, see DESIGN.md §6):

- Host NICs run non-promiscuous: they count and deliver only frames
  addressed to their own MAC, plus broadcast/multicast.  A frame that a hub
  repeats past an uninterested host is *not* counted.  This matches the
  paper's hub arithmetic ``u = Σ t_j`` where the per-host t_j are disjoint
  and the *monitor* performs the summation.
- Switch and hub ports run promiscuous: a port counts every octet it
  carries, which is what lets the paper monitor hosts S3-S6 that have no
  SNMP daemon "by polling the interfaces on the switch that are connected
  to S4 and S5".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.simnet.address import IPv4Address, MacAddress
from repro.simnet.link import Link
from repro.simnet.packet import DEFAULT_MTU, EthernetFrame

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.engine import Simulator

# ifType values from RFC 1213 we care about.
IFTYPE_ETHERNET_CSMACD = 6


class InterfaceError(RuntimeError):
    """Raised for misuse of an interface (transmit while detached...)."""


class InterfaceCounters:
    """The mutable MIB-II statistics block of one interface."""

    __slots__ = (
        "in_octets",
        "out_octets",
        "in_ucast_pkts",
        "out_ucast_pkts",
        "in_nucast_pkts",
        "out_nucast_pkts",
        "in_discards",
        "out_discards",
        "in_filtered_pkts",
    )

    def __init__(self) -> None:
        self.in_octets = 0
        self.out_octets = 0
        self.in_ucast_pkts = 0
        self.out_ucast_pkts = 0
        self.in_nucast_pkts = 0
        self.out_nucast_pkts = 0
        self.in_discards = 0
        self.out_discards = 0
        # Frames seen but MAC-filtered on a non-promiscuous NIC.  Not a
        # MIB-II object; kept for tests and diagnostics.
        self.in_filtered_pkts = 0

    def snapshot(self) -> dict:
        """A plain-dict copy, for tests and reporting."""
        return {name: getattr(self, name) for name in self.__slots__}


class Interface:
    """One network interface (NIC or device port).

    Parameters
    ----------
    device:
        The owning host/switch/hub.  It must expose ``name`` (str) and
        ``on_frame(iface, frame)`` for upward delivery.
    local_name:
        The interface's name unique *within* the device ("eth0", "port3"),
        mirroring the spec language's ``localName``.
    speed_bps:
        Static bandwidth, served as MIB-II ``ifSpeed``.
    promiscuous:
        Devices (switch/hub ports) count and deliver every frame; host
        NICs filter on destination MAC.
    """

    def __init__(
        self,
        device: object,
        local_name: str,
        mac: MacAddress,
        speed_bps: float,
        ip: Optional[IPv4Address] = None,
        mtu: int = DEFAULT_MTU,
        promiscuous: bool = False,
        if_index: int = 0,
    ) -> None:
        if speed_bps <= 0:
            raise InterfaceError(f"non-positive interface speed {speed_bps!r}")
        self.device = device
        self.local_name = local_name
        self.mac = mac
        self.ip = ip
        self.speed_bps = float(speed_bps)
        self.mtu = mtu
        self.promiscuous = promiscuous
        self.if_index = if_index  # 1-based, assigned by the owning device
        self.link: Optional[Link] = None
        self.counters = InterfaceCounters()
        # Per-ToS octet accounting (ToS octet -> octets), charged alongside
        # the MIB-II octet counters.  Lets experiments separate DSCP-marked
        # probe/class traffic from best-effort workload on the same port.
        self.tos_out_octets: dict[int, int] = {}
        self.tos_in_octets: dict[int, int] = {}
        self.admin_up = True
        # Optional tap invoked on every delivered frame (testing/tracing).
        self.rx_tap: Optional[Callable[[EthernetFrame], None]] = None
        # Observers notified with (interface, up: bool) on admin-state
        # changes -- how the SNMP agent learns to emit linkDown/linkUp
        # traps without polling its own kernel.
        self.state_observers: list[Callable[["Interface", bool], None]] = []

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def device_name(self) -> str:
        return getattr(self.device, "name", repr(self.device))

    @property
    def full_name(self) -> str:
        """Globally unique "device.interface" name used in reports."""
        return f"{self.device_name}.{self.local_name}"

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, link: Link) -> None:
        if self.link is not None:
            raise InterfaceError(f"{self.full_name} already attached")
        self.link = link

    @property
    def connected_peer(self) -> Optional["Interface"]:
        """The interface on the far side of this interface's link."""
        return self.link.peer_of(self) if self.link is not None else None

    def set_admin_up(self, up: bool) -> None:
        """Change administrative state, notifying observers on transition."""
        if up == self.admin_up:
            return
        self.admin_up = up
        for observer in list(self.state_observers):
            observer(self, up)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def transmit(self, frame: EthernetFrame) -> bool:
        """Send a frame out this interface.  Returns False on tail-drop.

        Octet/packet counters are charged on acceptance by the link queue;
        tail-dropped frames land in ``out_discards`` instead, mirroring
        how real NIC drivers account output drops.
        """
        if self.link is None:
            raise InterfaceError(f"{self.full_name} is not connected")
        if not self.admin_up:
            self.counters.out_discards += 1
            return False
        accepted = self.link.send_from(self, frame)
        if not accepted:
            self.counters.out_discards += 1
            return False
        self.counters.out_octets += frame.size
        tos = frame.payload.tos
        self.tos_out_octets[tos] = self.tos_out_octets.get(tos, 0) + frame.size
        if frame.is_unicast:
            self.counters.out_ucast_pkts += 1
        else:
            self.counters.out_nucast_pkts += 1
        return True

    def deliver(self, frame: EthernetFrame) -> None:
        """Called by the link when a frame arrives at this interface."""
        if not self.admin_up:
            self.counters.in_discards += 1
            return
        if not self.promiscuous:
            wanted = frame.dst == self.mac or frame.dst.is_broadcast or frame.dst.is_multicast
            if not wanted:
                self.counters.in_filtered_pkts += 1
                return
        self.counters.in_octets += frame.size
        tos = frame.payload.tos
        self.tos_in_octets[tos] = self.tos_in_octets.get(tos, 0) + frame.size
        if frame.is_unicast:
            self.counters.in_ucast_pkts += 1
        else:
            self.counters.in_nucast_pkts += 1
        if self.rx_tap is not None:
            self.rx_tap(frame)
        self.device.on_frame(self, frame)  # type: ignore[attr-defined]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Interface {self.full_name} {self.speed_bps / 1e6:.0f} Mb/s mac={self.mac}>"
