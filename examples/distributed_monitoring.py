#!/usr/bin/env python3
"""Distributed network monitoring (paper §5 future work).

The single monitor polls every agent from host L; at scale that
concentrates SNMP load on L's links.  The distributed variant partitions
the polling targets across worker hosts (each polls itself for free via
loopback), and the workers ship derived rate samples to a coordinator as
real UDP datagrams over the same network.

This example runs both designs side by side on the Figure-3 testbed under
the same load and compares (a) the measurements -- which must agree -- and
(b) where the SNMP request load landed.

Run:  python examples/distributed_monitoring.py
"""

from repro import NetworkMonitor, StepSchedule, build_testbed
from repro.core.distributed import DistributedMonitor
from repro.simnet.trafficgen import KBPS, StaircaseLoad

LOAD = StepSchedule.pulse(10.0, 50.0, 300 * KBPS)
RUN_UNTIL = 60.0


def run_single():
    build = build_testbed()
    monitor = NetworkMonitor(build, "L", poll_jitter=0.0)
    label = monitor.watch_path("S1", "N1")
    StaircaseLoad(build.network.host("L"), build.network.ip_of("N1"), LOAD).start()
    monitor.start()
    build.network.run(RUN_UNTIL)
    series = monitor.history.series(label)
    return series.used().max(), {"L": monitor.manager.requests_sent}


def run_distributed():
    build = build_testbed()
    dm = DistributedMonitor(
        build, coordinator_host="L", worker_hosts=["L", "S1", "S2"], poll_jitter=0.0
    )
    label = dm.watch_path("S1", "N1")
    StaircaseLoad(build.network.host("L"), build.network.ip_of("N1"), LOAD).start()
    dm.start()
    build.network.run(RUN_UNTIL)
    series = dm.history.series(label)
    per_worker = dm.stats()["per_worker_requests"]
    print("worker assignments:")
    for worker in sorted(dm.workers):
        print(f"  {worker}: polls {', '.join(dm.targets_of(worker))}")
    return series.used().max(), per_worker


def main() -> None:
    print("=== single monitor (the paper's design) ===")
    single_peak, single_load = run_single()
    print(f"peak measured: {single_peak / 1000:.1f} KB/s; "
          f"SNMP requests by host: {single_load}")

    print("\n=== distributed monitor (3 workers + coordinator on L) ===")
    dist_peak, dist_load = run_distributed()
    print(f"peak measured: {dist_peak / 1000:.1f} KB/s; "
          f"SNMP requests by host: {dist_load}")

    agreement = abs(single_peak - dist_peak) / single_peak * 100
    print(f"\nmeasurement agreement: within {agreement:.1f}%")
    print("the polling load spread from one host to three")


if __name__ == "__main__":
    main()
