"""Unit tests for the RM middleware: QoS, detection, diagnosis, advice."""

import pytest

from repro.core.bandwidth import BandwidthCalculator
from repro.core.poller import InterfaceRates, RateTable
from repro.core.report import ConnectionMeasurement, PathReport
from repro.core.traversal import find_path
from repro.rm.allocator import ReallocationAdvisor
from repro.rm.detector import QosState, ViolationDetector
from repro.rm.diagnosis import diagnose
from repro.rm.qos import QosRequirement
from repro.spec.parser import parse_spec
from repro.topology.model import (
    ConnectionSpec,
    InterfaceRef,
    QosPathSpec,
    TopologyError,
)

SPEC = """
network topology t {
    host L  { snmp community "public"; }
    host S1 { snmp community "public"; }
    host S2 { snmp community "public"; }
    host N1 { snmp community "public"; interface el0 { speed 10 Mbps; } }
    host N2 { snmp community "public"; interface el0 { speed 10 Mbps; } }
    switch sw { snmp community "public"; ports 6; }
    hub hb { ports 4 speed 10 Mbps; }
    connect L.eth0  <-> sw.port1;
    connect S1.eth0 <-> sw.port2;
    connect S2.eth0 <-> sw.port3;
    connect sw.port4 <-> hb.port1;
    connect N1.el0  <-> hb.port2;
    connect N2.el0  <-> hb.port3;
}
"""


def spec():
    return parse_spec(SPEC)


def make_report(available, used=0.0, capacity=1_000_000.0, time=0.0,
                src="S1", dst="N1", name=None):
    conn = ConnectionSpec(InterfaceRef(src, "eth0"), InterfaceRef("sw", "port2"))
    m = ConnectionMeasurement(
        connection=conn,
        capacity_bps=capacity,
        used_bps=capacity - available if used == 0.0 else used,
        source=conn.end_a,
        rule="switch",
    )
    return PathReport(src=src, dst=dst, time=time, connections=(m,), name=name)


class TestQosRequirement:
    def test_needs_a_threshold(self):
        with pytest.raises(TopologyError):
            QosRequirement("r", "A", "B")

    def test_min_available_check(self):
        req = QosRequirement("r", "S1", "N1", min_available_bps=500_000)
        assert req.satisfied_by(make_report(available=600_000))
        assert not req.satisfied_by(make_report(available=400_000))

    def test_max_utilization_check(self):
        req = QosRequirement("r", "S1", "N1", max_utilization=0.5)
        ok = make_report(available=600_000)  # 40% used
        bad = make_report(available=300_000)  # 70% used
        assert req.satisfied_by(ok)
        assert not req.satisfied_by(bad)

    def test_violation_reason_text(self):
        req = QosRequirement("r", "S1", "N1", min_available_bps=500_000)
        reason = req.violation_reason(make_report(available=400_000))
        assert "below required" in reason
        assert req.violation_reason(make_report(available=600_000)) is None

    def test_from_spec_converts_bits_to_bytes(self):
        path = QosPathSpec("p", "A", "B", min_available_bps=8000.0)
        req = QosRequirement.from_spec(path)
        assert req.min_available_bps == 1000.0

    def test_watch_label(self):
        req = QosRequirement("r", "S1", "N1", min_available_bps=1.0)
        assert req.watch_label == "S1<->N1"


class TestDetector:
    def req(self):
        return QosRequirement("r", "S1", "N1", min_available_bps=500_000)

    def test_hysteresis_requires_consecutive_breaches(self):
        det = ViolationDetector(self.req(), breach_count=2, clear_count=2)
        det.offer(make_report(available=600_000, time=0.0))
        assert det.state is QosState.OK
        det.offer(make_report(available=400_000, time=1.0))
        assert det.state is QosState.OK  # one breach is not enough
        event = det.offer(make_report(available=400_000, time=2.0))
        assert det.state is QosState.VIOLATED
        assert event is not None and "below required" in event.reason

    def test_flapping_suppressed(self):
        det = ViolationDetector(self.req(), breach_count=2, clear_count=2)
        for t, avail in enumerate([600e3, 400e3, 600e3, 400e3, 600e3]):
            det.offer(make_report(available=avail, time=float(t)))
        assert det.state is QosState.OK
        assert all(e.state is not QosState.VIOLATED for e in det.events)

    def test_recovery_needs_consecutive_ok(self):
        det = ViolationDetector(self.req(), breach_count=1, clear_count=2)
        det.offer(make_report(available=400_000, time=0.0))
        assert det.violated
        det.offer(make_report(available=600_000, time=1.0))
        assert det.violated  # one OK not enough
        det.offer(make_report(available=600_000, time=2.0))
        assert det.state is QosState.OK

    def test_violation_spans(self):
        det = ViolationDetector(self.req(), breach_count=1, clear_count=1)
        det.offer(make_report(available=400_000, time=1.0))
        det.offer(make_report(available=600_000, time=2.0))
        det.offer(make_report(available=400_000, time=3.0))
        spans = det.violation_spans()
        assert spans == [(1.0, 2.0), (3.0, None)]

    def test_foreign_report_ignored(self):
        det = ViolationDetector(self.req())
        result = det.offer(make_report(available=0.0, src="L", dst="S2"))
        assert result is None
        assert det.reports_seen == 0

    def test_subscriber_called(self):
        det = ViolationDetector(self.req(), breach_count=1)
        events = []
        det.subscribe(events.append)
        det.offer(make_report(available=400_000, time=0.0))
        assert len(events) == 1

    def test_bad_counts_rejected(self):
        with pytest.raises(ValueError):
            ViolationDetector(self.req(), breach_count=0)


class TestDiagnosis:
    def synth_rates(self):
        s = spec()
        rates = RateTable()
        calc = BandwidthCalculator(s, rates)

        def feed(node, idx, in_bps, out_bps):
            rates.update(InterfaceRates(node, idx, 10.0, 2.0, in_bps, out_bps, 0, 0))

        return s, rates, calc, feed

    def test_hub_saturation_diagnosed(self):
        s, rates, calc, feed = self.synth_rates()
        feed("S1", 1, 0, 0)
        feed("sw", 4, 0, 0)
        feed("N1", 1, 1_000_000, 0)
        feed("N2", 1, 200_000, 0)
        path = find_path(s, "S1", "N1")
        report = calc.measure_path(path, "S1", "N1", time=10.0)
        diag = diagnose(s, report)
        assert diag.kind == "hub-saturation"
        assert diag.shared_with == ["N1", "N2"]
        assert "hub" in diag.explanation

    def test_endpoint_link_diagnosed(self):
        s, rates, calc, feed = self.synth_rates()
        feed("S1", 1, 11_000_000, 0)  # S1's own 100 Mb/s link nearly full
        feed("S2", 1, 0, 0)
        path = find_path(s, "S1", "S2")
        report = calc.measure_path(path, "S1", "S2", time=10.0)
        diag = diagnose(s, report)
        assert diag.kind == "endpoint-link"
        assert "S1" in diag.shared_with

    def test_unmeasured_path_gives_none(self):
        s, rates, calc, _ = self.synth_rates()
        path = find_path(s, "S1", "S2")
        report = calc.measure_path(path, "S1", "S2", time=0.0)
        assert diagnose(s, report) is None


class TestAdvisor:
    def test_ranking_avoids_bottleneck(self):
        s = spec()
        rates = RateTable()
        calc = BandwidthCalculator(s, rates)

        def feed(node, idx, in_bps, out_bps=0.0):
            rates.update(InterfaceRates(node, idx, 10.0, 2.0, in_bps, out_bps, 0, 0))

        # Hub saturated; switch hosts idle.
        for node, idx in [("S1", 1), ("S2", 1), ("L", 1), ("sw", 4)]:
            feed(node, idx, 0)
        feed("N1", 1, 1_100_000)
        feed("N2", 1, 100_000)
        path = find_path(s, "S1", "N1")
        report = calc.measure_path(path, "S1", "N1", time=10.0)
        diag = diagnose(s, report)
        advisor = ReallocationAdvisor(s, calc)
        advice = advisor.advise("S1", "N1", diagnosis=diag)
        assert advice, "expected at least one placement"
        best = advice[0]
        assert best.avoids_bottleneck
        assert best.host in {"L", "S2"}
        # N2 (same hub) must rank below the switch hosts.
        hosts_in_order = [a.host for a in advice]
        assert hosts_in_order.index("N2") > hosts_in_order.index(best.host)

    def test_min_available_filters(self):
        s = spec()
        calc = BandwidthCalculator(s, RateTable())
        advisor = ReallocationAdvisor(s, calc)
        advice = advisor.advise("S1", "N1", min_available_bps=float("inf"))
        assert advice == []

    def test_src_and_current_dst_excluded(self):
        s = spec()
        calc = BandwidthCalculator(s, RateTable())
        advisor = ReallocationAdvisor(s, calc)
        hosts = {a.host for a in advisor.advise("S1", "N1")}
        assert "S1" not in hosts and "N1" not in hosts
