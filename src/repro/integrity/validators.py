"""Per-sample plausibility validators for SNMP counter data.

PR 1 hardened the monitor against *absent* data; these checks harden it
against *wrong* data.  Each validator inspects one freshly computed
:class:`~repro.core.poller.InterfaceRates` sample (plus the raw counter
snapshots it was derived from) and yields zero or more typed
:class:`IntegrityVerdict` records.

Severity semantics:

- ``VIOLATION`` -- the sample is demonstrably implausible (a derived rate
  above line rate, a raw counter running backwards without a credible
  wrap, a polled ifSpeed that contradicts the topology).  Violating
  samples are rejected outright and decay the interface's trust score.
- ``SUSPECT`` -- the sample *might* be wrong but an honest explanation
  exists (counters frozen on a possibly-idle link, a poll interval long
  enough to hide a counter wrap).  Suspect samples are admitted and
  annotated; whether they decay trust is per-check (``decays_trust``),
  because e.g. wrap risk is a configuration property, not evidence that
  this interface's agent misbehaves.

The checks are deliberately conservative: the simulated agents serve
timer-refreshed counter caches, so legitimate single-interval rates can
overshoot line rate by ~25 % when displaced octets pile into one
interval.  Default tolerances sit well above that band so a fault-free
run never trips a violation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.poller import InterfaceRates

# Counter32 wraps at 2^32; at ifSpeed bits/s an octet counter takes
# 2^32 * 8 / speed seconds to wrap.  Polling slower than *half* that
# makes a double wrap indistinguishable from a single one.
_COUNTER_SPAN = 2 ** 32


class Severity(enum.Enum):
    OK = "ok"
    SUSPECT = "suspect"
    VIOLATION = "violation"


@dataclass(frozen=True)
class IntegrityVerdict:
    """One validator's finding about one sample (or interface pair)."""

    check: str  # e.g. "rate_bound", "cross_check"
    severity: Severity
    node: str
    if_index: int
    time: float
    detail: str = ""
    decays_trust: bool = True

    def __str__(self) -> str:
        return (
            f"[{self.time:9.3f}s] {self.check}:{self.severity.value}"
            f" {self.node}.if{self.if_index}" + (f" {self.detail}" if self.detail else "")
        )


@dataclass(frozen=True)
class SampleContext:
    """Everything a validator may inspect about one ingested sample.

    ``prev``/``cur`` are the poller's raw ``_CounterSnapshot`` records
    (duck-typed here: ``uptime``, ``octets_in``, ``octets_out`` and the
    four packet counters) -- or ``None`` for samples shipped from a
    remote worker, which arrive pre-derived without raw snapshots;
    validators must tolerate that.  ``speed_bps`` is the topology-declared
    interface speed; ``polled_speed_bps`` is what the agent's own MIB
    claimed via ifSpeed, when the monitor polls it (cross-check mode).
    """

    sample: InterfaceRates
    prev: object
    cur: object
    speed_bps: Optional[float]
    polled_speed_bps: Optional[float]
    configured_interval: float


def wrap_period_seconds(speed_bps: float) -> float:
    """Seconds an octet Counter32 takes to wrap at line rate."""
    return _COUNTER_SPAN * 8.0 / speed_bps


class RateBoundValidator:
    """Derived rate must not exceed ifSpeed by more than ``tolerance``.

    Also distinguishes the *counter regression* case: when the raw
    counter went backwards, the modular delta reads as an enormous
    "wrap" and the rate lands far beyond anything the line could carry.
    An over-bound rate whose raw counter moved backwards is reported as
    ``counter_regression`` rather than ``rate_bound`` -- same severity,
    better diagnosis.
    """

    def __init__(self, tolerance: float = 0.5) -> None:
        if tolerance < 0:
            raise ValueError(f"negative rate tolerance {tolerance!r}")
        self.tolerance = tolerance

    def check(self, ctx: SampleContext) -> List[IntegrityVerdict]:
        speed = ctx.polled_speed_bps or ctx.speed_bps
        if not speed:
            return []
        limit = (speed / 8.0) * (1.0 + self.tolerance)
        verdicts: List[IntegrityVerdict] = []
        # Remotely shipped samples arrive without raw snapshots; the rate
        # bound still applies, only the regression diagnosis is skipped.
        have_raw = ctx.prev is not None and ctx.cur is not None
        directions = (
            (
                "in",
                ctx.sample.in_bytes_per_s,
                ctx.cur.octets_in if have_raw else None,
                ctx.prev.octets_in if have_raw else None,
            ),
            (
                "out",
                ctx.sample.out_bytes_per_s,
                ctx.cur.octets_out if have_raw else None,
                ctx.prev.octets_out if have_raw else None,
            ),
        )
        for name, rate, cur, prev in directions:
            if rate <= limit:
                continue
            regressed = have_raw and cur.value < prev.value
            verdicts.append(
                IntegrityVerdict(
                    check="counter_regression" if regressed else "rate_bound",
                    severity=Severity.VIOLATION,
                    node=ctx.sample.node,
                    if_index=ctx.sample.if_index,
                    time=ctx.sample.time,
                    detail=(
                        f"{name} rate {rate:.0f} B/s exceeds"
                        f" {limit:.0f} B/s ({speed / 1e6:.0f} Mb/s"
                        f" +{self.tolerance:.0%})"
                        + (" after raw counter regression" if regressed else "")
                    ),
                )
            )
        return verdicts


class StuckCounterValidator:
    """Counters frozen across several polls *after* observed activity.

    A genuinely idle interface legitimately reports identical counters
    forever, so freezing alone proves nothing; freezing right after the
    interface carried traffic is suspicious.  Even then only SUSPECT --
    traffic may simply have stopped -- and by default the verdict does
    not decay trust (``decay_trust=False`` unless configured otherwise):
    without a second opinion (the cross-checker) the monitor cannot tell
    "stuck" from "quiet", and quarantining quiet links would throw away
    good data.  The verdict feeds the cross-checker's attribution logic
    and the status surfaces instead.
    """

    def __init__(self, stuck_after: int = 3, decay_trust: bool = False) -> None:
        if stuck_after < 1:
            raise ValueError(f"stuck_after must be >= 1, got {stuck_after!r}")
        self.stuck_after = stuck_after
        self.decay_trust = decay_trust
        # (node, if_index) -> [consecutive frozen polls, ever saw octets move]
        self._state: Dict[Tuple[str, int], List] = {}

    @staticmethod
    def _frozen(ctx: SampleContext) -> bool:
        prev, cur = ctx.prev, ctx.cur
        if prev is None or cur is None:
            # No raw snapshots (remotely shipped sample): fall back to the
            # derived figures -- all-zero rates mean the counters did not
            # move over the sample's interval.
            s = ctx.sample
            return (
                s.in_bytes_per_s == 0.0
                and s.out_bytes_per_s == 0.0
                and s.in_pkts_per_s == 0.0
                and s.out_pkts_per_s == 0.0
            )
        return (
            cur.octets_in.value == prev.octets_in.value
            and cur.octets_out.value == prev.octets_out.value
            and cur.ucast_in.value == prev.ucast_in.value
            and cur.ucast_out.value == prev.ucast_out.value
        )

    def forget(self, node: str, if_index: int) -> None:
        """Drop streak state (agent restarted: baselines are new)."""
        self._state.pop((node, if_index), None)

    def check(self, ctx: SampleContext) -> List[IntegrityVerdict]:
        key = (ctx.sample.node, ctx.sample.if_index)
        streak, was_active = self._state.get(key, (0, False))
        if self._frozen(ctx):
            streak += 1
        else:
            streak, was_active = 0, True
        self._state[key] = [streak, was_active]
        if was_active and streak >= self.stuck_after:
            return [
                IntegrityVerdict(
                    check="stuck_counters",
                    severity=Severity.SUSPECT,
                    node=ctx.sample.node,
                    if_index=ctx.sample.if_index,
                    time=ctx.sample.time,
                    detail=(
                        f"counters frozen for {streak} consecutive polls"
                        " after earlier activity"
                    ),
                    decays_trust=self.decay_trust,
                )
            ]
        return []


class SpeedValidator:
    """Polled ifSpeed must agree with the topology-declared speed.

    Only fires when the monitor actually polls ifSpeed (cross-check
    mode).  ifSpeed is a Gauge32, so declared speeds at or beyond 2^32
    bits/s are unrepresentable and skipped.
    """

    def __init__(self, rel_tolerance: float = 0.01) -> None:
        self.rel_tolerance = rel_tolerance

    def check(self, ctx: SampleContext) -> List[IntegrityVerdict]:
        declared, polled = ctx.speed_bps, ctx.polled_speed_bps
        if not declared or polled is None or declared >= _COUNTER_SPAN:
            return []
        if abs(polled - declared) <= declared * self.rel_tolerance:
            return []
        return [
            IntegrityVerdict(
                check="speed_mismatch",
                severity=Severity.VIOLATION,
                node=ctx.sample.node,
                if_index=ctx.sample.if_index,
                time=ctx.sample.time,
                detail=(
                    f"agent claims ifSpeed {polled / 1e6:g} Mb/s,"
                    f" topology declares {declared / 1e6:g} Mb/s"
                ),
            )
        ]


class WrapRiskValidator:
    """Flag measured intervals long enough to hide a Counter32 wrap.

    ``Counter32.delta`` is correct for at most one wrap per interval;
    an interval beyond half the wrap period implied by ifSpeed makes a
    double wrap plausible, silently halving the computed rate.  That is
    a configuration/timing property, not agent misbehaviour, so the
    verdict is SUSPECT and never decays trust -- it annotates the sample
    and surfaces in status output.  (The one-time configuration warning
    for a *scheduled* interval beyond the threshold is emitted by the
    pipeline at construction.)
    """

    def check(self, ctx: SampleContext) -> List[IntegrityVerdict]:
        speed = ctx.speed_bps
        if not speed:
            return []
        half_wrap = wrap_period_seconds(speed) / 2.0
        if ctx.sample.interval <= half_wrap:
            return []
        return [
            IntegrityVerdict(
                check="wrap_risk",
                severity=Severity.SUSPECT,
                node=ctx.sample.node,
                if_index=ctx.sample.if_index,
                time=ctx.sample.time,
                detail=(
                    f"measured interval {ctx.sample.interval:.0f} s exceeds"
                    f" half the Counter32 wrap period ({half_wrap:.0f} s at"
                    f" {speed / 1e6:g} Mb/s); a double wrap would go unseen"
                ),
                decays_trust=False,
            )
        ]
