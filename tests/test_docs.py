"""Documentation-rot protection.

The docs embed spec-language sources; if the grammar or validator
changes, these tests force the docs to move in lockstep.
"""

import re
from pathlib import Path

import pytest

from repro.spec.builder import build_network
from repro.spec.parser import parse_spec
from repro.spec.validate import validate_spec

DOCS = Path(__file__).resolve().parent.parent / "docs"
README = Path(__file__).resolve().parent.parent / "README.md"


def extract_specs(text: str):
    """Every fenced block containing a spec source (comments allowed)."""
    fenced = re.findall(r"```\n(.*?)\n```", text, re.S)
    return [b for b in fenced if "network topology" in b]


class TestTutorialSpecs:
    def test_tutorial_lan_builds(self):
        text = (DOCS / "tutorial.md").read_text()
        specs = extract_specs(text)
        assert specs, "tutorial must contain at least one spec source"
        spec = parse_spec(specs[0])
        build = build_network(spec)
        assert "ctrl" in build.network.hosts
        assert "core" in build.network.switches
        # Hub leg negotiates down to 10 Mb/s, as the prose claims.
        assert build.network.host("viz").interfaces[0].link.bandwidth_bps == 10e6

    def test_tutorial_application_snippet_parses(self):
        """The application block shown in step 5 must stay grammatical."""
        text = (DOCS / "tutorial.md").read_text()
        specs = extract_specs(text)
        base = specs[0].rstrip()
        assert base.endswith("}")
        snippet = (
            base[:-1]
            + """
    application feed    { on cam1; sends to display rate 2400 Kbps; }
    application display { on viz; }
}
"""
        )
        spec = parse_spec(snippet)
        assert spec.application("feed").flows[0].rate_bps == 2400e3

    def test_spec_language_doc_example_validates(self):
        text = (DOCS / "spec_language.md").read_text()
        specs = extract_specs(text)
        assert specs, "spec_language.md must contain the full example"
        spec = parse_spec(specs[0])
        issues = validate_spec(spec, strict=True)
        assert not any(i.severity == "error" for i in issues)
        assert spec.has_application("sensor")

    def test_readme_quickstart_spec_parses(self):
        text = README.read_text()
        match = re.search(r'parse_spec\("""\n(network topology .*?)"""', text, re.S)
        assert match, "README quickstart must embed a spec"
        spec = parse_spec(match.group(1))
        assert {n.name for n in spec.hosts()} == {"alice", "bob"}


def extract_python_blocks(text: str, marker: str):
    """Fenced ```python blocks whose source mentions ``marker``."""
    fenced = re.findall(r"```python\n(.*?)\n```", text, re.S)
    return [b for b in fenced if marker in b]


class TestStreamingSnippets:
    """The streaming snippets in README and docs must stay runnable."""

    def _run(self, source: str) -> dict:
        namespace: dict = {}
        exec(compile(source, "<doc-snippet>", "exec"), namespace)
        return namespace

    def test_readme_streaming_snippet_runs(self, capsys):
        blocks = extract_python_blocks(README.read_text(), "enable_streaming")
        assert blocks, "README must embed the streaming quick-start"
        namespace = self._run(blocks[0])
        publisher = namespace["monitor"].stream
        assert publisher is not None and publisher.cycles > 0
        assert len(publisher.queries()) == 1
        # The conflated subscription drained real events to stdout.
        assert "<->" in capsys.readouterr().out

    def test_architecture_streaming_snippet_runs(self, capsys):
        text = (DOCS / "architecture.md").read_text()
        blocks = extract_python_blocks(text, "enable_streaming")
        assert blocks, "architecture.md must embed the streaming example"
        namespace = self._run(blocks[0])
        publisher = namespace["publisher"]
        assert publisher.cycles > 0
        assert {q.name for q in publisher.queries()} == {"n1-low", "p90-util"}
        assert "<->" in capsys.readouterr().out

    def test_architecture_documents_stream_stats_keys(self):
        text = (DOCS / "architecture.md").read_text()
        assert "## Streaming subscriptions & continuous queries" in text
        for key in (
            "stream_subscribers",
            "stream_events_delivered",
            "stream_events_suppressed",
            "stream_events_dropped",
        ):
            assert key in text


class TestProbingSnippets:
    """The active-probing snippets in README and docs must stay runnable."""

    def _run(self, source: str) -> dict:
        namespace: dict = {}
        exec(compile(source, "<doc-snippet>", "exec"), namespace)
        return namespace

    def test_readme_probing_snippet_runs(self, capsys):
        blocks = extract_python_blocks(README.read_text(), "enable_probing")
        assert blocks, "README must embed the probing quick-start"
        namespace = self._run(blocks[0])
        prober = namespace["prober"]
        assert prober.stats()["trains_started"] > 0
        assert prober.reports["S1<->N1"].delivered
        out = capsys.readouterr().out
        assert "probe achievable" in out
        # The snippet runs fault-free: the planes must agree.
        assert "\n0 disagreements" in out

    def test_architecture_probing_snippet_runs(self, capsys):
        text = (DOCS / "architecture.md").read_text()
        blocks = extract_python_blocks(text, "enable_probing")
        assert blocks, "architecture.md must embed the probing example"
        namespace = self._run(blocks[0])
        prober = namespace["prober"]
        assert prober.stats()["trains_started"] > 0
        assert prober.findings() == []
        assert "probe achievable" in capsys.readouterr().out

class TestSelfHealingTopologyDocs:
    """The failover quick-start and example must stay runnable."""

    def test_readme_failover_snippet_runs(self, capsys):
        blocks = extract_python_blocks(
            README.read_text(), "enable_topology_sync"
        )
        assert blocks, "README must embed the self-healing quick-start"
        namespace: dict = {}
        exec(compile(blocks[0], "<doc-snippet>", "exec"), namespace)
        monitor = namespace["monitor"]
        assert monitor.stats()["path_reroutes"] == 1
        assert namespace["report"].status == "fresh"
        assert "1 reroute(s)" in capsys.readouterr().out

    def test_uplink_failover_example_runs(self, capsys):
        import runpy

        path = README.parent / "examples" / "uplink_failover.py"
        runpy.run_path(str(path), run_name="__main__")
        out = capsys.readouterr().out
        assert "REROUTED" in out  # the typed stream event printed itself
        assert "status=fresh" in out
        assert "1 reroute(s)" in out

    def test_architecture_documents_topology_stats_keys(self):
        text = (DOCS / "architecture.md").read_text()
        assert "## Self-healing topology" in text
        for key in (
            "topology_rounds",
            "topology_full_rounds",
            "topology_changes",
            "path_reroutes",
            "blocked_connections",
        ):
            assert key in text


class TestProbeDocsContract:
    def test_architecture_documents_probe_stats_keys(self):
        text = (DOCS / "architecture.md").read_text()
        assert "## Active probing & cross-validation" in text
        for key in (
            "probe_trains",
            "probe_packets_sent",
            "probe_packets_lost",
            "probe_bytes_sent",
            "probe_disagreements",
            "probe_recoveries",
            "probe_active_disagreements",
        ):
            assert key in text
        # The three localization causes are part of the documented contract.
        for cause in (
            "unmetered_segment",
            "stale_counter",
            "quarantine_candidate_agent",
        ):
            assert cause in text
