"""ASN.1 Basic Encoding Rules -- the subset SNMP needs (RFC 1157 §4).

Every SNMP message the simulated manager and agents exchange is encoded to
real bytes with this codec and decoded on the far side.  That keeps the
measurement substrate honest: the ~2 % overhead the paper attributes to
"SNMP queries and acknowledgements" emerges here from genuine PDU sizes,
not from a fudge factor.

Only definite-length encodings are produced or accepted (SNMP forbids the
indefinite form).  Integers are minimal two's complement; unsigned
application types (Counter32 etc.) use the unsigned variant with a leading
zero octet where the high bit would otherwise read as a sign.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

from repro.snmp.oid import Oid, OidError

# Universal tags.
TAG_INTEGER = 0x02
TAG_OCTET_STRING = 0x04
TAG_NULL = 0x05
TAG_OID = 0x06
TAG_SEQUENCE = 0x30

# SNMP application tags (RFC 1155 / RFC 1902).
TAG_IPADDRESS = 0x40
TAG_COUNTER32 = 0x41
TAG_GAUGE32 = 0x42
TAG_TIMETICKS = 0x43
TAG_OPAQUE = 0x44
TAG_COUNTER64 = 0x46

# SNMPv2c exception values (context-class, primitive).
TAG_NO_SUCH_OBJECT = 0x80
TAG_NO_SUCH_INSTANCE = 0x81
TAG_END_OF_MIB_VIEW = 0x82

# PDU tags (context-class, constructed).
TAG_GET_REQUEST = 0xA0
TAG_GET_NEXT_REQUEST = 0xA1
TAG_GET_RESPONSE = 0xA2
TAG_SET_REQUEST = 0xA3
TAG_TRAP_V1 = 0xA4
TAG_GET_BULK_REQUEST = 0xA5
TAG_INFORM_REQUEST = 0xA6
TAG_SNMPV2_TRAP = 0xA7


class BerError(ValueError):
    """Raised on malformed BER input or unencodable values."""


# ----------------------------------------------------------------------
# Length octets
# ----------------------------------------------------------------------
def encode_length(length: int) -> bytes:
    """Definite-form length octets."""
    if length < 0:
        raise BerError(f"negative length {length!r}")
    if length < 0x80:
        return bytes([length])
    body = length.to_bytes((length.bit_length() + 7) // 8, "big")
    if len(body) > 126:
        raise BerError("length too large to encode")
    return bytes([0x80 | len(body)]) + body


def decode_length(data: bytes, offset: int) -> Tuple[int, int]:
    """Return (length, new_offset).  Rejects the indefinite form."""
    if offset >= len(data):
        raise BerError("truncated length")
    first = data[offset]
    offset += 1
    if first < 0x80:
        return first, offset
    n = first & 0x7F
    if n == 0:
        raise BerError("indefinite lengths are forbidden in SNMP")
    if offset + n > len(data):
        raise BerError("truncated long-form length")
    length = int.from_bytes(data[offset : offset + n], "big")
    return length, offset + n


# ----------------------------------------------------------------------
# TLV plumbing
# ----------------------------------------------------------------------
def encode_tlv(tag: int, content: bytes) -> bytes:
    return bytes([tag]) + encode_length(len(content)) + content


def decode_tlv(data: bytes, offset: int = 0) -> Tuple[int, bytes, int]:
    """Return (tag, content, new_offset)."""
    if offset >= len(data):
        raise BerError("truncated TLV: no tag")
    tag = data[offset]
    length, body_start = decode_length(data, offset + 1)
    body_end = body_start + length
    if body_end > len(data):
        raise BerError(f"truncated TLV: need {length} content bytes")
    return tag, data[body_start:body_end], body_end


def expect_tag(actual: int, expected: int, what: str) -> None:
    if actual != expected:
        raise BerError(f"expected {what} (tag 0x{expected:02x}), got tag 0x{actual:02x}")


# ----------------------------------------------------------------------
# INTEGER (signed, minimal two's complement)
# ----------------------------------------------------------------------
def encode_integer_content(value: int) -> bytes:
    if value == 0:
        return b"\x00"
    length = (value.bit_length() + 8) // 8  # +1 bit for the sign
    return value.to_bytes(length, "big", signed=True)


def decode_integer_content(content: bytes) -> int:
    if not content:
        raise BerError("empty INTEGER content")
    return int.from_bytes(content, "big", signed=True)


def encode_integer(value: int) -> bytes:
    return encode_tlv(TAG_INTEGER, encode_integer_content(value))


# ----------------------------------------------------------------------
# Unsigned application integers (Counter32, Gauge32, TimeTicks, Counter64)
# ----------------------------------------------------------------------
def encode_unsigned_content(value: int, bits: int) -> bytes:
    if not 0 <= value < (1 << bits):
        raise BerError(f"value {value!r} out of range for unsigned{bits}")
    if value == 0:
        return b"\x00"
    length = (value.bit_length() + 7) // 8
    body = value.to_bytes(length, "big")
    if body[0] & 0x80:
        body = b"\x00" + body  # keep the sign bit clear
    return body


def decode_unsigned_content(content: bytes, bits: int) -> int:
    if not content:
        raise BerError("empty unsigned content")
    value = int.from_bytes(content, "big", signed=False)
    # A leading zero pad octet is legal; anything that still overflows is not.
    if value >= (1 << bits):
        raise BerError(f"unsigned{bits} overflow: {value!r}")
    return value


# ----------------------------------------------------------------------
# OBJECT IDENTIFIER
# ----------------------------------------------------------------------
def encode_oid_content(oid: Oid) -> bytes:
    arcs = oid.arcs
    if len(arcs) < 2:
        raise BerError(f"OID {oid} too short to BER-encode (needs >= 2 arcs)")
    first, second = arcs[0], arcs[1]
    if first > 2 or (first < 2 and second > 39):
        raise BerError(f"invalid leading OID arcs in {oid}")
    # The first two arcs share one subidentifier (X.690 8.19.4), which is
    # itself base-128 encoded -- multi-byte when first=2 and second > 47.
    out = bytearray(_encode_base128(first * 40 + second))
    for arc in arcs[2:]:
        out.extend(_encode_base128(arc))
    return bytes(out)


def _encode_base128(value: int) -> bytes:
    if value < 0:
        raise BerError(f"negative OID arc {value!r}")
    chunks = [value & 0x7F]
    value >>= 7
    while value:
        chunks.append(0x80 | (value & 0x7F))
        value >>= 7
    return bytes(reversed(chunks))


def decode_oid_content(content: bytes) -> Oid:
    return decode_oid_interned(content)


def _decode_oid_content_uncached(content: bytes) -> Oid:
    if not content:
        raise BerError("empty OID content")
    subids = []
    value = 0
    in_arc = False
    for byte in content:
        value = (value << 7) | (byte & 0x7F)
        in_arc = True
        if not byte & 0x80:
            subids.append(value)
            value = 0
            in_arc = False
    if in_arc:
        raise BerError("truncated base-128 arc in OID")
    combined = subids[0]
    if combined < 80:
        arcs = [combined // 40, combined % 40] + subids[1:]
    else:
        arcs = [2, combined - 80] + subids[1:]
    try:
        return Oid(arcs)
    except OidError as exc:  # pragma: no cover - defensive
        raise BerError(str(exc)) from exc


@lru_cache(maxsize=16384)
def _encode_oid_cached(oid: Oid) -> bytes:
    return encode_tlv(TAG_OID, encode_oid_content(oid))


def encode_oid(oid: Oid) -> bytes:
    """TLV-encode an OID, memoized.

    The poll path encodes the same few thousand OIDs (six counter columns
    x every interface on every agent) every cycle; ``Oid`` is immutable
    and hashable, so the encoded TLV is a pure function of it.  The cache
    turns the per-varbind base-128 arithmetic into a dict hit -- the
    "batched BER encode" half of the GetBulk poll path.
    """
    return _encode_oid_cached(oid)


@lru_cache(maxsize=16384)
def _decode_oid_cached(content: bytes) -> Oid:
    return _decode_oid_content_uncached(content)


def decode_oid_interned(content: bytes) -> Oid:
    """Decode OID content bytes, memoized (and thus interned).

    Decoding is the receive-side twin of :func:`encode_oid`'s cache: a
    bulk response carries hundreds of row OIDs drawn from the same small
    column set, and the manager decodes the identical byte strings every
    cycle.  Interning also makes the returned ``Oid`` objects shared, so
    downstream dict lookups hash already-seen instances.
    """
    return _decode_oid_cached(bytes(content))


# ----------------------------------------------------------------------
# Simple composites
# ----------------------------------------------------------------------
def encode_octet_string(value: bytes) -> bytes:
    return encode_tlv(TAG_OCTET_STRING, value)


def encode_null() -> bytes:
    return encode_tlv(TAG_NULL, b"")


def encode_sequence(*parts: bytes) -> bytes:
    return encode_tlv(TAG_SEQUENCE, b"".join(parts))


def decode_sequence(data: bytes, offset: int = 0, tag: int = TAG_SEQUENCE) -> Tuple[bytes, int]:
    actual, content, new_offset = decode_tlv(data, offset)
    expect_tag(actual, tag, "SEQUENCE")
    return content, new_offset
