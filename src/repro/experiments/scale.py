"""Parameterized scale topologies beyond the paper's 9-host testbed.

:func:`scale_spec` generates a k-switch tree with m hosts per switch and
optional hub pockets -- the shape a campus deployment of the paper's
monitor would face: switched access layers chained toward a root, with a
few legacy shared-medium (hub) segments hanging off the edge.  The
generated specs drive the dataflow benchmarks
(``benchmarks/test_bench_dataflow.py``) and any experiment that needs a
topology bigger than the testbed.

:func:`populate_rates` fills a :class:`~repro.core.poller.RateTable` with
deterministic synthetic samples for every counter source in a spec, so
measurement-layer code can be exercised at scale without simulating SNMP
traffic for hundreds of agents.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional, Tuple

from repro.core.counters import resolve_counter_source
from repro.core.poller import InterfaceRates, RateTable
from repro.topology.model import (
    ConnectionSpec,
    DeviceKind,
    InterfaceRef,
    InterfaceSpec,
    NodeSpec,
    TopologySpec,
)

SWITCH_SPEED_BPS = 100e6  # fast-ethernet access layer, as in the paper
HUB_SPEED_BPS = 10e6  # the paper's hubs are 10Base-T


def scale_spec(
    switches: int = 4,
    hosts_per_switch: int = 12,
    arity: int = 2,
    hub_pockets: int = 0,
    hub_hosts: int = 3,
    redundant_uplinks: int = 0,
    name: Optional[str] = None,
    hierarchical: int = 0,
    host_agents: bool = True,
) -> TopologySpec:
    """A k-switch tree with ``m`` hosts per switch and hub pockets.

    ``switches`` switches form a tree: switch ``i`` (i > 0) uplinks to
    switch ``(i - 1) // arity``, so ``arity=1`` yields a deep chain (the
    traversal worst case) and larger arities shallow fan-outs.  Every
    switch carries ``hosts_per_switch`` SNMP-enabled hosts.  The first
    ``hub_pockets`` switches additionally hang a 10 Mb/s hub with
    ``hub_hosts`` hosts off one port -- the paper's shared-medium case,
    exercising the hub sum rule at scale.

    ``redundant_uplinks`` adds that many *extra* parallel uplinks from
    every non-root switch to its parent -- a deliberately loopy mesh.
    Any value > 0 also turns spanning tree on (``stp "on"``) on every
    switch, so the loops are survivable: one uplink per pair forwards,
    the spares block until a failover (see :mod:`repro.simnet.stp`).

    ``hierarchical`` > 0 switches to the two-tier campus shape the
    hierarchical monitor (:mod:`repro.core.hierarchy`) is built for:
    that many *pods*, each an independent ``switches``-deep tree of
    ``hosts_per_switch``-host switches, joined by a core switch.  Each
    pod also carries a dedicated (SNMP-silent) coordinator host
    ``mon<p>`` on its root switch, and the core carries ``monroot`` --
    :func:`hierarchy_plan` names them.  Incompatible with hub pockets
    and redundant uplinks.

    ``host_agents=False`` disables SNMP on every end host, so counter
    sources resolve to the switch ports instead: the realistic 10k-host
    posture where the monitor polls a few hundred many-interface switch
    agents rather than every workstation.
    """
    if switches < 1:
        raise ValueError(f"need at least one switch, got {switches!r}")
    if hosts_per_switch < 1:
        raise ValueError(f"need at least one host per switch, got {hosts_per_switch!r}")
    if arity < 1:
        raise ValueError(f"tree arity must be >= 1, got {arity!r}")
    if hub_pockets > switches:
        raise ValueError(
            f"cannot attach {hub_pockets} hub pocket(s) to {switches} switch(es)"
        )
    if redundant_uplinks < 0:
        raise ValueError(
            f"redundant_uplinks must be >= 0, got {redundant_uplinks!r}"
        )
    if hierarchical:
        if hierarchical < 1:
            raise ValueError(f"hierarchical must be >= 0, got {hierarchical!r}")
        if hub_pockets or redundant_uplinks:
            raise ValueError(
                "hierarchical pods cannot combine with hub_pockets or "
                "redundant_uplinks"
            )
        return _hierarchical_spec(
            pods=hierarchical,
            switches=switches,
            hosts_per_switch=hosts_per_switch,
            arity=arity,
            host_agents=host_agents,
            name=name,
        )
    nodes = []
    connections = []
    # Ports per switch: hosts + uplink(s) + child uplinks + hub (maybe).
    # Exact counts matter -- a 2000-switch chain must not allocate
    # O(switches) ports per switch.
    uplinks_each = 1 + redundant_uplinks
    children = [0] * switches
    for s in range(1, switches):
        children[(s - 1) // arity] += 1
    for s in range(switches):
        ports = (
            hosts_per_switch
            + (uplinks_each if s > 0 else 0)
            + children[s] * uplinks_each
            + (1 if s < hub_pockets else 0)
        )
        nodes.append(
            NodeSpec(
                f"sw{s}",
                kind=DeviceKind.SWITCH,
                interfaces=[
                    InterfaceSpec(f"port{p + 1}", speed_bps=SWITCH_SPEED_BPS)
                    for p in range(ports)
                ],
                snmp_enabled=True,
                attributes={"stp": "on"} if redundant_uplinks else {},
            )
        )
    next_port: Dict[str, int] = {f"sw{s}": 0 for s in range(switches)}

    def take_port(switch: str) -> str:
        port = next_port[switch]
        next_port[switch] = port + 1
        return f"port{port + 1}"

    for s in range(switches):
        for h in range(hosts_per_switch):
            host = f"h{s}_{h}"
            nodes.append(
                NodeSpec(
                    host,
                    interfaces=[InterfaceSpec("eth0", speed_bps=SWITCH_SPEED_BPS)],
                    snmp_enabled=host_agents,
                )
            )
            connections.append(
                ConnectionSpec(
                    InterfaceRef(host, "eth0"),
                    InterfaceRef(f"sw{s}", take_port(f"sw{s}")),
                )
            )
    for s in range(1, switches):
        parent = f"sw{(s - 1) // arity}"
        for _ in range(uplinks_each):
            connections.append(
                ConnectionSpec(
                    InterfaceRef(f"sw{s}", take_port(f"sw{s}")),
                    InterfaceRef(parent, take_port(parent)),
                )
            )
    for p in range(hub_pockets):
        hub = f"hub{p}"
        nodes.append(
            NodeSpec(
                hub,
                kind=DeviceKind.HUB,
                interfaces=[
                    InterfaceSpec(f"port{i + 1}", speed_bps=HUB_SPEED_BPS)
                    for i in range(hub_hosts + 1)
                ],
            )
        )
        connections.append(
            ConnectionSpec(
                InterfaceRef(hub, "port1"),
                InterfaceRef(f"sw{p}", take_port(f"sw{p}")),
            )
        )
        for h in range(hub_hosts):
            host = f"n{p}_{h}"
            nodes.append(
                NodeSpec(
                    host,
                    interfaces=[InterfaceSpec("eth0", speed_bps=HUB_SPEED_BPS)],
                    snmp_enabled=True,
                )
            )
            connections.append(
                ConnectionSpec(
                    InterfaceRef(host, "eth0"),
                    InterfaceRef(hub, f"port{h + 2}"),
                )
            )
    label = name or (
        f"scale-{switches}sw-{hosts_per_switch}h"
        + (f"-{hub_pockets}hub" if hub_pockets else "")
        + (f"-{redundant_uplinks}r" if redundant_uplinks else "")
    )
    return TopologySpec(label, nodes, connections)


def _hierarchical_spec(
    pods: int,
    switches: int,
    hosts_per_switch: int,
    arity: int,
    host_agents: bool,
    name: Optional[str],
) -> TopologySpec:
    """Two-tier pod topology; see :func:`scale_spec` (``hierarchical=``)."""
    nodes = []
    connections = []
    # Core: one uplink per pod plus the root monitor host.
    nodes.append(
        NodeSpec(
            "core",
            kind=DeviceKind.SWITCH,
            interfaces=[
                InterfaceSpec(f"port{p + 1}", speed_bps=SWITCH_SPEED_BPS)
                for p in range(pods + 1)
            ],
            snmp_enabled=True,
        )
    )
    nodes.append(
        NodeSpec(
            "monroot",
            interfaces=[InterfaceSpec("eth0", speed_bps=SWITCH_SPEED_BPS)],
            snmp_enabled=False,
        )
    )
    connections.append(
        ConnectionSpec(InterfaceRef("monroot", "eth0"), InterfaceRef("core", "port1"))
    )
    children = [0] * switches
    for s in range(1, switches):
        children[(s - 1) // arity] += 1
    for p in range(pods):
        prefix = f"p{p}"
        next_port: Dict[str, int] = {}

        def take_port(switch: str) -> str:
            port = next_port.get(switch, 0)
            next_port[switch] = port + 1
            return f"port{port + 1}"

        for s in range(switches):
            ports = (
                hosts_per_switch
                + (1 if s > 0 else 0)  # uplink to parent within the pod
                + children[s]
                # The pod root additionally carries the core uplink and
                # the pod's coordinator host.
                + (2 if s == 0 else 0)
            )
            nodes.append(
                NodeSpec(
                    f"{prefix}sw{s}",
                    kind=DeviceKind.SWITCH,
                    interfaces=[
                        InterfaceSpec(f"port{q + 1}", speed_bps=SWITCH_SPEED_BPS)
                        for q in range(ports)
                    ],
                    snmp_enabled=True,
                )
            )
        for s in range(switches):
            for h in range(hosts_per_switch):
                host = f"{prefix}h{s}_{h}"
                nodes.append(
                    NodeSpec(
                        host,
                        interfaces=[InterfaceSpec("eth0", speed_bps=SWITCH_SPEED_BPS)],
                        snmp_enabled=host_agents,
                    )
                )
                connections.append(
                    ConnectionSpec(
                        InterfaceRef(host, "eth0"),
                        InterfaceRef(f"{prefix}sw{s}", take_port(f"{prefix}sw{s}")),
                    )
                )
        for s in range(1, switches):
            parent = f"{prefix}sw{(s - 1) // arity}"
            connections.append(
                ConnectionSpec(
                    InterfaceRef(f"{prefix}sw{s}", take_port(f"{prefix}sw{s}")),
                    InterfaceRef(parent, take_port(parent)),
                )
            )
        # Pod coordinator host and the uplink into the core.
        mon = f"mon{p}"
        nodes.append(
            NodeSpec(
                mon,
                interfaces=[InterfaceSpec("eth0", speed_bps=SWITCH_SPEED_BPS)],
                snmp_enabled=False,
            )
        )
        connections.append(
            ConnectionSpec(
                InterfaceRef(mon, "eth0"),
                InterfaceRef(f"{prefix}sw0", take_port(f"{prefix}sw0")),
            )
        )
        connections.append(
            ConnectionSpec(
                InterfaceRef(f"{prefix}sw0", take_port(f"{prefix}sw0")),
                InterfaceRef("core", f"port{p + 2}"),
            )
        )
    label = name or f"hier-{pods}pod-{switches}sw-{hosts_per_switch}h"
    return TopologySpec(label, nodes, connections)


def hierarchy_plan(
    pods: int,
    switches: int = 4,
    hosts_per_switch: int = 12,
    workers_per_shard: int = 2,
) -> Dict[str, object]:
    """The monitoring-plane layout for a ``scale_spec(hierarchical=pods)``
    topology: who is root, who coordinates each shard, which hosts work
    for it, and which nodes belong to it (the root's affinity map).

    Returns ``{"root": name, "shards": {leaf: {"workers": [...],
    "members": [...]}}}``.  Workers are ordinary pod hosts; members list
    every node of the pod (used by the hierarchical monitor to give each
    shard its home targets).
    """
    if workers_per_shard < 1:
        raise ValueError(f"workers_per_shard must be >= 1, got {workers_per_shard!r}")
    if workers_per_shard > switches * hosts_per_switch:
        raise ValueError(
            f"{workers_per_shard} workers need at least that many pod hosts"
        )
    shards: Dict[str, Dict[str, list]] = {}
    for p in range(pods):
        prefix = f"p{p}"
        hosts = [
            f"{prefix}h{s}_{h}"
            for s in range(switches)
            for h in range(hosts_per_switch)
        ]
        members = [f"{prefix}sw{s}" for s in range(switches)] + hosts + [f"mon{p}"]
        shards[f"mon{p}"] = {
            "workers": hosts[:workers_per_shard],
            "members": members,
        }
    return {"root": "monroot", "shards": shards}


def populate_rates(
    spec: TopologySpec,
    rates: RateTable,
    time: float,
    interval: float = 2.0,
    seed: int = 0,
    utilisation: float = 0.2,
) -> int:
    """Deterministic synthetic samples for every counter source.

    Each measurable connection's counter source gets one
    :class:`InterfaceRates` at ``time``; the traffic figure is a stable
    hash-derived fraction of ``utilisation`` times the interface speed,
    so repeated calls with the same ``seed`` produce identical tables.
    Returns the number of samples written (sources shared by several
    connections are written once).
    """
    seen: Dict[Tuple[str, int], bool] = {}
    for conn in spec.connections:
        source = resolve_counter_source(spec, conn)
        if source is None or source.key() in seen:
            continue
        seen[source.key()] = True
        node_spec = spec.node(source.node)
        speed = node_spec.interface(source.endpoint.interface).speed_bps
        # Cheap deterministic pseudo-random fraction in (0, 1] -- crc32,
        # not hash(), which is salted per process.
        basis = zlib.crc32(f"{seed}:{source.node}:{source.if_index}".encode()) & 0xFFFF
        fraction = (basis + 1) / 65536.0
        bytes_per_s = utilisation * fraction * speed / 8.0
        rates.update(
            InterfaceRates(
                node=source.node,
                if_index=source.if_index,
                time=time,
                interval=interval,
                in_bytes_per_s=bytes_per_s / 2.0,
                out_bytes_per_s=bytes_per_s / 2.0,
                in_pkts_per_s=bytes_per_s / 1500.0,
                out_pkts_per_s=bytes_per_s / 1500.0,
            )
        )
    return len(seen)
