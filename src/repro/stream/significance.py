"""Change-significance filters: decide which moves wake a subscriber.

Serving millions of consumers means the publisher must not forward
every twitch of every counter.  A filter sits between the matrix's
dirty-pair recomputation and the subscription queues and answers one
question per (pair, new report): *is this move worth delivering?*

Two policies, one interface (:meth:`SignificanceFilter.significant`):

:class:`DeadbandFilter`
    A fixed deadband around the last *delivered* value: the move must
    exceed ``max(absolute_bps, relative * |last|)``.  Simple, zero
    learning, the right tool when the operator knows the noise floor.

:class:`QuantileDeadbandFilter`
    The adaptive deadband in the spirit of Chambers, James, Lambert &
    Vander Wiel, *Monitoring Networked Applications With Incremental
    Quantile Estimation* (Statistical Science 2006): an
    :class:`~repro.telemetry.quantile.EwmaQuantile` tracks the
    distribution of routine per-sample moves for each pair; a move is
    significant only when it exceeds ``factor`` times the current
    ``q``-quantile of that distribution.  Jitter teaches the filter its
    own amplitude and is thereafter suppressed; a genuine level shift
    exceeds the learned quantile and passes.  Because the estimator is
    exponentially weighted, the deadband *follows* a drifting noise
    floor instead of freezing at the first one it saw.

Both filters treat trust-status transitions and NaN flips (a path going
unavailable answers NaN) as always significant, and both expose
``reset()`` so the publisher can re-baseline after a topology epoch
bump -- the distribution of moves on a rewired network is a new
distribution, and the estimators' ``reset()`` (see
:mod:`repro.telemetry.quantile`) exists precisely for that.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro.telemetry.quantile import EwmaQuantile

__all__ = ["DeadbandFilter", "QuantileDeadbandFilter", "SignificanceFilter"]

PairKey = Tuple[str, str]


class SignificanceFilter:
    """Base: per-pair last-delivered values plus the always-pass rules.

    Subclasses implement :meth:`_deadband`, the threshold a move must
    exceed.  The base class owns the bookkeeping every policy shares:
    the first observation of a pair is always significant (a subscriber
    must learn the initial level), NaN transitions in either direction
    are always significant, and :meth:`delivered` records the value a
    passing event actually carried so the deadband is anchored at what
    the consumer last saw, not at every intermediate twitch.
    """

    def __init__(self) -> None:
        self._last_delivered: Dict[PairKey, float] = {}
        self._last_seen: Dict[PairKey, float] = {}

    # -- policy ---------------------------------------------------------
    def _deadband(self, pair: PairKey, last: float, value: float) -> float:
        raise NotImplementedError

    def _observe(self, pair: PairKey, delta: float) -> None:
        """Hook: learning filters see every sample-to-sample move."""

    # -- the one question ----------------------------------------------
    def significant(self, pair: PairKey, value: float) -> bool:
        """Would delivering ``value`` tell the subscriber anything new?

        Learning happens against the *previous sample* (the Chambers
        estimators track the distribution of routine per-sample moves);
        the significance test runs against the *last delivered* value,
        so a slow drift accumulates against the anchor and eventually
        passes instead of being suppressed one small step at a time.
        """
        seen = self._last_seen.get(pair)
        if seen is not None and not (math.isnan(value) or math.isnan(seen)):
            self._observe(pair, abs(value - seen))
        self._last_seen[pair] = value
        last = self._last_delivered.get(pair)
        if last is None:
            return True
        value_nan = math.isnan(value)
        last_nan = math.isnan(last)
        if value_nan or last_nan:
            return value_nan != last_nan  # NaN flip: yes; NaN steady: no
        return abs(value - last) > self._deadband(pair, last, value)

    def delivered(self, pair: PairKey, value: float) -> None:
        """Record that an event carrying ``value`` was actually emitted."""
        self._last_delivered[pair] = value

    def last_delivered(self, pair: PairKey) -> float:
        """The anchor value (NaN before any delivery)."""
        return self._last_delivered.get(pair, math.nan)

    def reset(self) -> None:
        """Re-baseline: forget anchors (and any learned noise floors)."""
        self._last_delivered.clear()
        self._last_seen.clear()


class DeadbandFilter(SignificanceFilter):
    """Fixed absolute/relative deadband around the last delivered value."""

    def __init__(
        self, absolute_bps: float = 0.0, relative: float = 0.0
    ) -> None:
        if absolute_bps < 0.0:
            raise ValueError(f"absolute_bps must be >= 0, got {absolute_bps!r}")
        if not 0.0 <= relative < 1.0:
            raise ValueError(f"relative must be in [0, 1), got {relative!r}")
        super().__init__()
        self.absolute_bps = absolute_bps
        self.relative = relative

    def _deadband(self, pair: PairKey, last: float, value: float) -> float:
        return max(self.absolute_bps, self.relative * abs(last))


class QuantileDeadbandFilter(SignificanceFilter):
    """Adaptive deadband: ``factor`` x the q-quantile of recent moves.

    ``min_samples`` moves must be observed for a pair before the learned
    quantile is trusted; until then ``floor_bps`` (a fixed deadband)
    stands in, so a cold filter neither floods nor starves its
    subscribers.  ``weight`` is the estimator's EWMA weight -- larger
    follows a drifting noise floor faster.
    """

    def __init__(
        self,
        q: float = 0.9,
        factor: float = 2.0,
        floor_bps: float = 0.0,
        min_samples: int = 8,
        weight: float = 0.1,
    ) -> None:
        if factor <= 0.0:
            raise ValueError(f"factor must be > 0, got {factor!r}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples!r}")
        if floor_bps < 0.0:
            raise ValueError(f"floor_bps must be >= 0, got {floor_bps!r}")
        super().__init__()
        self.q = q
        self.factor = factor
        self.floor_bps = floor_bps
        self.min_samples = min_samples
        self.weight = weight
        self._estimators: Dict[PairKey, EwmaQuantile] = {}

    def _observe(self, pair: PairKey, delta: float) -> None:
        estimator = self._estimators.get(pair)
        if estimator is None:
            estimator = self._estimators[pair] = EwmaQuantile(self.q, self.weight)
        estimator.observe(delta)

    def _deadband(self, pair: PairKey, last: float, value: float) -> float:
        estimator = self._estimators.get(pair)
        if estimator is None or estimator.count < self.min_samples:
            return self.floor_bps
        learned = self.factor * estimator.value
        return max(self.floor_bps, learned)

    def noise_floor(self, pair: PairKey) -> Optional[float]:
        """The learned q-quantile of moves for one pair (None: cold)."""
        estimator = self._estimators.get(pair)
        if estimator is None or estimator.count < self.min_samples:
            return None
        return estimator.value

    def reset(self) -> None:
        super().reset()
        for estimator in self._estimators.values():
            estimator.reset()
