"""Repeating Ethernet hub (shared medium).

"A hub forwards data packets to all the connected hosts, not just the one
for which a packet is destined."  That broadcast behaviour is exactly what
forces the paper's hub bandwidth rule (``u_i = Σ_j t_j``, clamped to the
hub speed), so the model repeats every incoming frame out of every other
port.

The shared-medium capacity is modelled with a single internal serialiser:
all repeats pass one at a time through a queue drained at ``speed_bps``.
That caps the hub's aggregate throughput at its rated speed -- a 10 Mb/s
hub carries 10 Mb/s *total*, not per port -- which is the physical property
behind the paper's clamp "u_i cannot exceed the maximum speed of the hub".
(Repeated frames then serialise again on each outgoing port link; at the
paper's load levels this adds only microseconds of latency and does not
alter any byte counter.)

Hubs in the testbed had no SNMP daemon, and neither do ours: the monitor
must measure hub segments from the *host* and *switch* counters around
them, as in the paper.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Deque, List, Tuple

from repro.simnet.address import MacAddress
from repro.simnet.engine import Simulator
from repro.simnet.nic import Interface
from repro.simnet.packet import DEFAULT_MTU, EthernetFrame
from repro.simnet.switch import MAX_L2_HOPS

HUB_QUEUE_BYTES = 262_144


class HubError(RuntimeError):
    """Raised for hub misconfiguration."""


class Hub:
    """An ``n_ports`` repeater sharing ``speed_bps`` across all ports."""

    kind = "hub"

    def __init__(
        self,
        sim: Simulator,
        name: str,
        n_ports: int,
        speed_bps: float = 10e6,
    ) -> None:
        if n_ports < 2:
            raise HubError(f"a hub needs at least 2 ports, got {n_ports}")
        if speed_bps <= 0:
            raise HubError(f"non-positive hub speed {speed_bps!r}")
        self.sim = sim
        self.name = name
        self.speed_bps = float(speed_bps)
        self.interfaces: List[Interface] = []
        self.network = None  # set by Network.add_hub
        self._queue: Deque[Tuple[Interface, EthernetFrame]] = deque()
        self._queue_bytes = 0
        self._busy = False
        self.frames_repeated = 0
        self.frames_dropped = 0
        self.frames_dropped_hops = 0
        for i in range(n_ports):
            self.interfaces.append(
                Interface(
                    device=self,
                    local_name=f"port{i + 1}",
                    mac=MacAddress(0x0200E0000000 + i),
                    ip=None,
                    # Every hub port runs at the shared hub speed; this is
                    # also what clamps attached 100 Mb/s NICs down to
                    # 10 Mb/s via Link's min-speed rule.
                    speed_bps=speed_bps,
                    mtu=DEFAULT_MTU,
                    promiscuous=True,
                    if_index=i + 1,
                )
            )

    # ------------------------------------------------------------------
    # Ports
    # ------------------------------------------------------------------
    def port(self, index: int) -> Interface:
        """1-based port lookup."""
        if not 1 <= index <= len(self.interfaces):
            raise HubError(f"{self.name} has no port {index}")
        return self.interfaces[index - 1]

    def interface(self, local_name: str) -> Interface:
        for iface in self.interfaces:
            if iface.local_name == local_name:
                return iface
        raise HubError(f"no interface {local_name!r} on hub {self.name}")

    def free_port(self) -> Interface:
        for iface in self.interfaces:
            if iface.link is None:
                return iface
        raise HubError(f"hub {self.name} has no free ports")

    def attached_ports(self) -> List[Interface]:
        return [i for i in self.interfaces if i.link is not None]

    # ------------------------------------------------------------------
    # Repeating
    # ------------------------------------------------------------------
    def on_frame(self, in_port: Interface, frame: EthernetFrame) -> None:
        if frame.hops >= MAX_L2_HOPS:
            self.frames_dropped_hops += 1
            return
        if self._queue_bytes + frame.size > HUB_QUEUE_BYTES:
            self.frames_dropped += 1
            return
        self._queue.append((in_port, frame))
        self._queue_bytes += frame.size
        if not self._busy:
            self._repeat_next()

    def _repeat_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        in_port, frame = self._queue.popleft()
        self._queue_bytes -= frame.size
        # The shared medium carries the frame once, at hub speed.
        repeat_time = frame.size * 8.0 / self.speed_bps
        self.sim.schedule(repeat_time, self._emit, in_port, frame)

    def _emit(self, in_port: Interface, frame: EthernetFrame) -> None:
        out_frame = dataclasses.replace(frame, hops=frame.hops + 1)
        self.frames_repeated += 1
        for port in self.interfaces:
            if port is not in_port and port.link is not None:
                port.transmit(out_frame)
        self._repeat_next()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Hub {self.name} ports={len(self.interfaces)} {self.speed_bps / 1e6:.0f} Mb/s>"
