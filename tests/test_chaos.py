"""The resilience acceptance scenario: combined faults on the paper testbed.

Under ``AgentOutage`` + ``AgentReboot`` + ``PacketLoss`` the monitor must
keep emitting a report every cycle, mark the affected paths degraded or
unavailable while the faults are active (never serving stale rates as
fresh), and return every agent to HEALTHY with fresh reports within a
bounded number of cycles after the faults clear.
"""

import math

import pytest

from repro.core.health import HealthState
from repro.core.monitor import NetworkMonitor
from repro.core.report import PathReport
from repro.experiments.testbed import build_testbed
from repro.rm.detector import QosState, ViolationDetector
from repro.rm.qos import QosRequirement
from repro.simnet.faults import (
    AgentOutage,
    AgentReboot,
    CounterCorruption,
    PacketLoss,
)
from repro.telemetry.events import QUARANTINE_ENTER

POLL = 2.0
FAULTS_CLEAR = 30.0  # all three faults are over by here
END = 70.0


def uplink(build):
    """The switch<->hub link (the only path to the NT machines)."""
    hub = build.network.device("hub")
    switch_ifaces = set(build.network.device("switch").interfaces)
    for iface in hub.interfaces:
        if iface.link is not None:
            others = [ep for ep in iface.link.endpoints if ep is not iface]
            if any(ep in switch_ifaces for ep in others):
                return iface.link
    raise AssertionError("testbed has no switch<->hub link")


@pytest.fixture(scope="module")
def chaos_run():
    build = build_testbed()
    net = build.network
    monitor = NetworkMonitor(build, "L", poll_interval=POLL, poll_jitter=0.0)
    s1_label = monitor.watch_path("S1", "S2")
    n1_label = monitor.watch_path("N1", "L")

    reports = {s1_label: [], n1_label: []}
    monitor.subscribe(lambda r: reports[r.label].append(r))

    # S1's daemon crashes for 20 s; N1's host reboots (counters + sysUpTime
    # reset); the hub uplink sheds 30% of frames until t=30.
    AgentOutage(net.sim, build.agents["S1"], at=6.0, until=28.0)
    AgentReboot(net.sim, build.agents["N1"], at=10.0, outage=3.0)
    loss = PacketLoss(uplink(build), loss_rate=0.3, seed=7)
    net.sim.schedule_at(FAULTS_CLEAR, lambda: setattr(loss, "loss_rate", 0.0))

    monitor.start()
    net.run(END)
    return build, monitor, reports, s1_label, n1_label


class TestChaosScenario:
    def test_reports_every_cycle(self, chaos_run):
        build, monitor, reports, s1_label, n1_label = chaos_run
        for label, series in reports.items():
            # One report per poll cycle from start to END, no gaps.
            assert len(series) >= int(END / POLL) - 2, label
            gaps = [b.time - a.time for a, b in zip(series, series[1:])]
            assert all(g == pytest.approx(POLL) for g in gaps), label

    def test_stale_is_never_served_as_fresh(self, chaos_run):
        build, monitor, reports, *_ = chaos_run
        for series in reports.values():
            for report in series:
                if report.freshness is not None and report.freshness > monitor.stale_after:
                    assert report.degraded or report.unavailable, report.summary()
                if report.unavailable:
                    assert math.isnan(report.available_bps)

    def test_dead_agent_path_goes_unavailable_then_recovers(self, chaos_run):
        build, monitor, reports, s1_label, _ = chaos_run
        outage = [r for r in reports[s1_label] if 6.0 < r.time < 28.0]
        assert any(r.degraded for r in outage)
        assert any(r.unavailable for r in outage)
        # Bounded recovery: within 5 cycles of the fault clearing the path
        # must be fully trusted again, and stay that way.
        settled = [r for r in reports[s1_label] if r.time >= FAULTS_CLEAR + 5 * POLL]
        assert settled
        assert all(r.status == "fresh" and r.confidence == 1.0 for r in settled)

    def test_reboot_detected_not_reported_as_spike(self, chaos_run):
        build, monitor, reports, _, n1_label = chaos_run
        assert monitor.stats()["agent_restarts"] >= 1
        # A counter reset re-baselines; it must never produce an absurd
        # rate (the raw delta would look like a 4 GB wrap).
        for report in reports[n1_label]:
            if report.unavailable:
                continue
            for m in report.connections:
                if m.used_bps is not None:
                    assert m.used_bps < 10e6  # 10 MB/s >> anything offered

    def test_all_agents_healthy_after_faults_clear(self, chaos_run):
        build, monitor, *_ = chaos_run
        assert all(
            state is HealthState.HEALTHY
            for state in monitor.health.states().values()
        )
        stats = monitor.stats()
        assert stats["agents_dead"] == 0
        assert stats["poll_timeout_errors"] > 0  # the faults really bit
        assert stats["polls_suppressed"] > 0  # the breaker really opened

    def test_detector_reports_unavailable_as_violation(self, chaos_run):
        """Replaying the chaos reports through the RM detector yields a
        violation whose reason names the unavailable measurement."""
        build, monitor, reports, s1_label, _ = chaos_run
        requirement = QosRequirement(
            name="s1s2", src="S1", dst="S2", min_available_bps=1.0
        )
        detector = ViolationDetector(requirement, breach_count=2, clear_count=2)
        for report in reports[s1_label]:
            detector.offer(report)
        violations = [e for e in detector.events if e.state is QosState.VIOLATED]
        assert violations
        assert any("unavailable" in (e.reason or "") for e in violations)
        assert detector.state is QosState.OK  # cleared after recovery


@pytest.fixture(scope="module")
def mixed_integrity_run():
    """Reboot + counter corruption + packet loss, all at once.

    N1 reboots (honest counter reset), S1's agent serves corrupted
    counters (dishonest data), and the hub uplink drops 20% of frames
    (absent data).  The integrity pipeline must separate the three: the
    reboot re-baselines without quarantine, the corruption quarantines
    S1, and no quarantined interface may ever contribute to a report the
    monitor presents as trusted.
    """
    build = build_testbed()
    net = build.network
    monitor = NetworkMonitor(build, "L", poll_interval=POLL, poll_jitter=0.0)
    labels = [
        monitor.watch_path("S1", "S2"),
        monitor.watch_path("N1", "L"),
        monitor.watch_path("S4", "S5"),
    ]
    reports = {label: [] for label in labels}
    monitor.subscribe(lambda r: reports[r.label].append(r))

    AgentReboot(net.sim, build.agents["N1"], at=8.0, outage=3.0)
    CounterCorruption(
        net.sim, build.agents["S1"], at=10.0, until=26.0, seed=3,
        events=monitor.telemetry.events,
    )
    loss = PacketLoss(uplink(build), loss_rate=0.2, seed=11)
    net.sim.schedule_at(FAULTS_CLEAR, lambda: setattr(loss, "loss_rate", 0.0))

    monitor.start()
    net.run(END)
    return build, monitor, reports


class TestMixedIntegrityChaos:
    def test_corruption_quarantines_only_the_liar(self, mixed_integrity_run):
        build, monitor, reports = mixed_integrity_run
        entries = monitor.telemetry.events.events(QUARANTINE_ENTER)
        assert entries and {e.attrs["node"] for e in entries} == {"S1"}
        # The honest reboot was recognised as a restart, not corruption.
        assert monitor.stats()["agent_restarts"] >= 1
        assert ("N1", 1) not in [
            (e.attrs["node"], e.attrs["if_index"]) for e in entries
        ]

    def test_no_quarantined_interface_feeds_a_trusted_report(
        self, mixed_integrity_run
    ):
        """The acceptance property: trusted => nothing quarantined in it."""
        build, monitor, reports = mixed_integrity_run
        quarantined_spans = {}  # node -> [enter, exit) times
        bus = monitor.telemetry.events
        for e in bus.events(QUARANTINE_ENTER):
            quarantined_spans.setdefault(e.attrs["node"], []).append(e.time)
        assert quarantined_spans  # the scenario really quarantined someone
        for series in reports.values():
            for report in series:
                if report.trusted:
                    assert not report.any_quarantined, report.summary()
                    assert not report.quarantined_connections
                for m in report.connections:
                    # A measurement flagged quarantined must drag the
                    # whole report out of the trusted state.
                    if m.quarantined:
                        assert not report.trusted

    def test_affected_path_flagged_while_corruption_active(
        self, mixed_integrity_run
    ):
        build, monitor, reports = mixed_integrity_run
        s1_reports = reports["S1<->S2"]
        during = [r for r in s1_reports if 14.0 < r.time < 26.0]
        assert during
        assert all(not r.trusted for r in during)
        assert any(r.any_quarantined for r in during)

    def test_everything_recovers_after_faults_clear(self, mixed_integrity_run):
        build, monitor, reports = mixed_integrity_run
        assert monitor.integrity.quarantined_keys() == []
        for label, series in reports.items():
            settled = [r for r in series if r.time >= FAULTS_CLEAR + 10 * POLL]
            assert settled, label
            assert all(r.trusted for r in settled), label
        assert all(
            state is HealthState.HEALTHY
            for state in monitor.health.states().values()
        )


class TestUnavailableReportPolicy:
    def report(self, **kw):
        return PathReport(src="A", dst="A", time=0.0, connections=(), **kw)

    def test_unavailable_never_satisfies(self):
        req = QosRequirement(name="r", src="A", dst="A", min_available_bps=0.0)
        bad = self.report(unavailable=True, confidence=0.0, freshness=12.0)
        assert not req.satisfied_by(bad)
        reason = req.violation_reason(bad)
        assert reason is not None and "unavailable" in reason
        assert "12.0s" in reason

    def test_unavailable_with_no_data_ever(self):
        req = QosRequirement(name="r", src="A", dst="A", min_available_bps=0.0)
        bad = self.report(unavailable=True, confidence=0.0)
        assert "no data ever" in req.violation_reason(bad)

    def test_degraded_report_still_evaluated(self):
        req = QosRequirement(name="r", src="A", dst="A", min_available_bps=0.0)
        ok = self.report(degraded=True, confidence=0.5, freshness=6.0)
        assert req.satisfied_by(ok)
