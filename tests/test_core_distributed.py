"""Tests for the distributed-monitoring extension."""

import pytest

from repro.core.distributed import (
    DistributedMonitor,
    decode_sample,
    encode_sample,
)
from repro.core.poller import InterfaceRates
from repro.experiments.testbed import build_testbed
from repro.simnet.trafficgen import StaircaseLoad, StepSchedule


class TestSampleCodec:
    def test_roundtrip(self):
        sample = InterfaceRates("S1", 3, 12.5, 2.0, 100.5, 50.25, 10.0, 5.0)
        assert decode_sample(encode_sample(sample)) == sample

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            decode_sample(b"not json")


def distributed(worker_hosts=("L", "S1", "S2"), **kwargs):
    build = build_testbed()
    dm = DistributedMonitor(
        build, coordinator_host="L", worker_hosts=list(worker_hosts),
        poll_jitter=0.0, **kwargs
    )
    return build, dm


class TestPartitioning:
    def test_every_snmp_node_assigned_exactly_once(self):
        build, dm = distributed()
        assigned = [t for w in dm.workers.values() for t in w.poller.targets]
        assert sorted(t.node for t in assigned) == [
            "L", "N1", "N2", "S1", "S2", "switch",
        ]

    def test_affinity_workers_poll_themselves(self):
        build, dm = distributed()
        assert "L" in dm.targets_of("L")
        assert "S1" in dm.targets_of("S1")
        assert "S2" in dm.targets_of("S2")

    def test_single_worker_gets_everything(self):
        build, dm = distributed(worker_hosts=("S2",))
        assert sorted(dm.targets_of("S2")) == [
            "L", "N1", "N2", "S1", "S2", "switch",
        ]

    def test_no_workers_rejected(self):
        build = build_testbed()
        with pytest.raises(ValueError):
            DistributedMonitor(build, "L", [])


class TestOperation:
    def test_measurements_match_single_monitor_semantics(self):
        build, dm = distributed()
        label = dm.watch_path("S1", "N1")
        net = build.network
        StaircaseLoad(
            net.host("L"), net.ip_of("N1"), StepSchedule.pulse(5.0, 35.0, 300_000.0)
        ).start()
        dm.start()
        net.run(40.0)
        series = dm.history.series(label)
        assert series.used().max() == pytest.approx(300_000 * 1.019, rel=0.08)
        assert dm.samples_received > 0
        assert dm.decode_errors == 0

    def test_load_spread_across_workers(self):
        build, dm = distributed()
        dm.watch_path("S1", "N1")
        dm.start()
        build.network.run(20.0)
        per_worker = dm.stats()["per_worker_requests"]
        active = [count for count in per_worker.values() if count > 0]
        assert len(active) == 3  # all three workers actually polled

    def test_subscribers_receive_reports(self):
        build, dm = distributed()
        dm.watch_path("S1", "N1")
        seen = []
        dm.subscribe(seen.append)
        dm.start()
        build.network.run(12.0)
        assert len(seen) >= 3

    def test_stop_halts_workers(self):
        build, dm = distributed()
        dm.watch_path("S1", "N1")
        dm.start()
        build.network.run(10.0)
        dm.stop()
        build.network.run(11.0)  # drain datagrams already on the wire
        received = dm.samples_received
        build.network.run(40.0)
        assert dm.samples_received == received

    def test_duplicate_watch_rejected(self):
        build, dm = distributed()
        dm.watch_path("S1", "N1")
        with pytest.raises(ValueError):
            dm.watch_path("S1", "N1")

    def test_report_shipping_is_real_traffic(self):
        """Workers' sample datagrams traverse the network to the coordinator."""
        build, dm = distributed(worker_hosts=("S2",))
        dm.watch_path("S1", "N1")
        s2 = build.network.host("S2")
        base = s2.interfaces[0].counters.out_octets
        dm.start()
        build.network.run(15.0)
        assert s2.interfaces[0].counters.out_octets > base + 1000
