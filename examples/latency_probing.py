#!/usr/bin/env python3
"""Path latency: model estimate vs probe ground truth (paper §5).

Latency measurement is the first item of the paper's future work.  Two
implementations are compared here on the Figure-3 testbed:

- :class:`LatencyEstimator` derives one-way latency from the bandwidth
  monitor's existing SNMP measurements (no extra traffic);
- :class:`PathProber` measures true RTTs with timestamped UDP probes to
  an ECHO service.

Both are shown idle and under a hub-saturating load, where queueing
dominates.

Run:  python examples/latency_probing.py
"""

from repro import NetworkMonitor, StepSchedule, build_testbed
from repro.core.latency import LatencyEstimator, PathProber
from repro.simnet.sockets import EchoService
from repro.simnet.trafficgen import KBPS, StaircaseLoad


def probe_once(net, label):
    box = {}
    prober = PathProber(
        net.host("S1"),
        net.ip_of("N1"),
        count=20,
        payload_size=1472,  # MTU-sized, matching the estimator's model
        on_complete=lambda stats: box.update(stats=stats),
    )
    prober.start()
    net.run(net.now + 10.0)
    stats = box["stats"]
    print(
        f"{label:>12}: RTT min {stats.min_s * 1e3:6.3f} ms, "
        f"mean {stats.mean_s * 1e3:6.3f} ms, max {stats.max_s * 1e3:6.3f} ms, "
        f"jitter {stats.jitter_s * 1e3:6.3f} ms, loss {stats.loss_rate * 100:.0f}%"
    )
    return stats


def main() -> None:
    build = build_testbed()
    net = build.network
    monitor = NetworkMonitor(build, "L")
    monitor.watch_path("S1", "N1")
    monitor.start()
    EchoService(net.host("N1"))
    estimator = LatencyEstimator(build.spec, monitor.calculator)

    net.run(6.0)  # two poll cycles so utilisation data exists
    print("path S1 -> switch -> hub -> N1\n")
    idle_est = estimator.estimate_path("S1", "N1")
    print(f"{'idle':>12}: model one-way {idle_est.total_ms:6.3f} ms "
          f"(queueing {idle_est.queueing_s * 1e3:.3f} ms)")
    probe_once(net, "idle probe")

    # Saturate the hub to ~72% and measure again.
    StaircaseLoad(
        net.host("L"), net.ip_of("N1"),
        StepSchedule([(net.now + 2.0, 900 * KBPS)]),
    ).start()
    net.run(net.now + 15.0)
    loaded_est = estimator.estimate_path("S1", "N1")
    print(f"\n{'loaded':>12}: model one-way {loaded_est.total_ms:6.3f} ms "
          f"(queueing {loaded_est.queueing_s * 1e3:.3f} ms)")
    probe_once(net, "loaded probe")

    print("\nqueueing delay dominates under load, as the M/M/1 term predicts")


if __name__ == "__main__":
    main()
