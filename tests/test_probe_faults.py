"""Probe trains under injected faults: loss, flaps, slow agents.

The invariants: loss and jitter figures stay truthful under fault
injection, and no fault class can wedge the scheduler -- an undelivered
train is abandoned by its own timeout and the next round proceeds.

``REPRO_CHAOS_SEED`` reseeds the random fault injectors so CI can replay
the suite under a different randomness without editing it.
"""

import os

import pytest

from repro.core.monitor import NetworkMonitor
from repro.experiments.testbed import build_testbed
from repro.probe import ProbeTrain
from repro.simnet.faults import Flap, PacketLoss, ResponseDelay

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


def probed(watches=(("S1", "N1"),), **options):
    build = build_testbed()
    monitor = NetworkMonitor(build, "L", poll_interval=2.0)
    for src, dst in watches:
        monitor.watch_path(src, dst)
    prober = monitor.enable_probing(**options)
    return build, monitor, prober


class TestPacketLoss:
    def test_loss_rate_and_gaps_are_reported(self):
        build = build_testbed()
        net = build.network
        PacketLoss(net.host("N1").interfaces[0].link, loss_rate=0.3, seed=SEED)
        done = []
        ProbeTrain(
            net.host("S1"), net.host("N1"), count=64, on_complete=done.append
        ).start()
        net.run(3.0)
        assert len(done) == 1
        report = done[0]
        assert report.received < report.sent
        assert report.loss_rate == pytest.approx(
            1.0 - report.received / report.sent
        )
        # With 30% loss across 64 probes, mid-train gaps are certain.
        assert report.gaps > 0
        assert not report.complete

    def test_scheduler_keeps_running_under_loss(self):
        build, monitor, prober = probed()
        PacketLoss(
            build.network.host("N1").interfaces[0].link,
            loss_rate=0.2,
            seed=SEED,
        )
        monitor.start()
        build.network.run(40.0)
        stats = prober.stats()
        assert stats["trains_started"] >= 20
        lossy = [r for r in prober.reports.values() if r.loss_rate > 0]
        assert lossy or prober.reports  # seeded loss may spare a train


class TestFlap:
    def test_downed_link_abandons_trains_not_the_scheduler(self):
        build, monitor, prober = probed()
        net = build.network
        # Hub leg flaps: down 3 s (several whole probe rounds), up 5 s.
        Flap(
            net.sim, net.host("N1").interfaces[0].link,
            at=10.0, down_for=3.0, up_for=5.0, until=30.0,
            events=monitor.telemetry.events,
        )
        monitor.start()
        net.run(45.0)
        stats = prober.stats()
        assert stats["trains_abandoned"] >= 1
        # The scheduler outlived every outage: trains kept starting and
        # the final train (link restored) went through cleanly.
        assert stats["trains_started"] > stats["trains_abandoned"]
        last = prober.reports["S1<->N1"]
        assert last.delivered and last.loss_rate == 0.0

    def test_abandoned_train_reports_total_loss(self):
        build = build_testbed()
        net = build.network
        link = net.host("N1").interfaces[0].link
        for iface in link.endpoints:
            iface.set_admin_up(False)
        done = []
        ProbeTrain(
            net.host("S1"), net.host("N1"), timeout=1.0, on_complete=done.append
        ).start()
        net.run(2.0)
        assert len(done) == 1
        report = done[0]
        assert not report.delivered
        assert report.received == 0 and report.loss_rate == 1.0
        assert "ABANDONED" in report.summary()


class TestResponseDelay:
    def test_slow_agents_degrade_passive_but_not_probing(self):
        build, monitor, prober = probed()
        for name in ("S1", "N1", "switch"):
            ResponseDelay(
                build.network.sim, build.agents[name], extra=0.8, at=5.0,
                events=monitor.telemetry.events,
            )
        monitor.start()
        build.network.run(40.0)
        stats = prober.stats()
        # Probe packets never touch the SNMP agents: every train delivers.
        assert stats["trains_abandoned"] == 0
        assert prober.reports["S1<->N1"].delivered
        # And slow polling alone must not read as a lying counter.
        assert monitor.stats()["probe_disagreements"] == 0


class TestNeverWedge:
    def test_rounds_continue_while_trains_time_out(self):
        build, monitor, prober = probed(timeout=2.5)
        net = build.network
        # Permanently down hub leg: every train must be abandoned, yet
        # rounds keep firing and each timeout releases the next train.
        link = net.host("N1").interfaces[0].link
        for iface in link.endpoints:
            iface.set_admin_up(False)
        monitor.start()
        net.run(40.0)
        stats = prober.stats()
        # Every finished train was abandoned (at most one still in flight
        # at the cutoff), and rounds never stopped firing.
        assert stats["trains_started"] > 5
        assert stats["trains_abandoned"] >= stats["trains_started"] - 1
        # In-flight guard skipped rounds instead of stacking trains.
        assert stats["rounds_skipped"] > 0
