"""Unit tests for the spec-language parser."""

import pytest

from repro.spec.parser import ParseError, parse_spec
from repro.topology.model import DeviceKind, InterfaceRef

MINIMAL = """
network topology t {
    host A { }
    host B { }
    switch sw { ports 4; }
    connect A.eth0 <-> sw.port1;
    connect B.eth0 <-> sw.port2;
}
"""


class TestHappyPath:
    def test_minimal_spec(self):
        spec = parse_spec(MINIMAL)
        assert spec.name == "t"
        assert [n.name for n in spec.nodes] == ["A", "B", "sw"]
        assert len(spec.connections) == 2

    def test_default_interface_created(self):
        spec = parse_spec(MINIMAL)
        assert spec.node("A").interfaces[0].local_name == "eth0"

    def test_host_attributes(self):
        spec = parse_spec(
            """
            network topology t {
                host L {
                    os "Linux";
                    snmp community "priv8";
                    location "rack 3";
                    interface eth0 { speed 10 Mbps; mtu 9000; }
                }
            }
            """
        )
        node = spec.node("L")
        assert node.os_label == "Linux"
        assert node.snmp_enabled and node.snmp_community == "priv8"
        assert node.attributes["location"] == "rack 3"
        iface = node.interface("eth0")
        assert iface.speed_bps == 10e6
        assert iface.mtu == 9000

    def test_snmp_off(self):
        spec = parse_spec('network topology t { host A { snmp off; } }')
        assert not spec.node("A").snmp_enabled

    def test_switch_ports_expand(self):
        spec = parse_spec("network topology t { switch s { ports 8 speed 1 Gbps; } }")
        node = spec.node("s")
        assert node.kind is DeviceKind.SWITCH
        assert len(node.interfaces) == 8
        assert node.interfaces[0].local_name == "port1"
        assert node.interfaces[0].speed_bps == 1e9

    def test_hub_default_speed(self):
        spec = parse_spec("network topology t { hub h { ports 4; } }")
        assert spec.node("h").interfaces[0].speed_bps == 10e6

    def test_connection_endpoints(self):
        spec = parse_spec(MINIMAL)
        conn = spec.connections[0]
        assert conn.end_a == InterfaceRef("A", "eth0")
        assert conn.end_b == InterfaceRef("sw", "port1")
        assert conn.bandwidth_bps is None

    def test_connection_bandwidth_override(self):
        spec = parse_spec(
            """
            network topology t {
                host A { }
                switch s { ports 2; }
                connect A.eth0 <-> s.port1 [ bandwidth 10 Mbps ];
            }
            """
        )
        assert spec.connections[0].bandwidth_bps == 10e6

    def test_qospath(self):
        spec = parse_spec(
            """
            network topology t {
                host A { } host B { }
                qospath feed {
                    from A to B;
                    min_available 200 KBps;
                    max_utilization 0.8;
                }
            }
            """
        )
        path = spec.qos_path("feed")
        assert path.src == "A" and path.dst == "B"
        assert path.min_available_bps == 200 * 8e3
        assert path.max_utilization == 0.8

    @pytest.mark.parametrize(
        "unit,factor",
        [("bps", 1), ("Kbps", 1e3), ("Mbps", 1e6), ("Gbps", 1e9),
         ("Bps", 8), ("KBps", 8e3), ("MBps", 8e6), ("GBps", 8e9)],
    )
    def test_all_rate_units(self, unit, factor):
        spec = parse_spec(
            f'network topology t {{ host A {{ interface e {{ speed 2 {unit}; }} }} }}'
        )
        assert spec.node("A").interface("e").speed_bps == 2 * factor


class TestErrors:
    @pytest.mark.parametrize(
        "text,fragment",
        [
            ("topology t { }", "network"),
            ("network topology { }", "topology name"),
            ("network topology t { host A { } ", "end of input"),
            ("network topology t { widget W { } }", "unknown declaration"),
            ("network topology t { host A { os Linux; } }", "OS label"),
            ("network topology t { switch s { } }", "ports N"),
            ("network topology t { switch s { ports 1; } }", "at least 2"),
            ("network topology t { host A { interface e { speed 5 parsecs; } } }",
             "unknown rate unit"),
            ("network topology t { connect A <-> B.e; }", "'.'"),
            ("network topology t { connect A.e B.e; }", "'<->'"),
            ("network topology t { qospath p { min_available 1 Kbps; } }", "from X to Y"),
            ("network topology t { host A { interface e { mtu; } } }", "MTU"),
        ],
    )
    def test_syntax_errors(self, text, fragment):
        with pytest.raises(ParseError) as err:
            parse_spec(text)
        assert fragment in str(err.value)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as err:
            parse_spec("network topology t {\n  widget W { }\n}")
        assert "line 2" in str(err.value)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_spec(MINIMAL + " extra")
