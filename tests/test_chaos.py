"""The resilience acceptance scenario: combined faults on the paper testbed.

Under ``AgentOutage`` + ``AgentReboot`` + ``PacketLoss`` the monitor must
keep emitting a report every cycle, mark the affected paths degraded or
unavailable while the faults are active (never serving stale rates as
fresh), and return every agent to HEALTHY with fresh reports within a
bounded number of cycles after the faults clear.
"""

import math
import os

import pytest

from repro.core.health import HealthState
from repro.core.monitor import NetworkMonitor
from repro.core.report import PathReport
from repro.experiments.testbed import build_testbed
from repro.rm.detector import QosState, ViolationDetector
from repro.rm.qos import QosRequirement
from repro.simnet.faults import (
    AgentOutage,
    AgentReboot,
    CounterCorruption,
    LinkFailure,
    PacketLoss,
)
from repro.simnet.trafficgen import KBPS, StaircaseLoad, StepSchedule
from repro.spec.builder import build_network
from repro.spec.parser import parse_spec
from repro.telemetry.events import QUARANTINE_ENTER

POLL = 2.0
FAULTS_CLEAR = 30.0  # all three faults are over by here
END = 70.0


def uplink(build):
    """The switch<->hub link (the only path to the NT machines)."""
    hub = build.network.device("hub")
    switch_ifaces = set(build.network.device("switch").interfaces)
    for iface in hub.interfaces:
        if iface.link is not None:
            others = [ep for ep in iface.link.endpoints if ep is not iface]
            if any(ep in switch_ifaces for ep in others):
                return iface.link
    raise AssertionError("testbed has no switch<->hub link")


@pytest.fixture(scope="module")
def chaos_run():
    build = build_testbed()
    net = build.network
    monitor = NetworkMonitor(build, "L", poll_interval=POLL, poll_jitter=0.0)
    s1_label = monitor.watch_path("S1", "S2")
    n1_label = monitor.watch_path("N1", "L")

    reports = {s1_label: [], n1_label: []}
    monitor.subscribe(lambda r: reports[r.label].append(r))

    # S1's daemon crashes for 20 s; N1's host reboots (counters + sysUpTime
    # reset); the hub uplink sheds 30% of frames until t=30.
    AgentOutage(net.sim, build.agents["S1"], at=6.0, until=28.0)
    AgentReboot(net.sim, build.agents["N1"], at=10.0, outage=3.0)
    loss = PacketLoss(uplink(build), loss_rate=0.3, seed=7)
    net.sim.schedule_at(FAULTS_CLEAR, lambda: setattr(loss, "loss_rate", 0.0))

    monitor.start()
    net.run(END)
    return build, monitor, reports, s1_label, n1_label


class TestChaosScenario:
    def test_reports_every_cycle(self, chaos_run):
        build, monitor, reports, s1_label, n1_label = chaos_run
        for label, series in reports.items():
            # One report per poll cycle from start to END, no gaps.
            assert len(series) >= int(END / POLL) - 2, label
            gaps = [b.time - a.time for a, b in zip(series, series[1:])]
            assert all(g == pytest.approx(POLL) for g in gaps), label

    def test_stale_is_never_served_as_fresh(self, chaos_run):
        build, monitor, reports, *_ = chaos_run
        for series in reports.values():
            for report in series:
                if report.freshness is not None and report.freshness > monitor.stale_after:
                    assert report.degraded or report.unavailable, report.summary()
                if report.unavailable:
                    assert math.isnan(report.available_bps)

    def test_dead_agent_path_goes_unavailable_then_recovers(self, chaos_run):
        build, monitor, reports, s1_label, _ = chaos_run
        outage = [r for r in reports[s1_label] if 6.0 < r.time < 28.0]
        assert any(r.degraded for r in outage)
        assert any(r.unavailable for r in outage)
        # Bounded recovery: within 5 cycles of the fault clearing the path
        # must be fully trusted again, and stay that way.
        settled = [r for r in reports[s1_label] if r.time >= FAULTS_CLEAR + 5 * POLL]
        assert settled
        assert all(r.status == "fresh" and r.confidence == 1.0 for r in settled)

    def test_reboot_detected_not_reported_as_spike(self, chaos_run):
        build, monitor, reports, _, n1_label = chaos_run
        assert monitor.stats()["agent_restarts"] >= 1
        # A counter reset re-baselines; it must never produce an absurd
        # rate (the raw delta would look like a 4 GB wrap).
        for report in reports[n1_label]:
            if report.unavailable:
                continue
            for m in report.connections:
                if m.used_bps is not None:
                    assert m.used_bps < 10e6  # 10 MB/s >> anything offered

    def test_all_agents_healthy_after_faults_clear(self, chaos_run):
        build, monitor, *_ = chaos_run
        assert all(
            state is HealthState.HEALTHY
            for state in monitor.health.states().values()
        )
        stats = monitor.stats()
        assert stats["agents_dead"] == 0
        assert stats["poll_timeout_errors"] > 0  # the faults really bit
        assert stats["polls_suppressed"] > 0  # the breaker really opened

    def test_detector_reports_unavailable_as_violation(self, chaos_run):
        """Replaying the chaos reports through the RM detector yields a
        violation whose reason names the unavailable measurement."""
        build, monitor, reports, s1_label, _ = chaos_run
        requirement = QosRequirement(
            name="s1s2", src="S1", dst="S2", min_available_bps=1.0
        )
        detector = ViolationDetector(requirement, breach_count=2, clear_count=2)
        for report in reports[s1_label]:
            detector.offer(report)
        violations = [e for e in detector.events if e.state is QosState.VIOLATED]
        assert violations
        assert any("unavailable" in (e.reason or "") for e in violations)
        assert detector.state is QosState.OK  # cleared after recovery


@pytest.fixture(scope="module")
def mixed_integrity_run():
    """Reboot + counter corruption + packet loss, all at once.

    N1 reboots (honest counter reset), S1's agent serves corrupted
    counters (dishonest data), and the hub uplink drops 20% of frames
    (absent data).  The integrity pipeline must separate the three: the
    reboot re-baselines without quarantine, the corruption quarantines
    S1, and no quarantined interface may ever contribute to a report the
    monitor presents as trusted.
    """
    build = build_testbed()
    net = build.network
    monitor = NetworkMonitor(build, "L", poll_interval=POLL, poll_jitter=0.0)
    labels = [
        monitor.watch_path("S1", "S2"),
        monitor.watch_path("N1", "L"),
        monitor.watch_path("S4", "S5"),
    ]
    reports = {label: [] for label in labels}
    monitor.subscribe(lambda r: reports[r.label].append(r))

    AgentReboot(net.sim, build.agents["N1"], at=8.0, outage=3.0)
    CounterCorruption(
        net.sim, build.agents["S1"], at=10.0, until=26.0, seed=3,
        events=monitor.telemetry.events,
    )
    loss = PacketLoss(uplink(build), loss_rate=0.2, seed=11)
    net.sim.schedule_at(FAULTS_CLEAR, lambda: setattr(loss, "loss_rate", 0.0))

    monitor.start()
    net.run(END)
    return build, monitor, reports


class TestMixedIntegrityChaos:
    def test_corruption_quarantines_only_the_liar(self, mixed_integrity_run):
        build, monitor, reports = mixed_integrity_run
        entries = monitor.telemetry.events.events(QUARANTINE_ENTER)
        assert entries and {e.attrs["node"] for e in entries} == {"S1"}
        # The honest reboot was recognised as a restart, not corruption.
        assert monitor.stats()["agent_restarts"] >= 1
        assert ("N1", 1) not in [
            (e.attrs["node"], e.attrs["if_index"]) for e in entries
        ]

    def test_no_quarantined_interface_feeds_a_trusted_report(
        self, mixed_integrity_run
    ):
        """The acceptance property: trusted => nothing quarantined in it."""
        build, monitor, reports = mixed_integrity_run
        quarantined_spans = {}  # node -> [enter, exit) times
        bus = monitor.telemetry.events
        for e in bus.events(QUARANTINE_ENTER):
            quarantined_spans.setdefault(e.attrs["node"], []).append(e.time)
        assert quarantined_spans  # the scenario really quarantined someone
        for series in reports.values():
            for report in series:
                if report.trusted:
                    assert not report.any_quarantined, report.summary()
                    assert not report.quarantined_connections
                for m in report.connections:
                    # A measurement flagged quarantined must drag the
                    # whole report out of the trusted state.
                    if m.quarantined:
                        assert not report.trusted

    def test_affected_path_flagged_while_corruption_active(
        self, mixed_integrity_run
    ):
        build, monitor, reports = mixed_integrity_run
        s1_reports = reports["S1<->S2"]
        during = [r for r in s1_reports if 14.0 < r.time < 26.0]
        assert during
        assert all(not r.trusted for r in during)
        assert any(r.any_quarantined for r in during)

    def test_everything_recovers_after_faults_clear(self, mixed_integrity_run):
        build, monitor, reports = mixed_integrity_run
        assert monitor.integrity.quarantined_keys() == []
        for label, series in reports.items():
            settled = [r for r in series if r.time >= FAULTS_CLEAR + 10 * POLL]
            assert settled, label
            assert all(r.trusted for r in settled), label
        assert all(
            state is HealthState.HEALTHY
            for state in monitor.health.states().values()
        )


class TestUnavailableReportPolicy:
    def report(self, **kw):
        return PathReport(src="A", dst="A", time=0.0, connections=(), **kw)

    def test_unavailable_never_satisfies(self):
        req = QosRequirement(name="r", src="A", dst="A", min_available_bps=0.0)
        bad = self.report(unavailable=True, confidence=0.0, freshness=12.0)
        assert not req.satisfied_by(bad)
        reason = req.violation_reason(bad)
        assert reason is not None and "unavailable" in reason
        assert "12.0s" in reason

    def test_unavailable_with_no_data_ever(self):
        req = QosRequirement(name="r", src="A", dst="A", min_available_bps=0.0)
        bad = self.report(unavailable=True, confidence=0.0)
        assert "no data ever" in req.violation_reason(bad)

    def test_degraded_report_still_evaluated(self):
        req = QosRequirement(name="r", src="A", dst="A", min_available_bps=0.0)
        ok = self.report(degraded=True, confidence=0.5, freshness=6.0)
        assert req.satisfied_by(ok)


# ----------------------------------------------------------------------
# UplinkFailover: the self-healing topology acceptance scenario
# ----------------------------------------------------------------------
# Replay a specific run with REPRO_CHAOS_SEED=<n> (CI sets it so a
# failing seed is reproducible from the workflow log).
SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

UPLINK_FAILOVER_SPEC = """
network topology uplink_failover {
    host A { snmp community "public"; }
    host B { snmp community "public"; }
    host C { snmp community "public"; }
    host D { snmp community "public"; }
    switch sw1 { snmp community "public"; ports 6; stp "on"; }
    switch sw2 { snmp community "public"; ports 6; stp "on"; }
    connect A.eth0 <-> sw1.port1;
    connect C.eth0 <-> sw1.port2;
    connect D.eth0 <-> sw1.port3;
    connect B.eth0 <-> sw2.port1;
    connect sw1.port5 <-> sw2.port5;
    connect sw1.port6 <-> sw2.port6;
}
"""

FAIL_AT = 13.0  # mid-measurement: between a poll and its report


@pytest.fixture(scope="module")
def uplink_failover_run():
    """Kill the active redundant uplink mid-measurement.

    The monitor (topology sync + oper-status tracking on) must move the
    A<->B watch onto the backup uplink within three poll cycles, never
    wedge a stale path memo, and never report a QoS violation on the
    untouched same-switch pair C<->D.
    """
    build = build_network(parse_spec(UPLINK_FAILOVER_SPEC))
    net = build.network
    monitor = NetworkMonitor(
        build, "A", poll_interval=POLL, poll_jitter=0.0, seed=SEED
    )
    monitor.enable_topology_sync()
    monitor.enable_oper_status_tracking()
    ab = monitor.watch_path("A", "B")
    cd = monitor.watch_path("C", "D")
    reports = {ab: [], cd: []}
    monitor.subscribe(lambda r: reports[r.label].append(r))

    # Continuous load across the uplink so the failover happens
    # mid-measurement, plus local traffic on the untouched pair.
    StaircaseLoad(
        net.host("A"), net.ip_of("B"), StepSchedule.pulse(3.0, 37.0, 150 * KBPS)
    )
    StaircaseLoad(
        net.host("C"), net.ip_of("D"), StepSchedule.pulse(3.0, 37.0, 100 * KBPS)
    )
    net.announce_hosts(at=2.0)

    uplinks = [
        conn
        for conn in monitor.spec.connections
        if {conn.end_a.node, conn.end_b.node} == {"sw1", "sw2"}
    ]
    monitor.start(at=2.5)
    net.run(12.9)
    active = next(c for c in uplinks if c in monitor.path_of(ab))
    LinkFailure.between(
        net, "sw1", "sw2", at=FAIL_AT, index=uplinks.index(active),
        events=monitor.telemetry.events,
    )
    net.run(40.0)
    return build, monitor, reports, ab, cd, uplinks, active


class TestUplinkFailover:
    def test_recovers_within_three_poll_cycles(self, uplink_failover_run):
        build, monitor, reports, ab, cd, uplinks, active = uplink_failover_run
        backup = next(c for c in uplinks if c is not active)
        assert backup in monitor.path_of(ab)
        assert active not in monitor.path_of(ab)
        # Every A<->B report from three cycles after the kill onward is
        # fully healthy on the backup path.
        settled = [r for r in reports[ab] if r.time >= FAIL_AT + 3 * POLL]
        assert settled
        for report in settled:
            assert report.status == "fresh", report.summary()
            assert report.available_bps > 0
        assert monitor.stats()["path_reroutes"] == 1

    def test_no_wedged_memos(self, uplink_failover_run):
        build, monitor, reports, ab, cd, uplinks, active = uplink_failover_run
        # The path memo re-resolved: a fresh traversal of the graph and
        # the watch's cached path agree, and neither crosses the dead
        # uplink.
        from repro.core.traversal import find_path

        fresh = find_path(monitor.graph, "A", "B")
        assert fresh == monitor.path_of(ab)
        assert active not in fresh
        # Reports kept flowing every cycle throughout -- no wedged cycle.
        gaps = [
            b.time - a.time for a, b in zip(reports[ab], reports[ab][1:])
        ]
        assert all(g == pytest.approx(POLL) for g in gaps)

    def test_no_false_violations_on_untouched_pair(self, uplink_failover_run):
        build, monitor, reports, ab, cd, uplinks, active = uplink_failover_run
        requirement = QosRequirement(
            name=cd, src="C", dst="D", min_available_bps=1.0
        )
        detector = ViolationDetector(requirement, breach_count=2, clear_count=2)
        for report in reports[cd]:
            detector.offer(report)
        assert not [
            e for e in detector.events if e.state is QosState.VIOLATED
        ]
        # The same-switch pair never even degraded: its measurements
        # never depended on the failed uplink.
        assert all(r.status == "fresh" for r in reports[cd][1:])

    def test_failover_visible_in_events(self, uplink_failover_run):
        build, monitor, *_ = uplink_failover_run
        events = monitor.telemetry.events
        assert events.count("topology_changed") >= 2  # initial block + failover
        assert events.count("path_rerouted") == 1
        assert events.count("fault_injected") >= 1  # the LinkFailure itself
