"""QoS diagnosis: which connection is starving a path, and why.

DeSiDeRaTa's control loop is monitor -> *diagnose* -> reallocate; this
module is the middle step for network resources.  Given a violating
:class:`~repro.core.report.PathReport` it names the bottleneck connection
and classifies the congestion, so the allocator can search for placements
that avoid it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.report import ConnectionMeasurement, PathReport
from repro.topology.model import DeviceKind, TopologySpec


@dataclass(frozen=True)
class BottleneckDiagnosis:
    """The outcome of diagnosing one path report."""

    report: PathReport
    bottleneck: ConnectionMeasurement
    kind: str  # "link-down" | "hub-saturation" | "port-congestion" | "endpoint-link"
    shared_with: List[str]  # hosts competing for the congested resource
    explanation: str

    def __str__(self) -> str:
        return f"{self.report.label}: {self.explanation}"


def diagnose(spec: TopologySpec, report: PathReport) -> Optional[BottleneckDiagnosis]:
    """Diagnose the path's bottleneck (None for an empty/unmeasured path)."""
    bottleneck = report.bottleneck
    if bottleneck is None or not bottleneck.measured:
        return None
    conn = bottleneck.connection

    if bottleneck.rule == "down":
        return BottleneckDiagnosis(
            report=report,
            bottleneck=bottleneck,
            kind="link-down",
            shared_with=sorted(end.node for end in conn.endpoints()),
            explanation=(
                f"connection {conn} is operationally down (linkDown "
                "notification); no placement of the far end can restore this "
                "path until the link recovers"
            ),
        )

    hub_name: Optional[str] = None
    for end in conn.endpoints():
        if spec.node(end.node).kind is DeviceKind.HUB:
            hub_name = end.node
    if hub_name is not None:
        # Everyone on the hub shares the medium; list the co-inhabitants.
        sharers = sorted(
            other.node
            for leg in spec.connections_of(hub_name)
            for other in [leg.other_end(hub_name)]
            if spec.node(other.node).kind is DeviceKind.HOST
        )
        return BottleneckDiagnosis(
            report=report,
            bottleneck=bottleneck,
            kind="hub-saturation",
            shared_with=sharers,
            explanation=(
                f"shared hub {hub_name!r} carries "
                f"{bottleneck.used_bps / 1000:.0f} KB/s "
                f"({bottleneck.utilization * 100:.0f}% of its medium); "
                f"hosts sharing it: {', '.join(sharers)}"
            ),
        )

    # Switch-side congestion: is the congested interface one of the path
    # endpoints' own links, or an inter-device trunk?
    endpoint_hosts = {report.src, report.dst}
    touches_endpoint = any(end.node in endpoint_hosts for end in conn.endpoints())
    kind = "endpoint-link" if touches_endpoint else "port-congestion"
    return BottleneckDiagnosis(
        report=report,
        bottleneck=bottleneck,
        kind=kind,
        shared_with=sorted(end.node for end in conn.endpoints()),
        explanation=(
            f"connection {conn} carries {bottleneck.used_bps / 1000:.0f} KB/s "
            f"({bottleneck.utilization * 100:.0f}% of "
            f"{bottleneck.capacity_bps / 1000:.0f} KB/s)"
        ),
    )
