"""MIB tree and the MIB-II bindings the paper's monitor polls.

Table 1 of the paper lists the objects its poller reads::

    system.sysUpTime                 (1.3.6.1.2.1.1.3)
    interfaces.ifTable.ifEntry.ifSpeed        (...2.2.1.5)
    interfaces.ifTable.ifEntry.ifInOctets     (...2.2.1.10)
    interfaces.ifTable.ifEntry.ifInUcastPkts  (...2.2.1.11)
    interfaces.ifTable.ifEntry.ifOutOctets    (...2.2.1.16)
    interfaces.ifTable.ifEntry.ifOutNUcastPkts(...2.2.1.18)

:func:`build_mib2` binds those OIDs (and the rest of the RFC 1213 system
and interfaces groups) to *live* simulator state: every GET reads the NIC
counters at that simulated instant, truncated to Counter32 so the poller's
wrap handling is real.

Dynamic tables (the switch's bridge-MIB forwarding database used by the
topology-discovery extension) plug in as :class:`MibProvider` objects that
enumerate rows on demand.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Callable, Dict, List, Optional, Protocol, Tuple, Union

from repro.snmp.datatypes import (
    Counter32,
    Gauge32,
    Integer,
    OctetString,
    ObjectIdentifier,
    SnmpValue,
    TimeTicks,
)
from repro.snmp.oid import Oid

Accessor = Callable[[], SnmpValue]

# MIB-II object identifiers (RFC 1213), exported for poller and tests.
SYS_DESCR = Oid("1.3.6.1.2.1.1.1.0")
SYS_OBJECT_ID = Oid("1.3.6.1.2.1.1.2.0")
SYS_UPTIME = Oid("1.3.6.1.2.1.1.3.0")
SYS_CONTACT = Oid("1.3.6.1.2.1.1.4.0")
SYS_NAME = Oid("1.3.6.1.2.1.1.5.0")
SYS_LOCATION = Oid("1.3.6.1.2.1.1.6.0")
SYS_SERVICES = Oid("1.3.6.1.2.1.1.7.0")

IF_NUMBER = Oid("1.3.6.1.2.1.2.1.0")
IF_ENTRY = Oid("1.3.6.1.2.1.2.2.1")
IF_INDEX = IF_ENTRY + "1"
IF_DESCR = IF_ENTRY + "2"
IF_TYPE = IF_ENTRY + "3"
IF_MTU = IF_ENTRY + "4"
IF_SPEED = IF_ENTRY + "5"
IF_PHYS_ADDRESS = IF_ENTRY + "6"
IF_ADMIN_STATUS = IF_ENTRY + "7"
IF_OPER_STATUS = IF_ENTRY + "8"
IF_LAST_CHANGE = IF_ENTRY + "9"
IF_IN_OCTETS = IF_ENTRY + "10"
IF_IN_UCAST_PKTS = IF_ENTRY + "11"
IF_IN_NUCAST_PKTS = IF_ENTRY + "12"
IF_IN_DISCARDS = IF_ENTRY + "13"
IF_IN_ERRORS = IF_ENTRY + "14"
IF_OUT_OCTETS = IF_ENTRY + "16"
IF_OUT_UCAST_PKTS = IF_ENTRY + "17"
IF_OUT_NUCAST_PKTS = IF_ENTRY + "18"
IF_OUT_DISCARDS = IF_ENTRY + "19"
IF_OUT_ERRORS = IF_ENTRY + "20"

# The snmp group (RFC 1213 §6, 1.3.6.1.2.1.11): agent self-statistics.
SNMP_GROUP = Oid("1.3.6.1.2.1.11")
SNMP_IN_PKTS = SNMP_GROUP + "1.0"
SNMP_OUT_PKTS = SNMP_GROUP + "2.0"
SNMP_IN_BAD_COMMUNITY_NAMES = SNMP_GROUP + "4.0"
SNMP_IN_ASN_PARSE_ERRS = SNMP_GROUP + "6.0"
SNMP_IN_GET_REQUESTS = SNMP_GROUP + "15.0"

# Bridge MIB (RFC 1493) transparent-bridging FDB, used by core.discovery.
DOT1D_TP_FDB_ENTRY = Oid("1.3.6.1.2.1.17.4.3.1")
DOT1D_TP_FDB_ADDRESS = DOT1D_TP_FDB_ENTRY + "1"
DOT1D_TP_FDB_PORT = DOT1D_TP_FDB_ENTRY + "2"
DOT1D_TP_FDB_STATUS = DOT1D_TP_FDB_ENTRY + "3"

# Bridge MIB (RFC 1493) spanning-tree port table, used by the monitor's
# topology-sync loop to learn which redundant uplinks are blocked.
DOT1D_STP_PORT_ENTRY = Oid("1.3.6.1.2.1.17.2.15.1")
DOT1D_STP_PORT = DOT1D_STP_PORT_ENTRY + "1"
DOT1D_STP_PORT_STATE = DOT1D_STP_PORT_ENTRY + "3"

IFTYPE_ETHERNET = 6
IF_STATUS_UP = 1
IF_STATUS_DOWN = 2
FDB_STATUS_LEARNED = 3


class MibError(RuntimeError):
    """Raised for registration conflicts and malformed lookups."""


class MibProvider(Protocol):
    """A dynamic subtree: rows are enumerated at query time."""

    prefix: Oid

    def get(self, oid: Oid) -> Optional[SnmpValue]: ...

    def next(self, oid: Oid) -> Optional[Tuple[Oid, SnmpValue]]: ...


class MibTree:
    """Sorted registry of scalar accessors plus dynamic providers.

    ``get`` answers exact-instance reads; ``get_next`` answers the
    lexicographic successor query that powers GETNEXT/GETBULK walks,
    merging static entries with every provider's view.
    """

    def __init__(self) -> None:
        self._static: Dict[Oid, Accessor] = {}
        self._sorted: List[Oid] = []
        self._providers: List[MibProvider] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, oid: Oid, value: Union[SnmpValue, Accessor]) -> None:
        """Register a scalar instance (a full OID ending in its index)."""
        oid = Oid(oid)
        if oid in self._static:
            raise MibError(f"OID {oid} registered twice")
        accessor: Accessor = value if callable(value) else (lambda v=value: v)
        self._static[oid] = accessor
        insort(self._sorted, oid)

    def register_provider(self, provider: MibProvider) -> None:
        for existing in self._providers:
            if existing.prefix.startswith(provider.prefix) or provider.prefix.startswith(
                existing.prefix
            ):
                raise MibError(
                    f"provider prefix {provider.prefix} overlaps {existing.prefix}"
                )
        self._providers.append(provider)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, oid: Oid) -> Optional[SnmpValue]:
        accessor = self._static.get(oid)
        if accessor is not None:
            return accessor()
        for provider in self._providers:
            if oid.startswith(provider.prefix):
                return provider.get(oid)
        return None

    def get_next(self, oid: Oid) -> Optional[Tuple[Oid, SnmpValue]]:
        """Smallest registered instance strictly greater than ``oid``."""
        best: Optional[Tuple[Oid, SnmpValue]] = None
        idx = bisect_right(self._sorted, oid)
        if idx < len(self._sorted):
            candidate = self._sorted[idx]
            best = (candidate, self._static[candidate]())
        for provider in self._providers:
            hit = provider.next(oid)
            if hit is not None and (best is None or hit[0] < best[0]):
                best = hit
        return best

    def has_subtree(self, oid: Oid) -> bool:
        """True when any instance lives strictly under ``oid``.

        Distinguishes the v2c ``noSuchInstance`` (object exists, index
        does not... approximated as: some sibling subtree exists) from
        ``noSuchObject``.
        """
        nxt = self.get_next(oid)
        return nxt is not None and nxt[0].startswith(oid)

    def walk_all(self) -> List[Tuple[Oid, SnmpValue]]:
        """Fully materialise the tree (tests and debugging)."""
        out: List[Tuple[Oid, SnmpValue]] = []
        cursor = Oid("0")
        while True:
            hit = self.get_next(cursor)
            if hit is None:
                return out
            out.append(hit)
            cursor = hit[0]

    def __len__(self) -> int:
        return len(self._static)


# ----------------------------------------------------------------------
# MIB-II construction
# ----------------------------------------------------------------------
_ENTERPRISE_OID = Oid("1.3.6.1.4.1.99999.1")  # private arc for the simulator


def build_mib2(
    device,
    sim,
    descr: Optional[str] = None,
    location: str = "LIRTSS testbed (simulated)",
    contact: str = "repro",
    boot_time: float = 0.0,
) -> MibTree:
    """Bind the MIB-II system + interfaces groups to a live device.

    ``device`` is anything carrying ``name`` and ``interfaces`` (a Host,
    Switch or Hub).  Counter objects read the interface counters at call
    time and truncate to Counter32; ``sysUpTime`` reads the simulation
    clock, so "the time interval between two polling processes can be
    found using the system uptime data" works exactly as in the paper.
    """
    tree = MibTree()
    name = getattr(device, "name", "device")
    kind = getattr(device, "kind", "host")
    if descr is None:
        os_label = getattr(device, "os_label", kind)
        descr = f"{name} ({os_label})"

    tree.register(SYS_DESCR, OctetString(descr))
    tree.register(SYS_OBJECT_ID, ObjectIdentifier(_ENTERPRISE_OID))
    tree.register(
        SYS_UPTIME,
        lambda: TimeTicks.from_seconds(max(0.0, sim.now - boot_time)),
    )
    tree.register(SYS_CONTACT, OctetString(contact))
    tree.register(SYS_NAME, OctetString(name))
    tree.register(SYS_LOCATION, OctetString(location))
    # services: physical(1) + datalink(2) for devices, +transport/apps for hosts
    tree.register(SYS_SERVICES, Integer(72 if kind == "host" else 2))

    interfaces = list(getattr(device, "interfaces", []))
    tree.register(IF_NUMBER, Integer(len(interfaces)))

    for iface in interfaces:
        i = iface.if_index
        c = iface.counters
        tree.register(IF_INDEX + str(i), Integer(i))
        tree.register(IF_DESCR + str(i), OctetString(iface.local_name))
        tree.register(IF_TYPE + str(i), Integer(IFTYPE_ETHERNET))
        tree.register(IF_MTU + str(i), Integer(iface.mtu))
        # ifSpeed is a Gauge32; clamp like real agents do for >4 Gb/s links.
        speed = min(int(iface.speed_bps), (1 << 32) - 1)
        tree.register(IF_SPEED + str(i), Gauge32(speed))
        tree.register(IF_PHYS_ADDRESS + str(i), OctetString(iface.mac.to_bytes()))
        tree.register(
            IF_ADMIN_STATUS + str(i),
            lambda ifc=iface: Integer(IF_STATUS_UP if ifc.admin_up else IF_STATUS_DOWN),
        )
        tree.register(
            IF_OPER_STATUS + str(i),
            lambda ifc=iface: Integer(
                IF_STATUS_UP if (ifc.admin_up and ifc.link is not None) else IF_STATUS_DOWN
            ),
        )
        tree.register(IF_LAST_CHANGE + str(i), TimeTicks(0))
        tree.register(IF_IN_OCTETS + str(i), lambda cc=c: Counter32.wrap(cc.in_octets))
        tree.register(IF_IN_UCAST_PKTS + str(i), lambda cc=c: Counter32.wrap(cc.in_ucast_pkts))
        tree.register(
            IF_IN_NUCAST_PKTS + str(i), lambda cc=c: Counter32.wrap(cc.in_nucast_pkts)
        )
        tree.register(IF_IN_DISCARDS + str(i), lambda cc=c: Counter32.wrap(cc.in_discards))
        tree.register(IF_IN_ERRORS + str(i), Counter32(0))
        tree.register(IF_OUT_OCTETS + str(i), lambda cc=c: Counter32.wrap(cc.out_octets))
        tree.register(
            IF_OUT_UCAST_PKTS + str(i), lambda cc=c: Counter32.wrap(cc.out_ucast_pkts)
        )
        tree.register(
            IF_OUT_NUCAST_PKTS + str(i), lambda cc=c: Counter32.wrap(cc.out_nucast_pkts)
        )
        tree.register(IF_OUT_DISCARDS + str(i), lambda cc=c: Counter32.wrap(cc.out_discards))
        tree.register(IF_OUT_ERRORS + str(i), Counter32(0))

    if kind == "switch":
        tree.register_provider(BridgeFdbProvider(device))
        if getattr(device, "stp", None) is not None:
            tree.register_provider(BridgeStpProvider(device))
    return tree


def register_snmp_group(tree, agent) -> None:
    """Bind the RFC 1213 snmp group to a live agent's statistics.

    Called by :class:`~repro.snmp.agent.SnmpAgent` on construction; works
    through a :class:`CachingMibTree` by registering on its inner tree
    (the counters then refresh on the agent's snapshot timer, like
    everything else it serves).
    """
    target = tree.inner if isinstance(tree, CachingMibTree) else tree
    target.register(SNMP_IN_PKTS, lambda: Counter32.wrap(agent.in_packets))
    target.register(SNMP_OUT_PKTS, lambda: Counter32.wrap(agent.out_packets))
    target.register(
        SNMP_IN_BAD_COMMUNITY_NAMES, lambda: Counter32.wrap(agent.bad_community)
    )
    target.register(SNMP_IN_ASN_PARSE_ERRS, lambda: Counter32.wrap(agent.malformed))
    target.register(SNMP_IN_GET_REQUESTS, lambda: Counter32.wrap(agent.get_requests))


class CachingMibTree:
    """A MIB view whose values refresh only every ``refresh_interval``.

    Era-accurate agent behaviour: many SNMP daemons (notoriously the
    Windows NT one in the paper's testbed) serve interface counters from
    an internal snapshot updated on a timer rather than reading hardware
    per request.  Bytes received after the snapshot surface only in the
    *next* poll -- producing the paper's "abnormally small value followed
    by an abnormally large one" and its worst-case ~16 % single-interval
    errors.

    ``sysUpTime`` (and anything under the system group) is always served
    fresh: the uptime clock is not a polled counter, which is exactly why
    the stale-counter displacement is *not* corrected by the paper's
    uptime-based interval arithmetic.
    """

    _FRESH_PREFIX = Oid("1.3.6.1.2.1.1")  # the system group

    def __init__(self, inner: MibTree, sim, refresh_interval: float) -> None:
        if refresh_interval <= 0:
            raise MibError(f"non-positive refresh interval {refresh_interval!r}")
        self.inner = inner
        self.sim = sim
        self.refresh_interval = refresh_interval
        self._snapshot: Dict[Oid, SnmpValue] = {}
        self._last_refresh = float("-inf")
        self.refreshes = 0
        # Eager periodic snapshots: the real artefact is that the agent's
        # values were captured *at the timer tick*, not at request time.
        self._task = sim.call_every(refresh_interval, self._take_snapshot, start=sim.now)

    def _take_snapshot(self) -> None:
        self._snapshot = {oid: value for oid, value in self.inner.walk_all()}
        self._last_refresh = self.sim.now
        self.refreshes += 1

    def stop(self) -> None:
        """Cancel the refresh timer (teardown in long test sessions)."""
        self._task.cancel()

    def get(self, oid: Oid) -> Optional[SnmpValue]:
        if oid.startswith(self._FRESH_PREFIX):
            return self.inner.get(oid)
        if not self._snapshot:  # before the first tick (t=0 start)
            return self.inner.get(oid)
        return self._snapshot.get(oid)

    def get_next(self, oid: Oid) -> Optional[Tuple[Oid, SnmpValue]]:
        hit = self.inner.get_next(oid)
        if hit is None:
            return None
        next_oid = hit[0]
        value = self.get(next_oid)
        # A row that appeared after the snapshot serves its live value
        # (same behaviour as real agents walking a half-updated table).
        return (next_oid, value if value is not None else hit[1])

    def has_subtree(self, oid: Oid) -> bool:
        return self.inner.has_subtree(oid)

    def walk_all(self) -> List[Tuple[Oid, SnmpValue]]:
        return [(oid, self.get(oid)) for oid, _v in self.inner.walk_all()]

    def __len__(self) -> int:
        return len(self.inner)


class BridgeFdbProvider:
    """RFC 1493 ``dot1dTpFdbTable`` rows backed by a live switch FDB.

    Row index is the MAC address as six OID arcs.  The topology-discovery
    extension (paper §5 "dynamic network topology discovery") walks this
    table to learn which MACs sit behind which switch port.
    """

    prefix = DOT1D_TP_FDB_ENTRY

    # Aging only removes rows on this granularity boundary, so a cached
    # row list is revalidated at most this often even without FDB churn.
    _AGE_GRANULARITY = 10.0

    def __init__(self, switch) -> None:
        self.switch = switch
        self._cache: List[Tuple[Oid, SnmpValue]] = []
        self._cache_key = (-1, -1.0)

    def _rows(self) -> List[Tuple[Oid, SnmpValue]]:
        key = (
            self.switch.fdb_version,
            self.switch.sim.now // self._AGE_GRANULARITY,
        )
        if key == self._cache_key:
            return self._cache
        rows: List[Tuple[Oid, SnmpValue]] = []
        for mac, port_index, _age in self.switch.fdb_entries():
            index = tuple(mac.to_bytes())
            rows.append((Oid(DOT1D_TP_FDB_ADDRESS.arcs + index),
                         OctetString(mac.to_bytes())))
            rows.append((Oid(DOT1D_TP_FDB_PORT.arcs + index),
                         Integer(port_index)))
            rows.append((Oid(DOT1D_TP_FDB_STATUS.arcs + index),
                         Integer(FDB_STATUS_LEARNED)))
        rows.sort(key=lambda r: r[0])
        self._cache = rows
        self._cache_key = key
        return rows

    def get(self, oid: Oid) -> Optional[SnmpValue]:
        for row_oid, value in self._rows():
            if row_oid == oid:
                return value
        return None

    def next(self, oid: Oid) -> Optional[Tuple[Oid, SnmpValue]]:
        for row_oid, value in self._rows():
            if row_oid > oid:
                return (row_oid, value)
        return None


class BridgeStpProvider:
    """RFC 1493 ``dot1dStpPortTable`` rows backed by a live spanning tree.

    Serves ``dot1dStpPort`` (the port index) and ``dot1dStpPortState``
    (disabled(1) / blocking(2) / forwarding(5)) per switch port.  The
    monitor's topology-sync loop walks this column to map the switch's
    active tree onto the topology graph's blocked-connection view.
    """

    prefix = DOT1D_STP_PORT_ENTRY

    def __init__(self, switch) -> None:
        self.switch = switch

    def _rows(self) -> List[Tuple[Oid, SnmpValue]]:
        stp = self.switch.stp
        rows: List[Tuple[Oid, SnmpValue]] = []
        for iface in self.switch.interfaces:
            i = iface.if_index
            rows.append((Oid(DOT1D_STP_PORT.arcs + (i,)), Integer(i)))
        for iface in self.switch.interfaces:
            i = iface.if_index
            rows.append(
                (Oid(DOT1D_STP_PORT_STATE.arcs + (i,)),
                 Integer(stp.port_state_value(i)))
            )
        return rows

    def get(self, oid: Oid) -> Optional[SnmpValue]:
        for row_oid, value in self._rows():
            if row_oid == oid:
                return value
        return None

    def next(self, oid: Oid) -> Optional[Tuple[Oid, SnmpValue]]:
        best: Optional[Tuple[Oid, SnmpValue]] = None
        for row_oid, value in self._rows():
            if row_oid > oid and (best is None or row_oid < best[0]):
                best = (row_oid, value)
        return best
