"""Network QoS requirements for real-time communication paths.

A requirement binds a monitored host pair to thresholds the middleware
enforces: a minimum available bandwidth (bytes/second) and/or a maximum
utilisation of the path's bottleneck connection.  Requirements are
normally declared in the spec language (``qospath`` blocks) and converted
with :meth:`QosRequirement.from_spec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.core.report import PathReport
from repro.topology.model import QosPathSpec, TopologyError


@dataclass(frozen=True)
class QosRequirement:
    """Thresholds for one watched path."""

    name: str
    src: str
    dst: str
    min_available_bps: Optional[float] = None  # bytes/second
    max_utilization: Optional[float] = None  # fraction of bottleneck capacity
    # Reports below this confidence are *suppressed* -- not judged at
    # all -- rather than counted as breaches or clears.  A quarantined
    # or stale-but-breathing path should neither trigger adaptation nor
    # mask a real violation with untrustworthy numbers.  Unavailable
    # reports are always judged (and always breach): total ignorance is
    # itself actionable.  0.0 disables suppression.
    min_confidence: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_confidence <= 1.0:
            raise TopologyError(
                f"min_confidence for {self.name!r} must be in [0, 1]"
            )
        if self.min_available_bps is None and self.max_utilization is None:
            raise TopologyError(
                f"QoS requirement {self.name!r} needs at least one threshold"
            )
        if self.min_available_bps is not None and self.min_available_bps < 0:
            raise TopologyError(f"negative min_available for {self.name!r}")
        if self.max_utilization is not None and not 0 < self.max_utilization <= 1:
            raise TopologyError(f"max_utilization for {self.name!r} must be in (0, 1]")

    @classmethod
    def from_spec(cls, spec: QosPathSpec) -> "QosRequirement":
        """Convert a spec-language ``qospath`` block.

        Spec rates are bits/second (the language's unit system); monitor
        reports are bytes/second, so the threshold converts here, once.
        """
        return cls(
            name=spec.name,
            src=spec.src,
            dst=spec.dst,
            min_available_bps=(
                spec.min_available_bps / 8.0 if spec.min_available_bps is not None else None
            ),
            max_utilization=spec.max_utilization,
        )

    @property
    def watch_label(self) -> str:
        """The monitor watch label this requirement evaluates against."""
        return f"{self.src}<->{self.dst}"

    def event_attrs(self) -> Dict[str, Union[str, float]]:
        """Flat attributes identifying this requirement on telemetry events.

        Only thresholds that are actually set appear, so event consumers
        can distinguish a bandwidth floor from a utilisation ceiling.
        """
        attrs: Dict[str, Union[str, float]] = {
            "requirement": self.name,
            "path": self.watch_label,
        }
        if self.min_available_bps is not None:
            attrs["min_available_bps"] = self.min_available_bps
        if self.max_utilization is not None:
            attrs["max_utilization"] = self.max_utilization
        return attrs

    def suppresses(self, report: PathReport) -> bool:
        """Should this report be withheld from violation judgement?

        True for degraded-but-not-unavailable reports whose confidence
        falls below ``min_confidence`` and for reports leaning on a
        quarantined counter source: their numbers are not evidence in
        either direction.  Unavailable reports are never suppressed.
        """
        if report.unavailable:
            return False
        if self.min_confidence > 0.0 and report.confidence < self.min_confidence:
            return True
        return self.min_confidence > 0.0 and report.any_quarantined

    def satisfied_by(self, report: PathReport) -> bool:
        """Does ``report`` meet every threshold?

        An ``unavailable`` report (the monitor has no fresh data for the
        path) never satisfies a requirement: "no idea" must be treated
        conservatively, not as silence.  NaN comparisons would otherwise
        read as healthy.
        """
        if report.unavailable:
            return False
        if self.min_available_bps is not None and report.available_bps < self.min_available_bps:
            return False
        if self.max_utilization is not None:
            bottleneck = report.bottleneck
            if bottleneck is not None and bottleneck.utilization > self.max_utilization:
                return False
        return True

    def violation_reason(self, report: PathReport) -> Optional[str]:
        """Human-readable reason, or None when satisfied."""
        if report.unavailable:
            age = report.freshness
            return (
                "path measurement unavailable "
                f"({'no data ever' if age is None else f'stalest sample {age:.1f}s old'})"
            )
        if self.min_available_bps is not None and report.available_bps < self.min_available_bps:
            return (
                f"available {report.available_bps / 1000:.1f} KB/s below required "
                f"{self.min_available_bps / 1000:.1f} KB/s"
            )
        if self.max_utilization is not None:
            bottleneck = report.bottleneck
            if bottleneck is not None and bottleneck.utilization > self.max_utilization:
                return (
                    f"bottleneck {bottleneck.connection} at "
                    f"{bottleneck.utilization * 100:.0f}% > "
                    f"{self.max_utilization * 100:.0f}% allowed"
                )
        return None
