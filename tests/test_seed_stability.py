"""Seed stability of the headline reproduction claims.

EXPERIMENTS.md reports seed-0 numbers; the claims must not be artifacts
of one lucky seed.  A compressed staircase run is evaluated across seeds
and every quantity must stay inside the bands the paper's shape defines.
"""

import pytest

from repro.analysis.series import stable_mask
from repro.analysis.stats import compute_table2
from repro.experiments.scenarios import Scenario
from repro.simnet.trafficgen import KBPS, StepSchedule

SCHEDULE = StepSchedule([(20.0, 200 * KBPS), (110.0, 0.0)])
RUN_UNTIL = 140.0


def run_seed(seed: int):
    scenario = Scenario(seed=seed)
    label = scenario.watch("S1", "N1")
    scenario.add_load("L", "N1", SCHEDULE)
    scenario.run(RUN_UNTIL)
    pair = scenario.series_pair(label, ["N1"])
    stable = stable_mask(pair.times, SCHEDULE, window=2.0, guard=1.0)
    return compute_table2(pair.measured_kbps, pair.generated_kbps, stable=stable)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_headline_bands_hold_across_seeds(seed):
    stats = run_seed(seed)
    # Background: non-zero, same order as the paper's 0.824 KB/s.
    assert 0.1 < stats.background < 5.0
    # Systematic error: positive (headers), single-digit percent.
    level = stats.levels[0]
    assert level.avg_less_background > level.generated
    assert level.pct_error < 6.0
    # Worst-case single samples: larger than the mean, bounded.
    assert stats.max_pct_error < 30.0


def test_seeds_differ_but_agree():
    results = [run_seed(seed) for seed in (5, 6)]
    means = [r.levels[0].avg_less_background for r in results]
    assert means[0] != means[1]  # genuinely different runs...
    assert abs(means[0] - means[1]) / means[0] < 0.02  # ...same physics
