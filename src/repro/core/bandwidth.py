"""Per-connection and per-path bandwidth calculation (paper §3.3).

The paper's two rules:

**Switch rule** -- "a switch does not forward packets for one host to other
hosts connected to the same switch.  Hence, the amount of bandwidth used
on a host connected to a switch is simply the amount of data transmitted
as reported by SNMP polling from either the host or the switch.  If the
traffic reported is t_i, then we simply have u_i = t_i."

**Hub rule** -- "for hosts connected to hubs, all packets that go through
the hub will be sent to every host connected to the hub.  Therefore, the
amount of bandwidth used for a host connected to a hub is the sum of all
the data sent to the hub ... u_i = t_1 + t_2 + ... + t_n.  Notice that u_i
cannot exceed the maximum speed of the hub."

A connection's traffic figure ``t`` is the bidirectional byte rate at its
counter source (in + out octets per second).  For the hub sum, the summed
set is the hub's *host-facing* connections: a frame entering through the
uplink and delivered to host j is counted once, at t_j, and the shared
medium indeed carries each frame once.  Every connection touching the hub
(host legs and uplinks alike) shares the same u, because they share the
same medium.

Path figures: available ``A = min_i (m_i - u_i)``; used = ``max_i u_i``
(the paper's plotted "measured traffic between hosts" -- the busiest
segment along the path).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.counters import CounterSource, resolve_counter_source
from repro.core.poller import InterfaceRates, RateTable
from repro.core.report import ConnectionMeasurement, PathReport
from repro.telemetry import Telemetry
from repro.telemetry.events import REPORT_STATUS
from repro.topology.model import ConnectionSpec, DeviceKind, TopologySpec


class BandwidthCalculator:
    """Turns a :class:`RateTable` into connection/path measurements.

    Staleness-aware when ``stale_after`` is set (the monitor sets it):
    samples older than ``stale_after`` mark their connection stale and
    the path degraded; older than ``dead_after`` (or sourced from an
    agent the health tracker says is DEAD) they stop counting as data at
    all, and a path left without trustworthy figures reports
    ``unavailable`` instead of a stale number.
    """

    def __init__(
        self,
        spec: TopologySpec,
        rates: RateTable,
        link_state=None,
        stale_after: Optional[float] = None,
        dead_after: Optional[float] = None,
        health=None,
        telemetry: Optional[Telemetry] = None,
        integrity=None,
    ) -> None:
        """``link_state``: optional :class:`~repro.core.linkstate.
        LinkStateRegistry`; connections it marks down report zero
        availability with rule "down".  ``health``: optional
        :class:`~repro.core.health.AgentHealthTracker` consulted for the
        counter-source agents.  ``stale_after``/``dead_after``: sample
        ages (seconds) beyond which data is degraded / untrustworthy.
        ``telemetry``: optional hub; path measurements are then traced,
        report staleness feeds a histogram, and per-path trust-status
        changes (fresh/degraded/unavailable) publish events.
        ``integrity``: optional
        :class:`~repro.integrity.IntegrityPipeline`; connections whose
        counter source it quarantines are flagged on the measurement and
        capped at 0.5 confidence (their withheld samples then age into
        the ordinary staleness decay)."""
        if (
            stale_after is not None
            and dead_after is not None
            and dead_after <= stale_after
        ):
            raise ValueError(
                f"dead_after {dead_after!r} must exceed stale_after {stale_after!r}"
            )
        self.spec = spec
        self.rates = rates
        self.link_state = link_state
        self.stale_after = stale_after
        self.dead_after = dead_after
        self.health = health
        self.telemetry = telemetry
        self.integrity = integrity
        self._last_status: Dict[str, str] = {}  # path label -> trust status
        if telemetry is not None:
            registry = telemetry.registry
            self._m_reports_degraded = registry.counter(
                "reports_degraded_total", "path reports resting on stale data"
            )
            self._m_reports_unavailable = registry.counter(
                "reports_unavailable_total",
                "path reports with no trustworthy figures at all",
            )
            self._h_staleness = registry.histogram(
                "report_staleness_seconds",
                "age of the stalest sample behind each path report",
            )
        self._source_cache: Dict[Tuple, Optional[CounterSource]] = {}
        # Hub membership: hub name -> its host-facing connections.
        self._hub_host_conns: Dict[str, List[ConnectionSpec]] = {}
        for node in spec.nodes:
            if node.kind is DeviceKind.HUB:
                host_conns = [
                    conn
                    for conn in spec.connections_of(node.name)
                    if spec.node(conn.other_end(node.name).node).kind is DeviceKind.HOST
                ]
                self._hub_host_conns[node.name] = host_conns

    # ------------------------------------------------------------------
    # Per-connection traffic
    # ------------------------------------------------------------------
    def counter_source(self, conn: ConnectionSpec) -> Optional[CounterSource]:
        key = conn.endpoints()
        if key not in self._source_cache:
            self._source_cache[key] = resolve_counter_source(self.spec, conn)
        return self._source_cache[key]

    def raw_traffic(self, conn: ConnectionSpec) -> Optional[InterfaceRates]:
        """Latest rate sample at the connection's counter source."""
        source = self.counter_source(conn)
        if source is None:
            return None
        return self.rates.latest(source.node, source.if_index)

    def hub_of(self, conn: ConnectionSpec) -> Optional[str]:
        """The hub this connection touches, if any."""
        for end in conn.endpoints():
            if self.spec.node(end.node).kind is DeviceKind.HUB:
                return end.node
        return None

    # ------------------------------------------------------------------
    # The two rules
    # ------------------------------------------------------------------
    def used_bandwidth(self, conn: ConnectionSpec) -> Tuple[Optional[float], str, Optional[InterfaceRates]]:
        """(u_i in bytes/s, rule name, underlying sample).

        Returns ``(None, "unmeasured", None)`` when no counter source (or
        no sample yet) exists for the inputs the rule needs.
        """
        hub = self.hub_of(conn)
        if hub is None:
            sample = self.raw_traffic(conn)
            if sample is None:
                return None, "unmeasured", None
            return sample.total_bytes_per_s, "switch", sample
        # Hub rule: sum the host legs, clamp to the hub speed.
        total = 0.0
        newest: Optional[InterfaceRates] = None
        any_measured = False
        for leg in self._hub_host_conns.get(hub, []):
            sample = self.raw_traffic(leg)
            if sample is None:
                continue
            any_measured = True
            total += sample.total_bytes_per_s
            if newest is None or sample.time > newest.time:
                newest = sample
        if not any_measured:
            return None, "unmeasured", None
        hub_speed_bytes = self.spec.node(hub).interfaces[0].speed_bps / 8.0
        return min(total, hub_speed_bytes), "hub", newest

    def measure_connection(
        self, conn: ConnectionSpec, now: Optional[float] = None
    ) -> ConnectionMeasurement:
        capacity_bytes = self.spec.effective_bandwidth(conn) / 8.0
        if self.link_state is not None and self.link_state.is_down(conn):
            source = self.counter_source(conn)
            return ConnectionMeasurement(
                connection=conn,
                capacity_bps=capacity_bytes,
                used_bps=0.0,
                source=source.endpoint if source is not None else None,
                rule="down",
            )
        used, rule, sample = self.used_bandwidth(conn)
        source = self.counter_source(conn)
        age = sample.age(now) if (sample is not None and now is not None) else None
        stale = (
            age is not None
            and self.stale_after is not None
            and age > self.stale_after
        )
        quarantined = (
            self.integrity is not None
            and source is not None
            and self.integrity.is_quarantined(source.node, source.if_index)
        )
        return ConnectionMeasurement(
            connection=conn,
            capacity_bps=capacity_bytes,
            used_bps=used if used is not None else 0.0,
            source=source.endpoint if source is not None else None,
            rule=rule,
            sample_time=sample.time if sample is not None else None,
            sample_interval=sample.interval if sample is not None else None,
            sample_age=age,
            stale=stale,
            quarantined=quarantined,
        )

    # ------------------------------------------------------------------
    # Data quality
    # ------------------------------------------------------------------
    def _connection_confidence(self, m: ConnectionMeasurement) -> Optional[float]:
        """0..1 trust in one connection's figures; None = not expected.

        - "down" is *fresh* knowledge (the link-state registry said so).
        - No counter source at all: structurally unmeasured, excluded
          (the report's ``complete`` flag already covers it).
        - Source agent DEAD, or sample older than ``dead_after``: 0.0.
        - Sample between ``stale_after`` and ``dead_after``: linear decay.
        - Expected source but no sample yet: 0.5 (degraded, not dead).
        - Quarantined counter source: capped at 0.5 -- whatever its age
          says, a source the integrity pipeline distrusts is never fully
          believed, and as its withheld samples age the ordinary decay
          below takes it the rest of the way down.
        """
        if m.rule == "down":
            return 1.0
        if m.source is None:
            return None
        if self.health is not None and self.health.is_dead(m.source.node):
            return 0.0
        if m.sample_age is None:
            return 0.25 if m.quarantined else 0.5
        if self.stale_after is None or m.sample_age <= self.stale_after:
            return 0.5 if m.quarantined else 1.0
        if self.dead_after is None:
            return 0.5
        if m.sample_age >= self.dead_after:
            return 0.0
        span = self.dead_after - self.stale_after
        decayed = max(0.0, 1.0 - (m.sample_age - self.stale_after) / span)
        return min(decayed, 0.5) if m.quarantined else decayed

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def measure_path(
        self,
        path: List[ConnectionSpec],
        src: str,
        dst: str,
        time: float,
        name: Optional[str] = None,
    ) -> PathReport:
        """A :class:`PathReport` for an already-traversed path.

        NOTE: all figures are in **bytes/second** (the paper reports
        KB/s); capacities are converted from the spec's bits/second.
        """
        tel = self.telemetry
        tracing = tel is not None and tel.enabled
        span = (
            tel.tracer.begin("measure_path", path=name or f"{src}<->{dst}")
            if tracing
            else None
        )
        measurements = tuple(self.measure_connection(conn, now=time) for conn in path)
        ages = [m.sample_age for m in measurements if m.sample_age is not None]
        confidences = [
            c
            for c in (self._connection_confidence(m) for m in measurements)
            if c is not None
        ]
        confidence = min(confidences) if confidences else 1.0
        report = PathReport(
            src=src,
            dst=dst,
            time=time,
            connections=measurements,
            name=name,
            freshness=max(ages) if ages else None,
            confidence=confidence,
            degraded=confidence < 1.0,
            unavailable=confidence <= 0.0 and bool(confidences),
        )
        if tracing:
            if report.freshness is not None:
                self._h_staleness.observe(report.freshness)
            if report.unavailable:
                self._m_reports_unavailable.inc()
            elif report.degraded:
                self._m_reports_degraded.inc()
            span.finish(status=report.status, connections=len(measurements))
            label = report.label
            previous = self._last_status.get(label, "fresh")
            if report.status != previous:
                self._last_status[label] = report.status
                tel.events.publish(
                    REPORT_STATUS,
                    time,
                    path=label,
                    old=previous,
                    new=report.status,
                    confidence=round(confidence, 3),
                )
        return report
