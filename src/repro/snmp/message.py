"""The SNMP message envelope: version + community string + PDU.

RFC 1157 (v1) and RFC 1901 (v2c) share this trivial-authentication
envelope; the version integer distinguishes them (0 = v1, 1 = v2c) and
selects the agent's error semantics (v1 answers misses with noSuchName,
v2c with per-varbind exception values).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.snmp import ber
from repro.snmp.pdu import Pdu

VERSION_1 = 0
VERSION_2C = 1

_KNOWN_VERSIONS = {VERSION_1, VERSION_2C}


@dataclass
class Message:
    version: int
    community: str
    pdu: Pdu

    def __post_init__(self) -> None:
        if self.version not in _KNOWN_VERSIONS:
            raise ber.BerError(f"unsupported SNMP version {self.version!r}")

    def encode(self) -> bytes:
        return ber.encode_sequence(
            ber.encode_integer(self.version),
            ber.encode_octet_string(self.community.encode()),
            self.pdu.encode(),
        )

    @staticmethod
    def decode(data: bytes) -> "Message":
        content, end = ber.decode_sequence(data, 0)
        if end != len(data):
            raise ber.BerError("trailing bytes after SNMP message")
        pos = 0
        tag, c, pos = ber.decode_tlv(content, pos)
        ber.expect_tag(tag, ber.TAG_INTEGER, "version")
        version = ber.decode_integer_content(c)
        if version not in _KNOWN_VERSIONS:
            raise ber.BerError(f"unsupported SNMP version {version!r}")
        tag, c, pos = ber.decode_tlv(content, pos)
        ber.expect_tag(tag, ber.TAG_OCTET_STRING, "community")
        community = c.decode(errors="replace")
        if pos < len(content) and content[pos] == ber.TAG_TRAP_V1:
            # RFC 1157 Trap-PDUs have their own structure entirely.
            from repro.snmp.trap import TrapV1Pdu  # local: avoids a cycle

            pdu, pos = TrapV1Pdu.decode(content, pos)
        else:
            pdu, pos = Pdu.decode(content, pos)
        if pos != len(content):
            raise ber.BerError("trailing bytes inside SNMP message")
        return Message(version, community, pdu)
