"""Tests for fault injection: link failures, packet loss, agent outages."""

import pytest

from repro.core.monitor import NetworkMonitor
from repro.experiments.testbed import build_testbed
from repro.simnet.faults import (
    AgentOutage,
    AgentReboot,
    FaultError,
    Flap,
    LinkFailure,
    PacketLoss,
    ResponseDelay,
)
from repro.simnet.network import Network
from repro.simnet.sockets import DISCARD_PORT
from repro.simnet.trafficgen import StaircaseLoad, StepSchedule


def small_net():
    net = Network()
    a = net.add_host("A")
    b = net.add_host("B")
    sw = net.add_switch("sw", 4, managed=False)
    net.connect(a, sw)
    net.connect(b, sw)
    net.announce_hosts()
    net.run(0.01)
    return net, a, b


class TestLinkFailure:
    def test_traffic_stops_and_resumes(self):
        net, a, b = small_net()
        link = b.interfaces[0].link
        LinkFailure(net.sim, link, at=5.0, until=10.0)
        StaircaseLoad(
            a, b.primary_ip, StepSchedule([(0.0, 100_000.0), (15.0, 0.0)])
        ).start()
        net.run(5.1)  # failure at 5.0; give in-flight frames 100ms to land
        before = b.discard.octets
        assert before > 0
        net.run(9.9)
        during = b.discard.octets - before
        assert during == 0  # nothing crossed the dead link
        net.run(15.0)
        after = b.discard.octets - before - during
        assert after > 0  # flow resumed on restore

    def test_interface_state_follows(self):
        net, a, b = small_net()
        link = b.interfaces[0].link
        failure = LinkFailure(net.sim, link, at=1.0, until=2.0)
        net.run(1.5)
        assert failure.failed
        assert not b.interfaces[0].admin_up
        net.run(3.0)
        assert not failure.failed
        assert b.interfaces[0].admin_up

    def test_permanent_failure(self):
        net, a, b = small_net()
        LinkFailure(net.sim, b.interfaces[0].link, at=1.0)  # no restore
        net.run(100.0)
        assert not b.interfaces[0].admin_up

    def test_restore_must_follow_failure(self):
        net, a, b = small_net()
        with pytest.raises(FaultError):
            LinkFailure(net.sim, b.interfaces[0].link, at=5.0, until=5.0)

    def test_discards_counted_during_failure(self):
        net, a, b = small_net()
        LinkFailure(net.sim, a.interfaces[0].link, at=0.5)
        StaircaseLoad(
            a, b.primary_ip, StepSchedule([(1.0, 100_000.0), (3.0, 0.0)])
        ).start()
        net.run(4.0)
        assert a.interfaces[0].counters.out_discards > 0


class TestPacketLoss:
    def test_zero_rate_is_transparent(self):
        net, a, b = small_net()
        PacketLoss(b.interfaces[0].link, loss_rate=0.0, seed=1)
        a.create_socket().sendto(100, (b.primary_ip, DISCARD_PORT))
        net.run(1.0)
        assert b.discard.datagrams == 1

    def test_full_loss_blocks_everything(self):
        net, a, b = small_net()
        loss = PacketLoss(b.interfaces[0].link, loss_rate=1.0, seed=1)
        sock = a.create_socket()
        for _ in range(10):
            sock.sendto(100, (b.primary_ip, DISCARD_PORT))
        net.run(1.0)
        assert b.discard.datagrams == 0
        assert loss.frames_lost == 10

    def test_partial_loss_approximates_rate(self):
        net, a, b = small_net()
        loss = PacketLoss(b.interfaces[0].link, loss_rate=0.3, seed=7)
        sock = a.create_socket()
        for _ in range(500):
            sock.sendto(100, (b.primary_ip, DISCARD_PORT))
            net.run(net.now + 0.001)
        net.run(net.now + 1.0)
        assert b.discard.datagrams == pytest.approx(350, abs=40)

    def test_deterministic_for_seed(self):
        results = []
        for _ in range(2):
            net, a, b = small_net()
            PacketLoss(b.interfaces[0].link, loss_rate=0.5, seed=3)
            sock = a.create_socket()
            for _ in range(50):
                sock.sendto(100, (b.primary_ip, DISCARD_PORT))
            net.run(2.0)
            results.append(b.discard.datagrams)
        assert results[0] == results[1]

    def test_rate_validated(self):
        net, a, b = small_net()
        with pytest.raises(FaultError):
            PacketLoss(b.interfaces[0].link, loss_rate=1.5)


class TestAgentOutage:
    def test_monitor_times_out_then_recovers(self):
        build = build_testbed()
        monitor = NetworkMonitor(build, "L", poll_jitter=0.0)
        monitor.watch_path("S1", "N1")
        outage = AgentOutage(build.network.sim, build.agents["S1"], at=6.0, until=16.0)
        monitor.start()
        build.network.run(30.0)
        assert outage.requests_ignored > 0
        assert monitor.manager.timeouts > 0
        # Recovery: the last poll cycles succeeded again.
        assert monitor.poller.rates.latest("S1", 1) is not None
        stats = monitor.stats()
        assert stats["snmp_retransmissions"] >= stats["snmp_timeouts"]

    def test_other_targets_unaffected(self):
        build = build_testbed()
        monitor = NetworkMonitor(build, "L", poll_jitter=0.0)
        AgentOutage(build.network.sim, build.agents["S1"], at=0.0, until=20.0)
        monitor.start()
        build.network.run(20.0)
        assert monitor.poller.rates.latest("N1", 1) is not None
        assert monitor.poller.rates.latest("S1", 1) is None

    def test_window_validated(self):
        build = build_testbed()
        with pytest.raises(FaultError):
            AgentOutage(build.network.sim, build.agents["S1"], at=5.0, until=4.0)


class TestAgentReboot:
    def rebootable_net(self):
        from repro.snmp.agent import SnmpAgent
        from repro.snmp.manager import SnmpManager
        from repro.snmp.mib import SYS_UPTIME, build_mib2

        net, a, b = small_net()
        agent = SnmpAgent(b, build_mib2(b, net.sim))
        manager = SnmpManager(a, timeout=2.0, retries=1)
        return net, a, b, agent, manager, SYS_UPTIME

    def test_counters_zeroed_and_uptime_reset(self):
        net, a, b, agent, manager, SYS_UPTIME = self.rebootable_net()
        StaircaseLoad(
            a, b.primary_ip, StepSchedule([(0.0, 50_000.0), (25.0, 0.0)])
        ).start()
        fault = AgentReboot(net.sim, agent, at=30.0, outage=2.0)
        net.run(29.0)
        assert b.interfaces[0].counters.in_octets > 0
        net.run(33.0)
        assert fault.rebooted
        assert b.interfaces[0].counters.in_octets == 0  # wiped by the reboot
        uptimes = []
        manager.get(b.primary_ip, [SYS_UPTIME], lambda vbs: uptimes.append(vbs[0].value))
        net.run(40.0)
        # ~8 s since the reboot at t=32, nowhere near the 33+ s a
        # never-rebooted agent would report.
        assert len(uptimes) == 1
        assert uptimes[0].to_seconds() < 15.0

    def test_silent_during_outage_window(self):
        net, a, b, agent, manager, SYS_UPTIME = self.rebootable_net()
        fault = AgentReboot(net.sim, agent, at=5.0, outage=3.0)
        errors = []
        net.sim.schedule_at(
            5.5,
            lambda: manager.get(
                b.primary_ip, [SYS_UPTIME], lambda vbs: None, errors.append
            ),
        )
        net.run(20.0)
        assert fault.requests_ignored >= 1
        assert len(errors) == 1  # the request inside the window timed out

    def test_outage_validated(self):
        net, a, b, agent, manager, _ = self.rebootable_net()
        with pytest.raises(FaultError):
            AgentReboot(net.sim, agent, at=1.0, outage=0.0)


class TestResponseDelay:
    def test_delay_applied_then_restored(self):
        from repro.snmp.agent import SnmpAgent
        from repro.snmp.manager import SnmpManager
        from repro.snmp.mib import SYS_UPTIME, build_mib2

        net, a, b = small_net()
        agent = SnmpAgent(b, build_mib2(b, net.sim))
        manager = SnmpManager(a, timeout=2.0, retries=1)
        baseline = agent.response_delay
        fault = ResponseDelay(net.sim, agent, extra=0.5, at=2.0, until=10.0)
        arrivals = []

        def ask():
            sent = net.sim.now
            manager.get(
                b.primary_ip, [SYS_UPTIME],
                lambda vbs: arrivals.append(net.sim.now - sent),
            )

        net.sim.schedule_at(3.0, ask)   # inside the slow window
        net.sim.schedule_at(12.0, ask)  # after restoration
        net.run(20.0)
        assert len(arrivals) == 2
        assert arrivals[0] >= 0.5
        assert arrivals[1] < 0.5
        assert not fault.active
        assert agent.response_delay == pytest.approx(baseline)

    def test_parameters_validated(self):
        net, a, b = small_net()
        with pytest.raises(FaultError):
            ResponseDelay(net.sim, object(), extra=0.0)
        with pytest.raises(FaultError):
            ResponseDelay(net.sim, object(), extra=0.5, at=5.0, until=4.0)


class TestFlap:
    def test_cycles_down_and_up_then_settles_up(self):
        net, a, b = small_net()
        link = b.interfaces[0].link
        fault = Flap(net.sim, link, at=2.0, down_for=1.0, up_for=2.0, until=12.0)
        net.run(2.5)
        assert fault.down
        assert not b.interfaces[0].admin_up
        net.run(3.5)
        assert not fault.down
        assert b.interfaces[0].admin_up
        net.run(30.0)
        # The window closed: whatever the phase, the link ends up.
        assert not fault.down
        assert b.interfaces[0].admin_up
        assert fault.flaps >= 3

    def test_parameters_validated(self):
        net, a, b = small_net()
        link = b.interfaces[0].link
        with pytest.raises(FaultError):
            Flap(net.sim, link, at=0.0, down_for=0.0, up_for=1.0)
        with pytest.raises(FaultError):
            Flap(net.sim, link, at=0.0, down_for=1.0, up_for=0.0)
        with pytest.raises(FaultError):
            Flap(net.sim, link, at=5.0, down_for=1.0, up_for=1.0, until=5.0)
