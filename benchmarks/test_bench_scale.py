"""Ablation: monitor cost vs topology size.

The paper's testbed has 9 hosts; a deployed RM system has hundreds.  This
bench grows a switched star and times (a) the paper's recursive path
traversal, (b) a full poll cycle issued by the monitor, and (c) the
distributed variant's partitioning -- quantifying how the design scales.
"""

import pytest

from repro.core.monitor import NetworkMonitor
from repro.core.traversal import find_path
from repro.spec.builder import build_network
from repro.topology.model import (
    ConnectionSpec,
    DeviceKind,
    InterfaceRef,
    InterfaceSpec,
    NodeSpec,
    TopologySpec,
)


def star_spec(n_hosts: int) -> TopologySpec:
    hosts = [
        NodeSpec(
            f"h{i}",
            interfaces=[InterfaceSpec("eth0")],
            snmp_enabled=(i % 2 == 0),  # half the hosts run agents
        )
        for i in range(n_hosts)
    ]
    switch = NodeSpec(
        "sw",
        kind=DeviceKind.SWITCH,
        interfaces=[InterfaceSpec(f"port{i + 1}") for i in range(n_hosts + 2)],
        snmp_enabled=True,
    )
    connections = [
        ConnectionSpec(InterfaceRef(f"h{i}", "eth0"), InterfaceRef("sw", f"port{i + 1}"))
        for i in range(n_hosts)
    ]
    return TopologySpec("star", hosts + [switch], connections)


@pytest.mark.parametrize("n_hosts", [10, 50, 200])
def test_bench_traversal_scales(benchmark, n_hosts):
    spec = star_spec(n_hosts)
    path = benchmark(find_path, spec, "h0", f"h{n_hosts - 1}")
    assert len(path) == 2


@pytest.mark.parametrize("n_hosts", [10, 50])
def test_bench_poll_cycle(benchmark, n_hosts):
    spec = star_spec(n_hosts)
    build = build_network(spec)
    monitor = NetworkMonitor(build, "h0", poll_interval=2.0, poll_jitter=0.0)
    net = build.network
    net.run(0.1)

    def one_cycle():
        before = monitor.manager.responses_received
        monitor.poller._poll_cycle()
        net.sim.run_until_idle()
        return monitor.manager.responses_received - before

    responses = benchmark(one_cycle)
    assert responses == len(monitor.poller.targets)


def test_bench_watch_many_paths(benchmark):
    spec = star_spec(50)
    build = build_network(spec)
    monitor = NetworkMonitor(build, "h0", poll_jitter=0.0)
    for i in range(1, 25):
        monitor.watch_path("h0", f"h{i}")
    monitor.start()
    build.network.run(6.0)  # two poll cycles so rates exist

    def emit():
        monitor._emit_reports()
        return monitor.reports_emitted

    total = benchmark(emit)
    assert total >= 24
