"""Path latency measurement -- the first item of the paper's future work.

"Future work includes measurement of network latency, ..." (§5).  Two
complementary techniques are implemented:

**Model-based estimation** (:class:`LatencyEstimator`) -- from the same
SNMP measurements the bandwidth monitor already collects.  For each
connection the one-way latency is estimated as transmission time of an
MTU-sized frame plus propagation plus an M/M/1-style queueing term driven
by the measured utilisation::

    d_i = tx + prop + tx * rho_i / (1 - rho_i)     (rho capped < 1)

and the path estimate is the sum over its connections.  Hubs contribute
their store-and-forward repeat time as well.  This needs no new traffic,
matching the paper's philosophy of reusing the monitoring substrate.

**Probe-based measurement** (:class:`PathProber`) -- true RTTs observed by
timestamped UDP probes to the destination's ECHO service (RFC 862), the
network-level ground truth the estimator can be validated against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.bandwidth import BandwidthCalculator
from repro.core.traversal import find_path
from repro.probe.stats import ProbeStats  # shared result model with repro.probe
from repro.simnet.host import Host
from repro.simnet.packet import IPV4_HEADER_SIZE, UDP_HEADER_SIZE
from repro.simnet.sockets import ECHO_PORT
from repro.topology.model import DeviceKind, TopologySpec

DEFAULT_PROP_DELAY = 5e-6  # matches repro.simnet.link.DEFAULT_PROP_DELAY
SWITCH_LATENCY = 10e-6  # matches repro.simnet.switch.SWITCH_FORWARD_LATENCY
MAX_UTILISATION = 0.97  # cap rho so the M/M/1 term stays finite


@dataclass(frozen=True)
class LatencyEstimate:
    """Model-based one-way latency for a path, with its breakdown."""

    src: str
    dst: str
    total_s: float
    per_connection_s: tuple
    queueing_s: float

    @property
    def total_ms(self) -> float:
        return self.total_s * 1e3


class LatencyEstimator:
    """Estimate path latency from the bandwidth monitor's measurements."""

    def __init__(
        self,
        spec: TopologySpec,
        calculator: BandwidthCalculator,
        frame_bytes: int = 1500,
        prop_delay: float = DEFAULT_PROP_DELAY,
    ) -> None:
        self.spec = spec
        self.calculator = calculator
        self.frame_bytes = frame_bytes
        self.prop_delay = prop_delay

    def estimate_path(self, src: str, dst: str) -> LatencyEstimate:
        path = find_path(self.spec, src, dst)
        per_conn: List[float] = []
        queueing_total = 0.0
        charged_hubs: set = set()
        for conn in path:
            capacity_bps = self.spec.effective_bandwidth(conn)  # bits/s
            tx = self.frame_bytes * 8.0 / capacity_bps
            hub = self.calculator.hub_of(conn)
            if hub is not None and hub in charged_hubs:
                # Second connection of the same shared medium: the frame
                # crosses the hub once, so only propagation is added.
                per_conn.append(self.prop_delay)
                continue
            measurement = self.calculator.measure_connection(conn)
            rho = min(measurement.utilization, MAX_UTILISATION)
            queueing = tx * rho / (1.0 - rho)
            hop = tx + self.prop_delay + queueing
            # Store-and-forward devices add their own forwarding cost once
            # per traversed device; attribute it to the inbound connection.
            for end in conn.endpoints():
                kind = self.spec.node(end.node).kind
                if kind is DeviceKind.SWITCH:
                    hop += SWITCH_LATENCY / 2.0  # split across its two links
                elif kind is DeviceKind.HUB:
                    hop += tx  # store-and-forward repeat time
                    charged_hubs.add(end.node)
            per_conn.append(hop)
            queueing_total += queueing
        return LatencyEstimate(
            src=src,
            dst=dst,
            total_s=float(sum(per_conn)),
            per_connection_s=tuple(per_conn),
            queueing_s=queueing_total,
        )


# ProbeStats now lives in repro.probe.stats (imported above) so the RTT
# prober and the probe trains share one result model.


class PathProber:
    """Measure true RTTs with timestamped UDP probes to an ECHO service.

    The destination host must run :class:`~repro.simnet.sockets.
    EchoService`.  Probes carry a sequence number; RTTs are recorded on
    the echo's arrival.  ``on_complete`` fires after the last probe's
    timeout window closes.
    """

    def __init__(
        self,
        src: Host,
        dst_ip,
        count: int = 10,
        interval: float = 0.2,
        payload_size: int = 64,
        timeout: float = 1.0,
        on_complete: Optional[Callable[[ProbeStats], None]] = None,
    ) -> None:
        if count < 1:
            raise ValueError("need at least one probe")
        self.src = src
        self.dst_ip = dst_ip
        self.count = count
        self.interval = interval
        self.payload_size = payload_size
        self.timeout = timeout
        self.on_complete = on_complete
        self.sim = src.sim
        self.socket = src.create_socket()
        self.socket.on_receive = self._on_echo
        self._send_times: Dict[int, float] = {}
        self._rtts: List[float] = []
        self._next_seq = 0
        self.stats: Optional[ProbeStats] = None

    def start(self) -> None:
        self.sim.schedule(0.0, self._send_next)

    def _send_next(self) -> None:
        seq = self._next_seq
        self._next_seq += 1
        self._send_times[seq] = self.sim.now
        payload = seq.to_bytes(4, "big") + b"\x00" * max(0, self.payload_size - 4)
        self.socket.sendto(payload, (self.dst_ip, ECHO_PORT))
        if self._next_seq < self.count:
            self.sim.schedule(self.interval, self._send_next)
        else:
            self.sim.schedule(self.timeout, self._finish)

    def _on_echo(self, payload, size, src_ip, src_port) -> None:
        if payload is None or len(payload) < 4:
            return
        seq = int.from_bytes(payload[:4], "big")
        sent_at = self._send_times.pop(seq, None)
        if sent_at is None:
            return  # duplicate or late echo
        self._rtts.append(self.sim.now - sent_at)

    def _finish(self) -> None:
        self.stats = ProbeStats(
            sent=self.count,
            received=len(self._rtts),
            rtts_s=np.array(self._rtts, dtype=float),
        )
        if self.on_complete is not None:
            self.on_complete(self.stats)
