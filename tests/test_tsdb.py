"""Unit tests for the embedded time-series storage engine (repro.tsdb)."""

import math

import numpy as np
import pytest

from repro.tsdb import (
    BitReader,
    BitWriter,
    Retention,
    Series,
    TSDB,
    TsdbError,
    decode_column,
    decode_timestamps,
    encode_column,
    encode_timestamps,
    window_aggregate,
)
from repro.tsdb.bits import zigzag_decode, zigzag_encode
from repro.tsdb.chunk import HeadChunk
from repro.tsdb.downsample import DownsampledSeries


def bits_equal(a, b) -> bool:
    """Bit-pattern equality (NaN-safe, distinguishes -0.0 from 0.0)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return a.shape == b.shape and bool(
        np.all(a.view(np.uint64) == b.view(np.uint64))
    )


# ----------------------------------------------------------------------
# Bit packing
# ----------------------------------------------------------------------
class TestBits:
    def test_writer_reader_round_trip(self):
        w = BitWriter()
        w.write_bit(1)
        w.write_bits(0b1011, 4)
        w.write_bits(0xDEADBEEF, 32)
        w.write_bit(0)
        data = w.to_bytes()
        r = BitReader(data)
        assert r.read_bit() == 1
        assert r.read_bits(4) == 0b1011
        assert r.read_bits(32) == 0xDEADBEEF
        assert r.read_bit() == 0

    def test_reader_raises_past_end(self):
        r = BitReader(BitWriter().to_bytes())
        with pytest.raises(EOFError):
            r.read_bit()

    def test_zigzag_round_trip(self):
        for v in (0, 1, -1, 63, -64, 2**40, -(2**40), 2**70, -(2**70)):
            zz = zigzag_encode(v)
            assert zz >= 0
            assert zigzag_decode(zz) == v


# ----------------------------------------------------------------------
# Codecs
# ----------------------------------------------------------------------
class TestTimestampCodec:
    def test_regular_grid_compresses_to_about_one_bit(self):
        times = [2.5 + 2.0 * i for i in range(256)]
        data = encode_timestamps(times)
        assert bits_equal(decode_timestamps(data, len(times)), times)
        # 64-bit first sample + ~1 bit per subsequent steady-delta sample.
        assert len(data) < 64

    def test_jittered_times_round_trip_via_escape(self):
        rng = np.random.default_rng(7)
        times = np.cumsum(rng.random(100))  # full-entropy, inexact on the grid
        data = encode_timestamps(times)
        assert bits_equal(decode_timestamps(data, len(times)), times)

    def test_mixed_exact_and_inexact(self):
        times = [0.0, 2.0, 4.0, 4.0 + 1e-9, 6.0, 8.0]
        data = encode_timestamps(times)
        assert bits_equal(decode_timestamps(data, len(times)), times)


class TestValueCodec:
    def test_special_floats_survive_bit_exactly(self):
        values = [
            0.0, -0.0, math.nan, math.inf, -math.inf,
            5e-324, -5e-324, 1.5, 1.5, 1e308,
        ]
        data = encode_column(values)
        assert bits_equal(decode_column(data, len(values)), values)

    def test_constant_stream_is_one_bit_per_repeat(self):
        values = [1234.5] * 512
        data = encode_column(values)
        assert bits_equal(decode_column(data, len(values)), values)
        assert len(data) < 8 + 512 // 8 + 2

    def test_random_stream_round_trips(self):
        rng = np.random.default_rng(3)
        values = rng.standard_normal(200) * 10.0 ** rng.integers(-300, 300, 200)
        data = encode_column(values)
        assert bits_equal(decode_column(data, len(values)), values)

    def test_perfect_predictions_cost_one_bit_each(self):
        rng = np.random.default_rng(5)
        values = rng.standard_normal(256)
        data = encode_column(values, predictions=values)
        assert len(data) <= 256 // 8 + 1
        assert bits_equal(
            decode_column(data, len(values), predictions=values), values
        )

    def test_wrong_predictions_still_lossless(self):
        rng = np.random.default_rng(9)
        values = rng.standard_normal(64)
        predictions = values + rng.standard_normal(64) * 1e-6
        data = encode_column(values, predictions=predictions)
        assert bits_equal(
            decode_column(data, len(values), predictions=predictions), values
        )


# ----------------------------------------------------------------------
# Chunks
# ----------------------------------------------------------------------
class TestChunks:
    def test_seal_and_decode_bit_identical(self):
        head = HeadChunk(("a", "b"))
        rng = np.random.default_rng(1)
        times = np.cumsum(rng.random(50) + 0.5)
        cols = rng.standard_normal((2, 50))
        for i in range(50):
            head.append(float(times[i]), (float(cols[0, i]), float(cols[1, i])))
        sealed = head.seal()
        assert sealed.count == 50
        assert sealed.min_time == times[0] and sealed.max_time == times[-1]
        dt, dv = sealed.arrays()
        assert bits_equal(dt, times)
        assert bits_equal(dv["a"], cols[0])
        assert bits_equal(dv["b"], cols[1])
        assert bits_equal(sealed.decode_field("a"), cols[0])

    def test_predicted_column_needs_predictors_to_decode(self):
        predictors = {"total": lambda cols: cols["x"] + 1.0}
        head = HeadChunk(("x", "total"))
        for i in range(8):
            head.append(float(i), (float(i) * 2, float(i) * 2 + 1.0))
        sealed = head.seal(predictors)
        assert sealed.predicted == {"total"}
        with pytest.raises(ValueError, match="predicted columns"):
            sealed.arrays()
        _, values = sealed.arrays(predictors)
        assert bits_equal(values["total"], [i * 2 + 1.0 for i in range(8)])


# ----------------------------------------------------------------------
# Series
# ----------------------------------------------------------------------
class TestSeries:
    def make(self, n=100, chunk_size=16):
        series = Series("s", ("v", "w"), chunk_size=chunk_size)
        for i in range(n):
            series.append(float(i), (float(i) * 10, float(i) * -1))
        return series

    def test_append_validates_shape_and_order(self):
        series = Series("s", ("v",), chunk_size=4)
        series.append(1.0, (5.0,))
        with pytest.raises(ValueError, match="wants 1 values"):
            series.append(2.0, (1.0, 2.0))
        with pytest.raises(ValueError, match="out-of-order"):
            series.append(0.5, (1.0,))
        series.append(1.0, (6.0,))  # equal time is allowed

    def test_sealing_and_len(self):
        series = self.make(n=100, chunk_size=16)
        assert len(series) == 100
        assert len(series.chunks) == 6
        assert len(series.head) == 4
        assert series.min_time == 0.0 and series.max_time == 99.0

    def test_range_scan_trims_boundary_chunks(self):
        series = self.make(n=100, chunk_size=16)
        times, values = series.arrays(t_start=10.0, t_end=20.0)
        assert list(times) == [float(i) for i in range(10, 20)]
        assert list(values["v"]) == [i * 10.0 for i in range(10, 20)]

    def test_full_scan_bit_identical(self):
        series = self.make(n=100, chunk_size=16)
        times, values = series.arrays()
        assert bits_equal(times, np.arange(100.0))
        assert bits_equal(values["w"], -np.arange(100.0))

    def test_unknown_field_raises(self):
        series = self.make(n=4)
        with pytest.raises(KeyError, match="no field"):
            series.arrays(["nope"])

    def test_latest_without_decoding(self):
        series = self.make(n=10)
        assert series.latest() == (9.0, (90.0, -9.0))
        assert Series("e", ("v",)).latest() is None

    def test_iter_samples_lazy_window(self):
        series = self.make(n=50, chunk_size=8)
        samples = list(series.iter_samples(5.0, 9.0))
        assert samples == [(float(i), (i * 10.0, -float(i))) for i in range(5, 9)]

    def test_flush_seals_head(self):
        series = self.make(n=10, chunk_size=16)
        assert len(series.chunks) == 0
        series.flush()
        assert len(series.chunks) == 1 and len(series.head) == 0
        assert bits_equal(series.arrays()[0], np.arange(10.0))

    def test_drop_chunks_before(self):
        series = self.make(n=100, chunk_size=16)
        dropped = series.drop_chunks_before(40.0)
        assert sum(c.count for c in dropped) == 32  # two whole chunks < 40
        assert series.samples_dropped == 32
        assert series.min_time == 32.0
        assert len(series) == 68

    def test_compression_beats_raw_on_smooth_data(self):
        series = Series("s", ("v",), chunk_size=64)
        for i in range(256):
            series.append(2.5 + 2.0 * i, (1000.0 + (i % 4),))
        assert series.nbytes < series.raw_nbytes / 4


# ----------------------------------------------------------------------
# Downsampling
# ----------------------------------------------------------------------
class TestDownsample:
    def test_window_aggregate_all_aggs(self):
        times = np.array([0.0, 1.0, 2.0, 10.0, 11.0, 25.0])
        values = np.array([1.0, 3.0, 2.0, 8.0, 4.0, 7.0])
        starts, mins = window_aggregate(times, values, 10.0, "min")
        assert list(starts) == [0.0, 10.0, 20.0]
        assert list(mins) == [1.0, 4.0, 7.0]
        assert list(window_aggregate(times, values, 10.0, "max")[1]) == [3.0, 8.0, 7.0]
        assert list(window_aggregate(times, values, 10.0, "mean")[1]) == [2.0, 6.0, 7.0]
        assert list(window_aggregate(times, values, 10.0, "last")[1]) == [2.0, 4.0, 7.0]

    def test_window_aggregate_validates(self):
        with pytest.raises(ValueError, match="unknown aggregate"):
            window_aggregate(np.arange(3.0), np.arange(3.0), 1.0, "median")
        with pytest.raises(ValueError, match="positive"):
            window_aggregate(np.arange(3.0), np.arange(3.0), 0.0)

    def test_absorbed_chunks_merge_windows_exactly(self):
        down = DownsampledSeries(("v",), window=10.0)
        head = HeadChunk(("v",))
        for i in range(10):  # t = 0..9 -> one window
            head.append(float(i), (float(i),))
        down.absorb(head.seal())
        head = HeadChunk(("v",))
        for i in range(10, 25):  # t = 10..24 -> windows 10 and 20
            head.append(float(i), (float(i),))
        down.absorb(head.seal())
        assert down.samples_absorbed == 25
        starts, means = down.arrays("v", "mean")
        assert list(starts) == [0.0, 10.0, 20.0]
        assert list(means) == [4.5, 14.5, 22.0]
        starts, lasts = down.arrays("v", "last", t_start=10.0)
        assert list(starts) == [10.0, 20.0]
        assert list(lasts) == [19.0, 24.0]


# ----------------------------------------------------------------------
# Database layer
# ----------------------------------------------------------------------
class TestTSDB:
    def test_series_autocreate_get_and_errors(self):
        db = TSDB(("v",))
        db.append("a", 1.0, (2.0,))
        assert "a" in db and "b" not in db
        assert db.labels() == ["a"]
        with pytest.raises(TsdbError, match="no series"):
            db.get("b")
        assert db.latest("a") == (1.0, (2.0,))

    def test_retention_validation(self):
        with pytest.raises(ValueError):
            Retention(0.0)
        with pytest.raises(ValueError):
            Retention(10.0, downsample_window_s=-1.0)
        with pytest.raises(ValueError, match="at least one value field"):
            TSDB(())

    def test_retention_drops_and_downsamples(self):
        db = TSDB(
            ("v",), chunk_size=8,
            retention=Retention(20.0, downsample_window_s=10.0),
        )
        for i in range(100):
            db.append("s", float(i), (float(i),))
        stats = db.stats()
        assert stats.samples_dropped > 0
        assert stats.samples + stats.samples_dropped == 100
        # Recent window is intact and exact.
        times, values = db.range("s", t_start=90.0)
        assert list(times) == [float(i) for i in range(90, 100)]
        # Dropped samples survive as coarse windows.
        down = db.downsampled("s")
        assert down is not None
        assert down.samples_absorbed == stats.samples_dropped
        starts, maxima = down.arrays("v", "max")
        assert list(starts)[0] == 0.0 and maxima[0] == 9.0

    def test_aggregate_query(self):
        db = TSDB(("v",), chunk_size=8)
        for i in range(40):
            db.append("s", float(i), (float(i),))
        starts, means = db.aggregate("s", "v", window=10.0, agg="mean")
        assert list(starts) == [0.0, 10.0, 20.0, 30.0]
        assert list(means) == [4.5, 14.5, 24.5, 34.5]

    def test_stats_and_compression_ratio(self):
        db = TSDB(("v",), chunk_size=32)
        for i in range(128):
            db.append("s", 2.5 + 2.0 * i, (42.0,))
        db.flush()
        stats = db.stats()
        assert stats.series == 1
        assert stats.samples == 128
        assert stats.head_samples == 0
        assert stats.raw_nbytes == 128 * 2 * 8
        assert stats.compression_ratio > 4.0

    def test_predictors_thread_through_retention(self):
        predictors = {"b": lambda cols: cols["a"] * 2.0}
        db = TSDB(
            ("a", "b"), chunk_size=8, predictors=predictors,
            retention=Retention(20.0, downsample_window_s=10.0),
        )
        for i in range(60):
            db.append("s", float(i), (float(i), float(i) * 2.0))
        down = db.downsampled("s")
        assert down is not None and down.samples_absorbed > 0
        times, values = db.range("s", t_start=50.0)
        assert bits_equal(values["b"], times * 2.0)
