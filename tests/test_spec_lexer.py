"""Unit tests for the spec-language lexer."""

import pytest

from repro.spec.lexer import LexError, Token, TokenType, tokenize


def types(text):
    return [t.type for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)][:-1]  # drop EOF


class TestBasics:
    def test_empty_input_gives_eof(self):
        tokens = tokenize("")
        assert [t.type for t in tokens] == [TokenType.EOF]

    def test_identifiers_and_punctuation(self):
        text = "host L { }"
        assert types(text) == [
            TokenType.IDENT,
            TokenType.IDENT,
            TokenType.LBRACE,
            TokenType.RBRACE,
            TokenType.EOF,
        ]

    def test_identifier_with_dash_and_digits(self):
        assert values("node-1b") == ["node-1b"]

    def test_arrow(self):
        assert types("a.b <-> c.d")[:7] == [
            TokenType.IDENT,
            TokenType.DOT,
            TokenType.IDENT,
            TokenType.ARROW,
            TokenType.IDENT,
            TokenType.DOT,
            TokenType.IDENT,
        ]

    def test_incomplete_arrow_rejected(self):
        with pytest.raises(LexError):
            tokenize("a <- b")

    def test_unexpected_character(self):
        with pytest.raises(LexError) as err:
            tokenize("host @")
        assert "line 1" in str(err.value)


class TestNumbers:
    def test_integer(self):
        assert values("42") == [42]
        assert isinstance(values("42")[0], int)

    def test_float(self):
        assert values("0.8") == [0.8]
        assert isinstance(values("0.8")[0], float)

    def test_digit_separator(self):
        assert values("100_000") == [100000]

    def test_number_then_unit(self):
        assert values("100 Mbps") == [100, "Mbps"]

    def test_number_dot_not_consumed_without_digit(self):
        # "1." is number 1 followed by a DOT token.
        tokens = tokenize("1.x")
        assert tokens[0].value == 1
        assert tokens[1].type is TokenType.DOT


class TestStrings:
    def test_simple_string(self):
        assert values('"Solaris 7"') == ["Solaris 7"]

    def test_escapes(self):
        assert values(r'"a\"b\\c\nd"') == ['a"b\\c\nd']

    def test_unknown_escape(self):
        with pytest.raises(LexError):
            tokenize(r'"\q"')

    def test_unterminated(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_newline_in_string(self):
        with pytest.raises(LexError):
            tokenize('"a\nb"')


class TestComments:
    def test_hash_comment(self):
        assert values("a # comment\n b") == ["a", "b"]

    def test_slash_slash_comment(self):
        assert values("a // comment\n b") == ["a", "b"]

    def test_block_comment(self):
        assert values("a /* multi\nline */ b") == ["a", "b"]

    def test_unterminated_block(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_token_str_rendering(self):
        token = tokenize('"x"')[0]
        assert "string" in str(token)
