"""The SNMP manager: the polling client the monitor is built on.

Event-driven (the simulator has no threads): each operation takes a
``callback(varbinds)`` and an optional ``errback(exception)``.  Requests
are matched to responses by request-id; unanswered requests retransmit up
to ``retries`` times and then fail with :class:`SnmpTimeout`.

Retransmission timeouts are **adaptive, per destination** (RFC 6298
style): each agent gets an :class:`RtoEstimator` that smooths observed
round-trip times (SRTT/RTTVAR, Karn's rule: no samples from
retransmitted requests) into a retransmission timeout, and retries back
off exponentially within a request.  A slow-but-alive agent therefore
raises its own timeout instead of tripping spurious retransmits, while a
fast one is declared lost quickly.  Unlike TCP, a request that fails
outright does *not* persist its backoff into the next request -- the
poller's health layer (:mod:`repro.core.health`) owns the give-up policy
for persistently dead agents, and polls to distinct agents are
independent.  ``adaptive=False`` restores the legacy fixed ``timeout``.

The manager's packets are real BER bytes travelling the simulated LAN, so
polling consumes bandwidth that the monitor itself then measures -- the
paper counts this among its ~2 % systematic overhead.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.snmp import ber
from repro.snmp.datatypes import EndOfMibView, NoSuchInstance, NoSuchObject
from repro.snmp.errors import ErrorStatus, SnmpError, SnmpErrorResponse, SnmpTimeout
from repro.snmp.message import VERSION_2C, Message
from repro.snmp.mib import SYS_UPTIME
from repro.snmp.oid import Oid
from repro.snmp.pdu import MAX_BULK_REPETITIONS, Pdu, VarBind
from repro.simnet.address import IPv4Address
from repro.simnet.sockets import SNMP_PORT
from repro.telemetry import Telemetry

SuccessCallback = Callable[[List[VarBind]], None]
ErrorCallback = Callable[[Exception], None]

DEFAULT_TIMEOUT = 1.0
DEFAULT_RETRIES = 1

# RFC 6298 smoothing gains and variance multiplier.
RTO_ALPHA = 0.125
RTO_BETA = 0.25
RTO_K = 4.0
DEFAULT_MIN_RTO = 0.25  # the sim's LAN RTTs are milliseconds; don't go lower
DEFAULT_MAX_RTO = 30.0


class RtoEstimator:
    """Smoothed-RTT retransmission timeout for one destination.

    Until the first sample the RTO is ``initial``; afterwards it is
    ``SRTT + K * RTTVAR`` clamped to [min_rto, max_rto].  Exponential
    backoff is applied per attempt via :meth:`timeout_for`, not stored.
    """

    __slots__ = ("initial", "min_rto", "max_rto", "srtt", "rttvar", "rto", "samples")

    def __init__(
        self,
        initial: float = DEFAULT_TIMEOUT,
        min_rto: float = DEFAULT_MIN_RTO,
        max_rto: float = DEFAULT_MAX_RTO,
    ) -> None:
        self.initial = initial
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.rto = initial
        self.samples = 0

    def observe(self, rtt: float) -> None:
        """Fold one round-trip sample in (caller applies Karn's rule)."""
        if rtt < 0:
            return
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = (1 - RTO_BETA) * self.rttvar + RTO_BETA * abs(self.srtt - rtt)
            self.srtt = (1 - RTO_ALPHA) * self.srtt + RTO_ALPHA * rtt
        self.samples += 1
        self.rto = min(
            self.max_rto, max(self.min_rto, self.srtt + RTO_K * self.rttvar)
        )

    def timeout_for(self, attempt: int) -> float:
        """RTO for the ``attempt``-th transmission (1-based): 2x per retry."""
        return min(self.max_rto, self.rto * (2 ** max(0, attempt - 1)))


@dataclass
class DestinationStats:
    """Per-agent request accounting (adaptive-RTO diagnostics)."""

    requests_sent: int = 0
    retransmissions: int = 0
    timeouts: int = 0
    responses: int = 0
    last_rtt: Optional[float] = None


class _Pending:
    __slots__ = (
        "payload", "dst", "attempts", "timer", "callback", "errback",
        "sent_at", "first_sent_at",
    )

    def __init__(self, payload, dst, callback, errback) -> None:
        self.payload = payload
        self.dst = dst
        self.attempts = 0
        self.timer = None
        self.callback = callback
        self.errback = errback
        self.sent_at = 0.0
        self.first_sent_at = 0.0


class SnmpManager:
    """Asynchronous SNMP client bound to one host."""

    def __init__(
        self,
        endpoint,
        community: str = "public",
        version: int = VERSION_2C,
        timeout: float = DEFAULT_TIMEOUT,
        retries: int = DEFAULT_RETRIES,
        agent_port: int = SNMP_PORT,
        adaptive: bool = True,
        min_rto: float = DEFAULT_MIN_RTO,
        max_rto: float = DEFAULT_MAX_RTO,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.endpoint = endpoint
        self.sim = endpoint.sim
        self.community = community
        self.version = version
        self.timeout = timeout  # initial RTO (and the fixed one when not adaptive)
        self.retries = retries
        self.agent_port = agent_port
        self.adaptive = adaptive
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.socket = endpoint.create_socket()  # one ephemeral port for all requests
        self.socket.on_receive = self._on_datagram
        self._request_ids = itertools.count(1)
        self._pending: Dict[int, _Pending] = {}
        self._estimators: Dict[IPv4Address, RtoEstimator] = {}
        self.destinations: Dict[IPv4Address, DestinationStats] = {}
        # Statistics live in the telemetry registry (a standalone manager
        # gets a private disabled hub: counters still count, the optional
        # extras -- per-agent RTT quantiles -- stay off until a monitor
        # wires in its enabled hub and fills ``agent_labels``).
        if telemetry is None:
            telemetry = Telemetry.disabled(clock=lambda: self.sim.now)
        self.telemetry = telemetry
        self.agent_labels: Dict[IPv4Address, str] = {}
        registry = telemetry.registry
        self._m_requests = registry.counter(
            "snmp_requests_total",
            "SNMP requests transmitted, retransmissions included",
        )
        self._m_retransmissions = registry.counter(
            "snmp_retransmissions_total", "SNMP requests retransmitted"
        )
        self._m_timeouts = registry.counter(
            "snmp_timeouts_total", "SNMP requests abandoned after all retries"
        )
        self._m_responses = registry.counter(
            "snmp_responses_total", "SNMP responses matched to a request"
        )
        self._m_unmatched = registry.counter(
            "snmp_responses_unmatched_total",
            "SNMP responses with no pending request (late duplicates)",
        )
        self._m_decode_errors = registry.counter(
            "snmp_decode_errors_total", "datagrams that failed BER decoding"
        )
        self._h_rtt = registry.histogram(
            "snmp_rtt_seconds",
            "round-trip time of first-transmission SNMP exchanges",
            labelnames=("agent",),
        )

    # ------------------------------------------------------------------
    # Statistics (registry-backed; the attribute names are the old API)
    # ------------------------------------------------------------------
    @property
    def requests_sent(self) -> int:
        return self._m_requests.value

    @property
    def retransmissions(self) -> int:
        return self._m_retransmissions.value

    @property
    def timeouts(self) -> int:
        return self._m_timeouts.value

    @property
    def responses_received(self) -> int:
        return self._m_responses.value

    @property
    def responses_unmatched(self) -> int:
        return self._m_unmatched.value

    @property
    def decode_errors(self) -> int:
        return self._m_decode_errors.value

    def _agent_label(self, dst_ip: IPv4Address) -> str:
        label = self.agent_labels.get(dst_ip)
        return label if label is not None else str(dst_ip)

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------
    def get(
        self,
        dst_ip: IPv4Address,
        oids: Sequence[Oid],
        callback: SuccessCallback,
        errback: Optional[ErrorCallback] = None,
        community: Optional[str] = None,
    ) -> int:
        """GET a batch of exact instances; returns the request id.

        ``community`` overrides the manager default for this request only
        (agents on different nodes may use different community strings).
        """
        request_id = next(self._request_ids)
        pdu = Pdu.get_request(request_id, [Oid(o) for o in oids])
        return self._send(request_id, pdu, dst_ip, callback, errback, community)

    def get_next(
        self,
        dst_ip: IPv4Address,
        oids: Sequence[Oid],
        callback: SuccessCallback,
        errback: Optional[ErrorCallback] = None,
        community: Optional[str] = None,
    ) -> int:
        request_id = next(self._request_ids)
        pdu = Pdu.get_next_request(request_id, [Oid(o) for o in oids])
        return self._send(request_id, pdu, dst_ip, callback, errback, community)

    def get_bulk(
        self,
        dst_ip: IPv4Address,
        oids: Sequence[Oid],
        callback: SuccessCallback,
        errback: Optional[ErrorCallback] = None,
        non_repeaters: int = 0,
        max_repetitions: int = 16,
        community: Optional[str] = None,
    ) -> int:
        if self.version != VERSION_2C:
            raise SnmpError("GETBULK requires SNMPv2c")
        request_id = next(self._request_ids)
        pdu = Pdu.get_bulk_request(
            request_id, [Oid(o) for o in oids], non_repeaters, max_repetitions
        )
        return self._send(request_id, pdu, dst_ip, callback, errback, community)

    def walk(
        self,
        dst_ip: IPv4Address,
        root: Oid,
        callback: SuccessCallback,
        errback: Optional[ErrorCallback] = None,
        use_bulk: bool = False,
    ) -> None:
        """Walk the subtree under ``root`` with chained GETNEXT/GETBULK.

        ``callback`` receives the accumulated in-subtree varbinds once the
        walk leaves the subtree or hits endOfMibView.
        """
        root = Oid(root)
        collected: List[VarBind] = []

        def step(varbinds: List[VarBind]) -> None:
            cursor: Optional[Oid] = None
            for vb in varbinds:
                if isinstance(vb.value, (EndOfMibView, NoSuchObject, NoSuchInstance)):
                    callback(collected)
                    return
                if not vb.oid.startswith(root):
                    callback(collected)
                    return
                collected.append(vb)
                cursor = vb.oid
            if cursor is None:
                callback(collected)
                return
            self._walk_step(dst_ip, cursor, step, errback, use_bulk)

        self._walk_step(dst_ip, root, step, errback, use_bulk)

    def _walk_step(self, dst_ip, cursor, step, errback, use_bulk) -> None:
        if use_bulk:
            self.get_bulk(dst_ip, [cursor], step, errback, max_repetitions=16)
        else:
            self.get_next(dst_ip, [cursor], step, errback)

    def poll_interfaces(
        self,
        dst_ip: IPv4Address,
        if_indexes: Sequence[int],
        columns: Sequence[Oid],
        callback: SuccessCallback,
        errback: Optional[ErrorCallback] = None,
        *,
        include_uptime: bool = True,
        community: Optional[str] = None,
        max_exchanges: int = 8,
    ) -> None:
        """Fetch every ``columns`` counter for rows ``if_indexes`` via GetBulk.

        This is the poll path's bulk primitive: instead of one GET naming
        sysUpTime plus ``len(columns) * len(if_indexes)`` exact instances,
        it walks all the columns *in parallel inside one PDU* -- the first
        exchange carries sysUpTime as a non-repeater plus one cursor per
        column, with max-repetitions sized to the row span, so an agent
        whose table fits under :data:`MAX_BULK_REPETITIONS` rows answers
        the entire poll in a single exchange.  Larger tables continue from
        per-column cursors until every requested row (or endOfMibView) is
        reached, chaining at most ``max_exchanges`` requests.

        ``callback`` receives the accumulated varbinds -- the sysUpTime
        instance first, then every in-column row seen -- which is a
        superset of what the equivalent GET would return, so existing
        response parsers work unchanged.  Each exchange is an ordinary
        request underneath: the per-destination adaptive RTO, retry and
        RTT accounting all apply per exchange.  Any exchange that times
        out or errors fails the whole walk through ``errback``.

        Note the uptime skew: sysUpTime rides only the *first* exchange,
        so on a multi-exchange walk later rows are read slightly after
        the uptime they are paired with -- the same error class as the
        paper's "abnormally small value followed by an abnormally large
        one", and bounded by a couple of round trips.
        """
        if self.version != VERSION_2C:
            raise SnmpError("poll_interfaces requires SNMPv2c (GetBulk)")
        if not if_indexes or not columns:
            self.sim.schedule(0.0, callback, [])
            return
        walk = _BulkWalk(
            self, dst_ip, [int(i) for i in if_indexes], [Oid(c) for c in columns],
            callback, errback, include_uptime=include_uptime,
            community=community, max_exchanges=max_exchanges,
        )
        walk.issue()

    @property
    def outstanding(self) -> int:
        return len(self._pending)

    def estimator_for(self, dst_ip: IPv4Address) -> RtoEstimator:
        """The (auto-created) RTO estimator for one destination."""
        estimator = self._estimators.get(dst_ip)
        if estimator is None:
            estimator = self._estimators[dst_ip] = RtoEstimator(
                initial=self.timeout, min_rto=self.min_rto, max_rto=self.max_rto
            )
        return estimator

    def current_rto(self, dst_ip: IPv4Address) -> float:
        """The first-attempt timeout currently in force for ``dst_ip``."""
        if not self.adaptive:
            return self.timeout
        return self.estimator_for(dst_ip).rto

    def destination_stats(self, dst_ip: IPv4Address) -> DestinationStats:
        stats = self.destinations.get(dst_ip)
        if stats is None:
            stats = self.destinations[dst_ip] = DestinationStats()
        return stats

    def cancel_all(self) -> None:
        """Abort every outstanding request without invoking errbacks."""
        for pending in self._pending.values():
            if pending.timer is not None:
                pending.timer.cancel()
        self._pending.clear()

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    def _send(
        self,
        request_id: int,
        pdu: Pdu,
        dst_ip: IPv4Address,
        callback: SuccessCallback,
        errback: Optional[ErrorCallback],
        community: Optional[str] = None,
    ) -> int:
        payload = Message(
            self.version, community if community is not None else self.community, pdu
        ).encode()
        pending = _Pending(payload, (dst_ip, self.agent_port), callback, errback)
        self._pending[request_id] = pending
        self._transmit(request_id)
        return request_id

    def _transmit(self, request_id: int) -> None:
        pending = self._pending.get(request_id)
        if pending is None:
            return
        pending.attempts += 1
        dst_ip = pending.dst[0]
        stats = self.destination_stats(dst_ip)
        if pending.attempts > 1:
            self._m_retransmissions.inc()
            stats.retransmissions += 1
        self._m_requests.inc()
        stats.requests_sent += 1
        pending.sent_at = self.sim.now
        if pending.attempts == 1:
            pending.first_sent_at = self.sim.now
        self.socket.sendto(pending.payload, pending.dst)
        if self.adaptive:
            rto = self.estimator_for(dst_ip).timeout_for(pending.attempts)
        else:
            rto = self.timeout
        pending.timer = self.sim.schedule(rto, self._on_timeout, request_id)

    def _on_timeout(self, request_id: int) -> None:
        pending = self._pending.get(request_id)
        if pending is None:
            return
        if pending.attempts <= self.retries:
            self._transmit(request_id)
            return
        del self._pending[request_id]
        self._m_timeouts.inc()
        self.destination_stats(pending.dst[0]).timeouts += 1
        if pending.errback is not None:
            pending.errback(SnmpTimeout(str(pending.dst[0]), pending.attempts))

    def _on_datagram(
        self, payload: Optional[bytes], size: int, src_ip: IPv4Address, src_port: int
    ) -> None:
        if payload is None:
            self._m_decode_errors.inc()
            return
        try:
            message = Message.decode(payload)
        except ber.BerError:
            self._m_decode_errors.inc()
            return
        pdu = message.pdu
        if pdu.kind != "response":
            self._m_unmatched.inc()
            return
        pending = self._pending.pop(pdu.request_id, None)
        if pending is None:
            # Late duplicate after a retransmit already succeeded.
            self._m_unmatched.inc()
            return
        if pending.timer is not None:
            pending.timer.cancel()
        self._m_responses.inc()
        stats = self.destination_stats(pending.dst[0])
        stats.responses += 1
        # Karn's rule: a response after a retransmit is ambiguous about
        # which copy it answers, so it yields no exact RTT sample.  It
        # does bound the RTT from above by the time since the *first*
        # copy went out; feeding that overestimate keeps the estimator
        # converging upward for an agent slower than the current RTO
        # (pure Karn would starve it of samples and retransmit forever).
        if self.adaptive:
            if pending.attempts == 1:
                rtt = self.sim.now - pending.sent_at
                stats.last_rtt = rtt
                self.estimator_for(pending.dst[0]).observe(rtt)
                if self.telemetry.enabled:
                    self._h_rtt.labels(
                        agent=self._agent_label(pending.dst[0])
                    ).observe(rtt)
            else:
                self.estimator_for(pending.dst[0]).observe(
                    self.sim.now - pending.first_sent_at
                )
        elif pending.attempts == 1 and self.telemetry.enabled:
            # Karn's rule still applies without adaptive RTO: only
            # unambiguous first-transmission RTTs feed the histogram.
            self._h_rtt.labels(agent=self._agent_label(pending.dst[0])).observe(
                self.sim.now - pending.sent_at
            )
        if pdu.error_status != int(ErrorStatus.NO_ERROR):
            exc = SnmpErrorResponse(ErrorStatus(pdu.error_status), pdu.error_index)
            if pending.errback is not None:
                pending.errback(exc)
            return
        pending.callback(pdu.varbinds)


class _BulkWalk:
    """State machine behind :meth:`SnmpManager.poll_interfaces`.

    Walks every counter column in parallel with chained GetBulk requests,
    keeping a per-column cursor and done flag.  Classification of response
    varbinds is by column-prefix match, not position, so it tolerates both
    this model's column-major response layout and the row-interleaved
    layout RFC 1905 describes.
    """

    __slots__ = (
        "manager", "dst_ip", "columns", "callback", "errback", "community",
        "max_exchanges", "min_idx", "max_idx", "cursors", "cursor_rows",
        "done", "collected", "extra", "exchanges", "include_uptime",
        "finished",
    )

    def __init__(
        self,
        manager: SnmpManager,
        dst_ip: IPv4Address,
        if_indexes: List[int],
        columns: List[Oid],
        callback: SuccessCallback,
        errback: Optional[ErrorCallback],
        *,
        include_uptime: bool,
        community: Optional[str],
        max_exchanges: int,
    ) -> None:
        self.manager = manager
        self.dst_ip = dst_ip
        self.columns = columns
        self.callback = callback
        self.errback = errback
        self.community = community
        self.max_exchanges = max(1, max_exchanges)
        self.min_idx = min(if_indexes)
        self.max_idx = max(if_indexes)
        # A cursor is the last OID seen in a column (exclusive): GetBulk
        # resumes at get_next(cursor).  Seeding at row min-1 makes the
        # first returned row the first one we actually want.
        self.cursors: Dict[Oid, Oid] = {
            col: col + str(self.min_idx - 1) for col in columns
        }
        self.cursor_rows: Dict[Oid, int] = {col: self.min_idx - 1 for col in columns}
        self.done: Dict[Oid, bool] = {col: False for col in columns}
        self.collected: List[VarBind] = []
        self.extra: List[VarBind] = []  # the sysUpTime non-repeater result
        self.exchanges = 0
        self.include_uptime = include_uptime
        self.finished = False

    def issue(self) -> None:
        """Send the next exchange of the walk."""
        live = [col for col in self.columns if not self.done[col]]
        if not live:
            self._finish()
            return
        reps = max(self.max_idx - self.cursor_rows[col] for col in live)
        reps = max(1, min(reps, MAX_BULK_REPETITIONS))
        oids: List[Oid] = []
        non_repeaters = 0
        if self.include_uptime and self.exchanges == 0:
            # get_next(sysUpTime-object) yields the .0 instance; naming
            # the instance itself would return its successor instead.
            oids.append(SYS_UPTIME[: len(SYS_UPTIME) - 1])
            non_repeaters = 1
        oids.extend(self.cursors[col] for col in live)
        self.exchanges += 1
        self.manager.get_bulk(
            self.dst_ip, oids, self._on_response, self._on_error,
            non_repeaters=non_repeaters, max_repetitions=reps,
            community=self.community,
        )

    def _on_response(self, varbinds: List[VarBind]) -> None:
        if self.finished:
            return
        progressed: set = set()
        for vb in varbinds:
            col = self._classify(vb.oid)
            if col is None:
                # Non-repeater result (sysUpTime) -- or an out-of-table
                # OID an exhausted column walked into; the former only
                # arrives on the first exchange before any column rows.
                if not self.collected and len(self.extra) < 1:
                    self.extra.append(vb)
                continue
            if self.done[col]:
                continue
            if isinstance(vb.value, (EndOfMibView, NoSuchObject, NoSuchInstance)):
                self.done[col] = True
                continue
            row = vb.oid.arcs[len(col.arcs)] if len(vb.oid.arcs) > len(col.arcs) else -1
            if row <= self.cursor_rows[col]:
                continue  # duplicate/stale; progress judged per column below
            if row > self.max_idx:
                self.done[col] = True
                continue
            self.collected.append(vb)
            self.cursors[col] = vb.oid
            self.cursor_rows[col] = row
            progressed.add(col)
            if row == self.max_idx:
                self.done[col] = True
        # A column that neither advanced nor terminated would loop the
        # same cursor forever (e.g. the whole column is absent and the
        # agent's walk left the table immediately): declare it done.
        for col in self.columns:
            if not self.done[col] and col not in progressed:
                self.done[col] = True
        if all(self.done.values()) or self.exchanges >= self.max_exchanges:
            self._finish()
        else:
            self.issue()

    def _classify(self, oid: Oid) -> Optional[Oid]:
        for col in self.columns:
            if oid.startswith(col):
                return col
        return None

    def _on_error(self, exc: Exception) -> None:
        if self.finished:
            return
        self.finished = True
        if self.errback is not None:
            self.errback(exc)

    def _finish(self) -> None:
        if self.finished:
            return
        self.finished = True
        self.callback(self.extra + self.collected)
