#!/usr/bin/env python3
"""Self-healing topology: redundant uplinks, STP failover, re-convergence.

Two switches joined by *two* parallel uplinks would be an illegal layer-2
loop to the paper's monitor; with spanning tree enabled the spec is
legal, one uplink forwards while its twin blocks, and the monitor's
discovery-driven sync loop keeps the measured paths on whichever uplink
currently carries traffic:

1. build a redundant-pair topology (``stp "on"`` on both switches);
2. start a monitor with ``enable_topology_sync()`` -- one targeted STP
   GET per switch rides along with every poll cycle;
3. kill the active uplink mid-run and watch the typed
   ``TopologyChanged`` / ``PathRerouted`` stream events as the watched
   path re-resolves onto the backup uplink, no manual
   ``invalidate_paths()`` anywhere.

Run:  python examples/uplink_failover.py
"""

from repro.core.monitor import NetworkMonitor
from repro.simnet.faults import LinkFailure
from repro.spec.builder import build_network
from repro.spec.parser import parse_spec
from repro.stream.events import PathRerouted, TopologyChanged

SPEC = """
network topology redundant {
    host A { snmp community "public"; }
    host B { snmp community "public"; }
    switch sw1 { snmp community "public"; ports 4; stp "on"; }
    switch sw2 { snmp community "public"; ports 4; stp "on"; }
    connect A.eth0 <-> sw1.port1;
    connect B.eth0 <-> sw2.port1;
    connect sw1.port3 <-> sw2.port3;
    connect sw1.port4 <-> sw2.port4;
}
"""

POLL = 2.0
FAIL_AT = 9.0


def main() -> None:
    build = build_network(parse_spec(SPEC))
    net = build.network

    monitor = NetworkMonitor(build, "A", poll_interval=POLL, poll_jitter=0.0)
    monitor.enable_topology_sync()
    monitor.watch_path("A", "B")
    stream = monitor.enable_streaming(significance=False)
    ops = stream.manager.subscribe("ops")  # wildcard: sees topology events

    net.announce_hosts(at=2.0)
    monitor.start(at=2.5)

    # Let STP converge and the sync loop mirror it into the graph.
    net.sim.run(until=8.9)
    before = monitor.path_of("A<->B")
    print("=== before the failure ===")
    print("active path:  " + " | ".join(str(c) for c in before))
    print("blocked:      "
          + ", ".join(str(c) for c in monitor.graph.blocked_connections()))
    report = monitor.current_report("A<->B")
    print(f"report:       {report.available_bps / 1000:.0f} KB/s available, "
          f"redundant={report.redundant}")

    # Kill the uplink the active path crosses.
    uplinks = [
        c for c in monitor.spec.connections
        if {c.end_a.node, c.end_b.node} == {"sw1", "sw2"}
    ]
    active = next(c for c in uplinks if c in before)
    LinkFailure.between(net, "sw1", "sw2", at=FAIL_AT,
                        index=uplinks.index(active),
                        events=monitor.telemetry.events)
    print(f"\n[{FAIL_AT:.1f}s] killing active uplink {active}")

    # Recovery bound: re-converged and re-resolved within 3 poll cycles.
    net.sim.run(until=FAIL_AT + 3 * POLL)

    print("\n=== stream events during failover ===")
    for event in ops.drain():
        if isinstance(event, (TopologyChanged, PathRerouted)):
            print(event)

    after = monitor.path_of("A<->B")
    report = monitor.current_report("A<->B")
    print("\n=== after re-convergence ===")
    print("active path:  " + " | ".join(str(c) for c in after))
    print("blocked:      "
          + ", ".join(str(c) for c in monitor.graph.blocked_connections()))
    print(f"report:       {report.available_bps / 1000:.0f} KB/s available, "
          f"status={report.status}")
    stats = monitor.stats()
    print(f"\n{stats['topology_changes']:.0f} topology change(s), "
          f"{stats['path_reroutes']:.0f} reroute(s), "
          f"{stats['topology_rounds']:.0f} sync round(s)")
    assert active not in after, "watch still on the dead uplink"
    assert report.status == "fresh", "report wedged after failover"


if __name__ == "__main__":
    main()
