#!/usr/bin/env python3
"""The paper's evaluation, end to end, on the Figure-3 testbed.

Rebuilds the LIRTSS LAN (one 100 Mb/s switch, one 10 Mb/s hub, hosts L,
S1-S6, N1-N2), runs a compressed version of the §4.3.1 staircase load from
L to N1, and prints:

- the generated-vs-measured series (Figures 4a/4b);
- the Table-2 accuracy statistics next to the paper's reference values.

For the full-length (480 simulated seconds) runs see the benchmark
harness: ``pytest benchmarks/ --benchmark-only``.

Run:  python examples/paper_testbed.py
"""

from repro import Scenario, StepSchedule
from repro.analysis.series import stable_mask
from repro.analysis.stats import compute_table2
from repro.simnet.trafficgen import KBPS

# Compressed staircase: 100 / 200 / 300 KB/s, 30 s per level.
SCHEDULE = StepSchedule(
    [(20.0, 100 * KBPS), (50.0, 200 * KBPS), (80.0, 300 * KBPS), (110.0, 0.0)]
)
RUN_UNTIL = 140.0


def main() -> None:
    scenario = Scenario(seed=0)
    label = scenario.watch("S1", "N1")
    scenario.add_load("L", "N1", SCHEDULE)
    print("running the compressed Fig-4 staircase on the Figure-3 testbed...")
    scenario.run(RUN_UNTIL)

    pair = scenario.series_pair(label, ["N1"])
    print(f"\npath: S1 -> switch -> hub -> N1   (poll interval "
          f"{scenario.monitor.poll_interval}s)")
    print(f"{'time (s)':>9} {'generated (KB/s)':>17} {'measured (KB/s)':>16}")
    for i in range(0, len(pair.times), 3):
        print(f"{pair.times[i]:9.1f} {pair.generated_kbps[i]:17.1f} "
              f"{pair.measured_kbps[i]:16.2f}")

    stable = stable_mask(pair.times, SCHEDULE, window=2.0, guard=1.0)
    stats = compute_table2(pair.measured_kbps, pair.generated_kbps, stable=stable)
    print()
    print(stats.format_table())
    print("\npaper reference (full-length run): background 0.824 KB/s, "
          "avg error ~4%, worst individual error up to ~16%")


if __name__ == "__main__":
    main()
