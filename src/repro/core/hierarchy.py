"""Two-level coordinator tree for 10k-host-scale monitoring.

One coordinator ingesting every worker's batches scales linearly in one
host's receive path and one process's ARQ bookkeeping.  The hierarchical
plane splits the poll-target pool into *shards*: each shard is owned by
a :class:`LeafCoordinator` -- a full fault-tolerant
:class:`~repro.core.distributed.DistributedMonitor` over the shard's
worker hosts, minus the report surface -- which aggregates its workers'
samples locally and ships them up one delta-encoded, sequenced stream.
The :class:`HierarchicalMonitor` root therefore sees *one stream per
shard* (plus heartbeats), not one per worker, and its rate table and
path reports are computed exactly like the flat plane's.

The tree reuses the flat plane's machinery at both levels, by
construction rather than duplication:

* **Root ingest** -- ``HierarchicalMonitor`` *is* a
  ``DistributedMonitor`` whose "workers" are leaf coordinators: leases,
  selective-retransmit ARQ, degraded-source marking, versioned
  assignments and the watch/report surface are inherited unchanged.
  Shard assignment rides the same ``assign`` control message workers
  use, so a lost shard datagram heals through the same stale-echo
  resend.
* **Leaf uplink** -- the leaf ships with the same
  :class:`~repro.core.distributed.SampleShipper` a worker uses
  (sequencing, bounded resend buffer, retransmit service), with delta
  encoding on by default: quiescent shards cost a few bytes per
  interface per batch, and periodic keyframes bound the cost of any
  lost context.
* **Failover, twice** -- a dead *worker* is handled inside its leaf
  (the shard repartitions over the surviving workers); a dead *leaf*
  is handled by the root (its shard's targets repartition over the
  surviving leaves, which forward them to their own workers).  Both are
  the same ``_rebalance`` code path.

A leaf coordinator crash kills only the coordinator *process*: its
workers -- separate hosts -- keep polling and shipping into the void.
On restart the leaf resumes with fresh ingest state, *adopts* its
workers' mid-flight sequence streams instead of demanding retransmits
back to seq 1, and heals its delta decoders with keyframe requests.
"""

from __future__ import annotations

import logging
from typing import Dict, List, Optional, Sequence

from repro.core.distributed import (
    CONTROL_PORT,
    REPORT_PORT,
    DistributedMonitor,
    SampleShipper,
    decode_message,
    encode_heartbeat,
)
from repro.core.poller import InterfaceRates, PollTarget
from repro.simnet.address import IPv4Address
from repro.spec.builder import BuildResult

logger = logging.getLogger("repro.hierarchy")


class _PoolView:
    """Adapter giving a leaf the worker's ``poller.targets`` surface
    (what :meth:`DistributedMonitor.targets_of` reads)."""

    __slots__ = ("_dm",)

    def __init__(self, dm: DistributedMonitor) -> None:
        self._dm = dm

    @property
    def targets(self) -> List[PollTarget]:
        return list(self._dm._target_pool)


class LeafCoordinator:
    """One shard: a local coordinator over its worker hosts, plus an
    uplink to the hierarchy root.

    Presents the same surface to the root that a
    :class:`~repro.core.distributed.MonitorWorker` presents to a flat
    coordinator -- ``start``/``stop``/``crash``/``restart``, an
    ``assign_version`` echo, a control listener serving ``retx`` /
    ``assign`` / ``kfreq``, and sequenced (delta-encoded) sample
    batches -- so the root can drive leaves with the unmodified flat
    machinery.
    """

    def __init__(
        self,
        build: BuildResult,
        host_name: str,
        worker_hosts: Sequence[str],
        targets: Sequence[PollTarget],
        root_ip: IPv4Address,
        poll_interval: float,
        poll_jitter: float,
        seed: int,
        heartbeat_interval: Optional[float] = None,
        batch_linger: Optional[float] = None,
        max_batch: int = 32,
        resend_buffer: int = 32,
        poll_mode: str = "bulk",
        pipeline_window: int = 8,
        delta_shipping: bool = True,
        keyframe_every: int = 16,
    ) -> None:
        self.build = build
        self.name = host_name
        self.host = build.network.host(host_name)
        self.sim = self.host.sim
        self.root_ip = root_ip
        self.poll_interval = poll_interval
        self.heartbeat_interval = (
            heartbeat_interval if heartbeat_interval is not None else poll_interval * 0.4
        )
        self.batch_linger = (
            batch_linger if batch_linger is not None else poll_interval * 0.25
        )
        # The shard: a full fault-tolerant plane over this leaf's
        # workers, aggregating into its own rate table; samples accepted
        # there chain straight into the uplink shipper.  No report task
        # (the root reports), no integrity (the root inspects once, so
        # shipped samples face exactly the same gauntlet as in the flat
        # plane), no telemetry registry of its own.
        self.dm = DistributedMonitor(
            build,
            coordinator_host=host_name,
            worker_hosts=list(worker_hosts),
            poll_interval=poll_interval,
            poll_jitter=poll_jitter,
            seed=seed,
            telemetry=False,
            integrity=False,
            max_batch=max_batch,
            resend_buffer=resend_buffer,
            poll_mode=poll_mode,
            pipeline_window=pipeline_window,
            delta_shipping=delta_shipping,
            keyframe_every=keyframe_every,
            targets=list(targets),
            emit_reports=False,
            adopt_streams=True,
        )
        self.dm.on_sample = self._enqueue
        self.poller = _PoolView(self.dm)  # root reads poller.targets
        self.shipper = SampleShipper(
            host_name,
            self._send_up,
            max_batch=max_batch,
            resend_buffer=resend_buffer,
            delta=delta_shipping,
            keyframe_every=keyframe_every,
        )
        self.assign_version = 0
        self.crashed = False
        self._started = False
        self._hb_task = None
        self._flush_task = None
        self.heartbeats_sent = 0
        self.assignments_applied = 0
        self._open_sockets()

    # -- root-facing worker surface --------------------------------------
    @property
    def incarnation(self) -> int:
        return self.shipper.incarnation

    @property
    def requests_sent(self) -> int:
        """Total SNMP requests issued by this shard's workers."""
        return sum(w.requests_sent for w in self.dm.workers.values())

    @property
    def window_peak(self) -> int:
        """Deepest pipeline occupancy any of this shard's workers hit."""
        return max(
            (w.poller.window_peak for w in self.dm.workers.values()), default=0
        )

    # -- construction / teardown -----------------------------------------
    def _open_sockets(self) -> None:
        self._uplink = self.host.create_socket()
        self._listener = self.host.create_socket(CONTROL_PORT)
        self._listener.on_receive = self._on_control

    def _send_up(self, payload: bytes) -> None:
        self._uplink.sendto(payload, (self.root_ip, REPORT_PORT))

    # -- lifecycle --------------------------------------------------------
    def start(self, at: Optional[float] = None) -> None:
        self._started = True
        self.dm.start(at=at)
        if at is None or at <= self.sim.now:
            self._begin_tasks()
        else:
            self.sim.schedule_at(at, self._begin_tasks)

    def _begin_tasks(self) -> None:
        if self.crashed:
            return
        start = self.sim.now
        self._hb_task = self.sim.call_every(
            self.heartbeat_interval, self._heartbeat, start=start
        )
        self._flush_task = self.sim.call_every(
            self.batch_linger, self._flush, start=start + self.batch_linger
        )

    def _cancel_tasks(self) -> None:
        for attr in ("_hb_task", "_flush_task"):
            task = getattr(self, attr)
            if task is not None:
                task.cancel()
                setattr(self, attr, None)

    def stop(self) -> None:
        self._started = False
        if not self.crashed:
            self._cancel_tasks()
            self._uplink.close()
            self._listener.close()
        self.dm.stop()

    def crash(self) -> None:
        """The leaf coordinator *process* dies.  Its workers -- separate
        hosts -- keep polling and shipping into the void; only the
        shard-local ingest, the uplink and the control listener go."""
        if self.crashed:
            return
        self.crashed = True
        self._cancel_tasks()
        self._uplink.close()
        self._listener.close()
        self.dm.suspend()

    def restart(self) -> None:
        """The process comes back: fresh uplink incarnation, fresh
        shard ingest that *adopts* the workers' mid-flight streams, and
        assignment version 0 so the root re-ships the shard."""
        if not self.crashed:
            return
        self.crashed = False
        self.shipper.reset(self.shipper.incarnation + 1)
        self.assign_version = 0
        self._open_sockets()
        self.dm.resume()
        if self._started:
            self._begin_tasks()

    # -- uplink shipping ---------------------------------------------------
    def _enqueue(self, sample: InterfaceRates) -> None:
        if self.shipper.enqueue(sample):
            self._flush()

    def _flush(self) -> None:
        if self.crashed:
            return
        self.shipper.flush()

    def _heartbeat(self) -> None:
        if self.crashed:
            return
        self.heartbeats_sent += 1
        self._send_up(
            encode_heartbeat(
                self.name, self.incarnation, self.shipper.next_seq,
                self.assign_version,
            )
        )

    # -- control (root -> leaf) -------------------------------------------
    def _on_control(self, payload, size, src_ip, src_port) -> None:
        if payload is None or self.crashed:
            return
        try:
            doc = decode_message(payload)
            kind = doc["k"]
            if kind == "retx":
                self.shipper.serve_retransmit(doc)
            elif kind == "assign":
                self._apply_assignment(doc)
            elif kind == "kfreq":
                self.shipper.force_keyframe()
        except (ValueError, KeyError, TypeError):
            return  # malformed control traffic: ignore

    def _apply_assignment(self, doc: Dict[str, object]) -> None:
        version = int(doc["v"])
        if version <= self.assign_version:
            return  # duplicate or out-of-date: idempotent drop
        network = self.build.network
        targets = [
            PollTarget(
                node=t["n"],
                address=network.ip_of(t["n"]),
                if_indexes=[int(i) for i in t["ifs"]],
                community=t["c"],
            )
            for t in doc["t"]
        ]
        self.assign_version = version
        self.assignments_applied += 1
        logger.info(
            "leaf %s applied shard v%d: %d targets",
            self.name, version, len(targets),
        )
        self.dm.set_target_pool(targets)


class HierarchicalMonitor(DistributedMonitor):
    """The root of the coordinator tree.

    ``plan`` is :func:`repro.experiments.scale.hierarchy_plan` output:
    it names the root host, each shard's leaf coordinator host, the
    worker hosts inside each shard, and each shard's *member* nodes
    (the affinity map: a target's home shard is the pod it lives in, so
    monitoring traffic stays inside the pod until aggregation).  Leaves
    are driven through the inherited flat-plane machinery -- leases,
    ARQ, versioned ``assign`` messages -- and ship delta-encoded sample
    streams; the root's report surface is the flat coordinator's.
    """

    def __init__(
        self,
        build: BuildResult,
        plan: Dict[str, object],
        poll_interval: float = 2.0,
        poll_mode: str = "bulk",
        pipeline_window: int = 8,
        delta_shipping: bool = True,
        keyframe_every: int = 16,
        max_batch: int = 32,
        **kwargs,
    ) -> None:
        shards = plan["shards"]
        if not shards:
            raise ValueError("plan has no shards")
        self.plan = plan
        self._shard_workers: Dict[str, List[str]] = {
            leaf: list(shard["workers"]) for leaf, shard in shards.items()
        }
        self._shard_of: Dict[str, str] = {
            member: leaf
            for leaf, shard in shards.items()
            for member in shard["members"]
        }
        super().__init__(
            build,
            coordinator_host=plan["root"],
            worker_hosts=list(shards),
            poll_interval=poll_interval,
            poll_mode=poll_mode,
            pipeline_window=pipeline_window,
            delta_shipping=delta_shipping,
            keyframe_every=keyframe_every,
            max_batch=max_batch,
            **kwargs,
        )

    # -- hooks into the flat machinery ------------------------------------
    def _affinity(self, target: PollTarget) -> Optional[str]:
        return self._shard_of.get(target.node)

    def _make_worker(
        self, name: str, targets: List[PollTarget], index: int
    ) -> LeafCoordinator:
        return LeafCoordinator(
            self.build,
            name,
            self._shard_workers[name],
            targets,
            self.coordinator.primary_ip,
            self.poll_interval,
            self.poll_jitter,
            seed=self.seed + 1000 * (index + 1),
            heartbeat_interval=self.heartbeat_interval,
            max_batch=self.max_batch,
            resend_buffer=self.resend_buffer,
            poll_mode=self.poll_mode,
            pipeline_window=self.pipeline_window,
            delta_shipping=self.delta_shipping,
            keyframe_every=self.keyframe_every,
        )

    # -- introspection ------------------------------------------------------
    @property
    def leaves(self) -> Dict[str, LeafCoordinator]:
        return self.workers

    def stats(self) -> Dict[str, float]:
        """Flat counters plus per-shard poll/uplink economics."""
        out = super().stats()
        out["shards"] = float(len(self.workers))
        for name, leaf in self.workers.items():
            out[f"per_shard_exchanges.{name}"] = float(leaf.requests_sent)
            out[f"per_shard_delta_reduction.{name}"] = (
                leaf.shipper.traffic_reduction
            )
            out[f"per_shard_keyframes.{name}"] = float(
                leaf.shipper.keyframes_shipped
            )
            out[f"per_shard_window_peak.{name}"] = float(leaf.window_peak)
        return out
