"""The database layer: named series, retention policies, stats.

A :class:`TSDB` owns a family of same-schema series (one per watched
path, in the monitor's case).  A :class:`Retention` policy bounds each
series' raw storage: sealed chunks entirely older than ``max_age_s``
are dropped -- after being folded into a per-series
:class:`~repro.tsdb.downsample.DownsampledSeries` when a downsample
window is configured, so old history coarsens instead of vanishing.
Retention never touches the head chunk or a straddling chunk, so the
newest ``chunk_size`` samples are always exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.tsdb.chunk import Predictors
from repro.tsdb.downsample import DownsampledSeries, window_aggregate
from repro.tsdb.series import DEFAULT_CHUNK_SIZE, Series


class TsdbError(KeyError):
    """Raised for unknown series or fields."""


@dataclass(frozen=True)
class Retention:
    """How long raw samples live, and what survives them.

    ``max_age_s``: sealed chunks whose newest sample is older than
    ``now - max_age_s`` are dropped.  ``downsample_window_s``: when set,
    dropped chunks are first aggregated into windows of this many
    seconds (min/max/mean/last per field).
    """

    max_age_s: float
    downsample_window_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_age_s <= 0:
            raise ValueError(f"max_age_s must be positive, got {self.max_age_s!r}")
        if self.downsample_window_s is not None and self.downsample_window_s <= 0:
            raise ValueError(
                f"downsample_window_s must be positive, got {self.downsample_window_s!r}"
            )


@dataclass(frozen=True)
class SeriesStats:
    """Storage accounting for one series (or a whole database)."""

    series: int
    samples: int
    samples_dropped: int
    chunks: int
    head_samples: int
    nbytes: int
    raw_nbytes: int
    downsampled_windows: int

    @property
    def compression_ratio(self) -> float:
        """Raw float64 bytes per stored byte (higher is better)."""
        return self.raw_nbytes / self.nbytes if self.nbytes else float("nan")


class TSDB:
    """A family of same-schema compressed series with shared retention."""

    def __init__(
        self,
        fields: Sequence[str],
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        retention: Optional[Retention] = None,
        predictors: "Predictors" = None,
    ) -> None:
        if not fields:
            raise ValueError("a TSDB needs at least one value field")
        self.fields: Tuple[str, ...] = tuple(fields)
        self.chunk_size = chunk_size
        self.retention = retention
        self.predictors = predictors
        self._series: Dict[str, Series] = {}
        self._downsampled: Dict[str, DownsampledSeries] = {}

    # ------------------------------------------------------------------
    # Series management
    # ------------------------------------------------------------------
    def series(self, name: str) -> Series:
        """The named series, created on first use."""
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = Series(
                name, self.fields, chunk_size=self.chunk_size,
                predictors=self.predictors,
            )
        return series

    def get(self, name: str) -> Series:
        """The named series; raises :class:`TsdbError` if absent."""
        try:
            return self._series[name]
        except KeyError:
            raise TsdbError(f"no series {name!r}") from None

    def labels(self) -> List[str]:
        """Series names in creation order."""
        return list(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def __len__(self) -> int:
        return len(self._series)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, name: str, t: float, values: Sequence[float]) -> None:
        """Append one sample and enforce retention against clock ``t``."""
        self.series(name).append(t, values)
        if self.retention is not None:
            self.enforce_retention(now=t)

    def flush(self) -> None:
        """Seal every series' head chunk (storage audits, snapshots)."""
        for series in self._series.values():
            series.flush()

    def enforce_retention(self, now: float) -> int:
        """Drop (downsampling first, if configured) aged-out chunks.

        Returns the number of raw samples dropped.  Cheap when nothing
        is old enough: one float compare per series.
        """
        if self.retention is None:
            return 0
        horizon = now - self.retention.max_age_s
        window = self.retention.downsample_window_s
        dropped = 0
        for name, series in self._series.items():
            if not series.chunks or series.chunks[0].max_time >= horizon:
                continue
            for chunk in series.drop_chunks_before(horizon):
                dropped += chunk.count
                if window is not None:
                    down = self._downsampled.get(name)
                    if down is None:
                        down = self._downsampled[name] = DownsampledSeries(
                            self.fields, window
                        )
                    down.absorb(chunk, predictors=self.predictors)
        return dropped

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range(
        self,
        name: str,
        t_start: Optional[float] = None,
        t_end: Optional[float] = None,
        fields: Optional[Sequence[str]] = None,
    ) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """Range scan over raw (non-downsampled) samples."""
        return self.get(name).arrays(fields, t_start, t_end)

    def latest(self, name: str) -> Optional[Tuple[float, Tuple[float, ...]]]:
        return self.get(name).latest()

    def aggregate(
        self,
        name: str,
        field: str,
        window: float,
        agg: str = "mean",
        t_start: Optional[float] = None,
        t_end: Optional[float] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Windowed aggregate over the raw samples of one field."""
        times, values = self.get(name).arrays([field], t_start, t_end)
        return window_aggregate(times, values[field], window, agg)

    def downsampled(self, name: str) -> Optional[DownsampledSeries]:
        """The coarse history retention has preserved (None if none yet)."""
        return self._downsampled.get(name)

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def series_stats(self, name: str) -> SeriesStats:
        series = self.get(name)
        down = self._downsampled.get(name)
        return SeriesStats(
            series=1,
            samples=len(series),
            samples_dropped=series.samples_dropped,
            chunks=len(series.chunks),
            head_samples=len(series.head),
            nbytes=series.nbytes + (down.nbytes if down else 0),
            raw_nbytes=series.raw_nbytes,
            downsampled_windows=len(down) if down else 0,
        )

    def stats(self) -> SeriesStats:
        """Whole-database storage accounting."""
        parts = [self.series_stats(name) for name in self._series]
        return SeriesStats(
            series=len(parts),
            samples=sum(p.samples for p in parts),
            samples_dropped=sum(p.samples_dropped for p in parts),
            chunks=sum(p.chunks for p in parts),
            head_samples=sum(p.head_samples for p in parts),
            nbytes=sum(p.nbytes for p in parts),
            raw_nbytes=sum(p.raw_nbytes for p in parts),
            downsampled_windows=sum(p.downsampled_windows for p in parts),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        s = self.stats()
        return (
            f"<TSDB series={s.series} samples={s.samples} "
            f"{s.nbytes}B ({s.compression_ratio:.1f}x)>"
        )
