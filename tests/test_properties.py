"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.address import IPv4Address, MacAddress
from repro.simnet.packet import (
    IPV4_HEADER_SIZE,
    IPPacket,
    ReassemblyBuffer,
    UDPDatagram,
    fragment_ip_packet,
)
from repro.simnet.trafficgen import StepSchedule
from repro.snmp import ber
from repro.snmp.datatypes import Counter32, TimeTicks, decode_value
from repro.snmp.message import VERSION_2C, Message
from repro.snmp.oid import Oid
from repro.snmp.pdu import Pdu, VarBind
from repro.spec.parser import parse_spec
from repro.spec.writer import write_spec
from repro.topology.model import (
    ConnectionSpec,
    DeviceKind,
    InterfaceRef,
    InterfaceSpec,
    NodeSpec,
    TopologySpec,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
oids = st.lists(
    st.integers(min_value=0, max_value=2**21), min_size=2, max_size=12
).map(lambda arcs: Oid([1, min(arcs[0], 39)] + arcs[1:]))

signed_ints = st.integers(min_value=-(2**63), max_value=2**63 - 1)
counters = st.integers(min_value=0, max_value=2**32 - 1)


class TestBerProperties:
    @given(signed_ints)
    def test_integer_roundtrip(self, value):
        assert ber.decode_integer_content(ber.encode_integer_content(value)) == value

    @given(counters)
    def test_unsigned_roundtrip(self, value):
        content = ber.encode_unsigned_content(value, 32)
        assert ber.decode_unsigned_content(content, 32) == value

    @given(oids)
    def test_oid_roundtrip(self, oid):
        assert ber.decode_oid_content(ber.encode_oid_content(oid)) == oid

    @given(st.binary(max_size=300))
    def test_octet_string_roundtrip(self, data):
        encoded = ber.encode_octet_string(data)
        tag, content, end = ber.decode_tlv(encoded)
        assert content == data and end == len(encoded)

    @given(st.integers(min_value=0, max_value=2**24))
    def test_length_roundtrip(self, length):
        encoded = ber.encode_length(length)
        decoded, offset = ber.decode_length(encoded, 0)
        assert decoded == length and offset == len(encoded)

    @given(st.binary(max_size=64))
    def test_decoder_never_crashes_on_garbage(self, data):
        """Malformed input raises BerError, never anything else."""
        try:
            Message.decode(data)
        except ber.BerError:
            pass


class TestOidProperties:
    @given(oids, oids)
    def test_ordering_consistent_with_ber_bytes_for_prefix(self, a, b):
        """OID ordering is total and antisymmetric."""
        assert (a < b) or (b < a) or (a == b)
        if a < b:
            assert not b < a

    @given(oids, st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=4))
    def test_extension_sorts_after_prefix(self, oid, extra):
        extended = oid.extend(*extra)
        assert oid < extended
        assert extended.startswith(oid)

    @given(oids)
    def test_str_roundtrip(self, oid):
        assert Oid(str(oid)) == oid


class TestCounterProperties:
    @given(counters, st.integers(min_value=0, max_value=2**31))
    def test_delta_recovers_increment(self, start, increment):
        """new.delta(old) == increment regardless of wrapping."""
        old = Counter32(start)
        new = Counter32((start + increment) % (1 << 32))
        assert new.delta(old) == increment

    @given(
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        st.floats(min_value=0, max_value=1e5, allow_nan=False),
    )
    def test_timeticks_delta_seconds(self, start, gap):
        t1 = TimeTicks.from_seconds(start)
        t2 = TimeTicks.from_seconds(start + gap)
        # TimeTicks quantise to 1/100 s.
        assert abs(t2.delta_seconds(t1) - gap) <= 0.011


class TestPduProperties:
    @given(
        st.integers(min_value=0, max_value=2**30),
        st.lists(oids, min_size=1, max_size=8),
    )
    def test_get_request_roundtrip(self, request_id, oid_list):
        pdu = Pdu.get_request(request_id, oid_list)
        message = Message(VERSION_2C, "public", pdu)
        decoded = Message.decode(message.encode())
        assert decoded.pdu.request_id == request_id
        assert [vb.oid for vb in decoded.pdu.varbinds] == oid_list

    @given(st.lists(st.tuples(oids, counters), min_size=1, max_size=6))
    def test_response_roundtrip(self, pairs):
        varbinds = [VarBind(oid, Counter32(v)) for oid, v in pairs]
        pdu = Pdu(ber.TAG_GET_RESPONSE, 1, varbinds=varbinds)
        decoded, _ = Pdu.decode(pdu.encode())
        assert decoded.varbinds == varbinds


class TestFragmentationProperties:
    @given(
        st.integers(min_value=0, max_value=20000),
        st.integers(min_value=IPV4_HEADER_SIZE + 16, max_value=1500),
    )
    def test_fragments_conserve_bytes_and_fit_mtu(self, payload, mtu):
        packet = IPPacket(
            src=IPv4Address("10.0.0.1"),
            dst=IPv4Address("10.0.0.2"),
            payload=UDPDatagram(1, 2, payload_size=payload),
        )
        frags = fragment_ip_packet(packet, mtu)
        assert all(f.size <= mtu for f in frags)
        assert sum(f.transport_size for f in frags) == packet.transport_size

    @given(
        st.integers(min_value=0, max_value=20000),
        st.integers(min_value=IPV4_HEADER_SIZE + 16, max_value=1500),
        st.randoms(use_true_random=False),
    )
    def test_reassembly_in_any_order(self, payload, mtu, rng):
        packet = IPPacket(
            src=IPv4Address("10.0.0.1"),
            dst=IPv4Address("10.0.0.2"),
            payload=UDPDatagram(1, 2, payload_size=payload),
        )
        frags = fragment_ip_packet(packet, mtu)
        rng.shuffle(frags)
        buf = ReassemblyBuffer()
        results = [buf.add(f, now=0.0) for f in frags]
        final = [r for r in results if r is not None]
        assert len(final) == 1
        assert final[0].payload is packet.payload


class TestScheduleProperties:
    schedules = st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1000, allow_nan=False),
            st.floats(min_value=0, max_value=1e6, allow_nan=False),
        ),
        min_size=1,
        max_size=10,
        unique_by=lambda p: p[0],
    ).map(lambda pairs: StepSchedule(sorted(pairs)))

    @given(schedules, st.floats(min_value=-10, max_value=1100, allow_nan=False))
    def test_rate_matches_defining_step(self, schedule, t):
        rate = schedule.rate_at(t)
        active = [s for s in schedule.steps if s.time <= t]
        if not active:
            assert rate == 0.0
        else:
            assert rate == active[-1].rate_bps

    @given(schedules)
    def test_rate_nonnegative_everywhere(self, schedule):
        for t in [0.0, 1.0, 500.0, 999.0, 1500.0]:
            assert schedule.rate_at(t) >= 0.0


names = st.text(alphabet="abcdefgh", min_size=1, max_size=6)


class TestSpecWriterProperties:
    @settings(max_examples=40)
    @given(
        st.lists(names, min_size=2, max_size=6, unique=True),
        st.integers(min_value=2, max_value=8),
    )
    def test_star_topology_roundtrip(self, host_names, n_ports):
        """write_spec(parse(s)) re-parses to an equivalent topology."""
        hosts = [
            NodeSpec(name, interfaces=[InterfaceSpec("eth0")], snmp_enabled=True)
            for name in host_names
        ]
        n_ports = max(n_ports, len(host_names))
        switch = NodeSpec(
            "zwitch",
            kind=DeviceKind.SWITCH,
            interfaces=[InterfaceSpec(f"port{i+1}") for i in range(n_ports)],
            snmp_enabled=True,
        )
        connections = [
            ConnectionSpec(
                InterfaceRef(h.name, "eth0"), InterfaceRef("zwitch", f"port{i+1}")
            )
            for i, h in enumerate(hosts)
        ]
        spec = TopologySpec("prop", hosts + [switch], connections)
        again = parse_spec(write_spec(spec))
        assert [n.name for n in again.nodes] == [n.name for n in spec.nodes]
        assert len(again.connections) == len(spec.connections)
        for conn_a, conn_b in zip(again.connections, spec.connections):
            assert conn_a.end_a == conn_b.end_a
            assert conn_a.end_b == conn_b.end_b


class TestLexerProperties:
    identifiers = st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_-]{0,15}", fullmatch=True)
    safe_strings = st.text(
        alphabet=st.characters(
            codec="ascii", exclude_characters='"\\\n\r', exclude_categories=("Cc",)
        ),
        max_size=30,
    )

    @given(st.lists(identifiers, min_size=1, max_size=10))
    def test_identifier_stream_roundtrip(self, names):
        from repro.spec.lexer import TokenType, tokenize

        tokens = tokenize(" ".join(names))
        values = [t.value for t in tokens if t.type is TokenType.IDENT]
        assert values == names

    @given(safe_strings)
    def test_string_literal_roundtrip(self, text):
        from repro.spec.lexer import TokenType, tokenize

        tokens = tokenize(f'"{text}"')
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == text

    @given(st.text(max_size=60))
    def test_lexer_never_crashes_unexpectedly(self, text):
        from repro.spec.lexer import LexError, tokenize

        try:
            tokenize(text)
        except LexError:
            pass  # the only sanctioned failure mode

    @given(st.integers(min_value=0, max_value=10**12))
    def test_integer_literal_roundtrip(self, value):
        from repro.spec.lexer import tokenize

        assert tokenize(str(value))[0].value == value


class TestTsdbCodecProperties:
    """The storage codecs must be bit-exact on *any* stream (satellite 3)."""

    # Finite, NaN and infinite float64 values, including signed zeros,
    # denormals and arbitrary NaN payloads (nothing is canonicalised).
    any_float = st.floats(width=64, allow_nan=True, allow_infinity=True)
    finite_float = st.floats(width=64, allow_nan=False, allow_infinity=False)

    # Monotonic non-negative times: cumulative sums of non-negative gaps,
    # mixing grid-aligned (exactly representable in µs ticks) and
    # arbitrary-precision gaps so both codec paths are exercised.
    gaps = st.one_of(
        st.integers(min_value=0, max_value=10**7).map(lambda n: n / 1e6),
        st.floats(min_value=0, max_value=1e4, allow_nan=False),
    )
    times = st.lists(gaps, min_size=1, max_size=60).map(
        lambda gs: [sum(gs[: i + 1]) for i in range(len(gs))]
    )

    @staticmethod
    def _bits_equal(decoded, original):
        import numpy as np

        original = np.asarray(original, dtype=np.float64)
        return bool(
            np.all(decoded.view(np.uint64) == original.view(np.uint64))
        )

    @given(times)
    def test_timestamp_roundtrip_monotonic(self, ts):
        from repro.tsdb import decode_timestamps, encode_timestamps

        decoded = decode_timestamps(encode_timestamps(ts), len(ts))
        assert self._bits_equal(decoded, ts)

    @given(st.lists(any_float, min_size=1, max_size=80))
    def test_value_roundtrip_any_floats(self, values):
        """NaN payloads, infinities, -0.0, denormals: all bit-exact."""
        from repro.tsdb import decode_column, encode_column

        decoded = decode_column(encode_column(values), len(values))
        assert self._bits_equal(decoded, values)

    @given(st.floats(allow_nan=False, allow_infinity=False),
           st.integers(min_value=1, max_value=200))
    def test_constant_stream_roundtrip_and_size(self, value, n):
        from repro.tsdb import decode_column, encode_column

        values = [value] * n
        data = encode_column(values)
        assert self._bits_equal(decode_column(data, n), values)
        # First sample is 64 bits; each repeat costs exactly one bit.
        assert len(data) <= (64 + (n - 1)) // 8 + 1

    @given(st.lists(st.floats(min_value=0, max_value=5e-308,
                              allow_nan=False), min_size=1, max_size=50))
    def test_denormal_stream_roundtrip(self, values):
        from repro.tsdb import decode_column, encode_column

        decoded = decode_column(encode_column(values), len(values))
        assert self._bits_equal(decoded, values)

    @given(st.lists(st.tuples(any_float, any_float), min_size=1, max_size=50))
    def test_predicted_roundtrip_any_predictions(self, pairs):
        """Predictive XOR is lossless no matter how wrong the model is."""
        from repro.tsdb import decode_column, encode_column

        values = [v for v, _ in pairs]
        predictions = [p for _, p in pairs]
        data = encode_column(values, predictions=predictions)
        decoded = decode_column(data, len(values), predictions=predictions)
        assert self._bits_equal(decoded, values)

    @settings(max_examples=40)
    @given(times, st.data())
    def test_series_roundtrip_through_chunks(self, ts, data):
        """Whole pipeline: append -> seal -> decode is the identity."""
        import numpy as np

        from repro.tsdb import Series

        values = data.draw(
            st.lists(self.any_float, min_size=len(ts), max_size=len(ts))
        )
        series = Series("prop", ("v",), chunk_size=8)
        for t, v in zip(ts, values):
            series.append(t, (v,))
        series.flush()
        decoded_t, decoded_v = series.arrays()
        assert self._bits_equal(decoded_t, ts)
        assert self._bits_equal(decoded_v["v"], values)


class TestAddressProperties:
    @given(st.integers(min_value=0, max_value=2**48 - 1))
    def test_mac_str_roundtrip(self, value):
        mac = MacAddress(value)
        assert MacAddress(str(mac)) == mac

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_ip_str_roundtrip(self, value):
        ip = IPv4Address(value)
        assert IPv4Address(str(ip)) == ip

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=32),
    )
    def test_address_in_own_subnet(self, value, prefix):
        ip = IPv4Address(value)
        assert ip.in_subnet(ip, prefix)
