"""The telemetry hub: one registry + tracer + event bus per monitor.

Every instrumented component (SNMP manager, poller, bandwidth
calculator, middleware, faults) takes a :class:`Telemetry` and talks to
its three members.  The monitor creates one enabled hub and threads it
through; components built standalone (unit tests, ad-hoc scripts) get a
private *disabled* hub, which keeps the counters working -- they are the
component's bookkeeping now -- while skipping the optional costs:
histogram updates and span records no-op.  Events stay on either way;
they fire on rare transitions, not per packet.

``enabled`` is the single overhead switch the benchmark guard flips to
prove instrumentation stays under its budget.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.telemetry.events import EventBus
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import Tracer


class Telemetry:
    """Bundle of registry, tracer, and event bus sharing one clock."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        enabled: bool = True,
        span_capacity: int = 512,
        slow_threshold: Optional[float] = None,
        event_capacity: int = 1024,
    ) -> None:
        self.clock = clock if clock is not None else lambda: 0.0
        self.enabled = enabled
        self.registry = MetricsRegistry()
        self.tracer = Tracer(
            self.clock,
            capacity=span_capacity,
            slow_threshold=slow_threshold,
            enabled=enabled,
        )
        self.events = EventBus(capacity=event_capacity)

    @classmethod
    def disabled(cls, clock: Optional[Callable[[], float]] = None) -> "Telemetry":
        """A hub whose counters count but whose extras no-op."""
        return cls(clock=clock, enabled=False)

    def enable(self) -> None:
        self.enabled = True
        self.tracer.enabled = True

    def disable(self) -> None:
        self.enabled = False
        self.tracer.enabled = False
