"""Storage-engine guards: compression ratio and append overhead.

Two promises the tsdb-backed history makes over the seed's list-append
implementation, enforced here so regressions fail CI:

- sealed chunks compress the Figure-4 measurement stream at least 4x
  versus raw float64 columns, decoding bit-identically;
- routing every report through compressed storage costs less than 10 %
  extra wall time on the full Figure-4 run compared with an inline
  legacy list-append history.

Plain ``perf_counter`` best-of-rounds, same as the telemetry guard, so
stock pytest runs this file.
"""

import time

import numpy as np

from repro.core.history import HISTORY_FIELDS, HISTORY_PREDICTORS, _report_row
from repro.experiments import fig4
from repro.experiments.scenarios import Scenario
from repro.tsdb import Series

ROUNDS = 3
MIN_COMPRESSION_RATIO = 4.0
MAX_APPEND_OVERHEAD_RATIO = 1.10


def _best_of(fn, rounds=ROUNDS):
    """Minimum wall time over ``rounds`` runs (noise-robust estimator)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ----------------------------------------------------------------------
# The seed's history: plain Python lists, no compression, no retention.
# ----------------------------------------------------------------------
class _LegacyPathSeries:
    def __init__(self, label):
        self.label = label
        self.reports = []

    def append(self, report):
        if self.reports and report.time < self.reports[-1].time:
            raise ValueError(f"out-of-order report for {self.label}")
        self.reports.append(report)

    def __len__(self):
        return len(self.reports)

    def times(self):
        return np.array([r.time for r in self.reports], dtype=float)

    def used(self):
        return np.array([r.used_bps for r in self.reports], dtype=float)

    def available(self):
        return np.array([r.available_bps for r in self.reports], dtype=float)

    def latest(self):
        return self.reports[-1] if self.reports else None


class _LegacyHistory:
    dropped_samples = 0

    def __init__(self):
        self._series = {}

    def append(self, report):
        series = self._series.get(report.label)
        if series is None:
            series = self._series[report.label] = _LegacyPathSeries(report.label)
        series.append(report)

    def series(self, label):
        return self._series[label]

    def labels(self):
        return sorted(self._series)


def _fig4_run(legacy: bool):
    """The Figure-4 scenario with either history implementation."""
    scenario = Scenario(poll_interval=2.0, seed=0, telemetry=False)
    if legacy:
        scenario.monitor.history = _LegacyHistory()
    label = scenario.watch(fig4.PATH_SRC, fig4.PATH_DST)
    scenario.add_load(fig4.LOAD_SRC, fig4.LOAD_DST, fig4.LOAD_SCHEDULE)
    scenario.run(fig4.RUN_UNTIL)
    return scenario, label


def test_bench_compression_at_least_4x_on_fig4_stream(fig4_result):
    """Replaying the Figure-4 reports seals at >= 4x, bit-identically."""
    series = fig4_result.scenario.monitor.history.series(fig4_result.pair.label)
    replay = Series(
        "fig4-replay", HISTORY_FIELDS, chunk_size=64,
        predictors=HISTORY_PREDICTORS,
    )
    for report in series.reports:
        replay.append(report.time, _report_row(report))
    replay.flush()  # seal the tail so the ratio reflects compression only
    ratio = replay.raw_nbytes / replay.nbytes
    print(
        f"\nfig4 stream: {len(replay)} samples, raw {replay.raw_nbytes} B, "
        f"compressed {replay.nbytes} B, ratio {ratio:.2f}x "
        f"(floor {MIN_COMPRESSION_RATIO:.1f}x)"
    )
    assert ratio >= MIN_COMPRESSION_RATIO, (
        f"compression {ratio:.2f}x fell below the "
        f"{MIN_COMPRESSION_RATIO:.1f}x floor"
    )
    # Losslessness is what makes the ratio meaningful.
    times, columns = replay.arrays()
    np.testing.assert_array_equal(
        times.view(np.uint64), series.times().view(np.uint64)
    )
    np.testing.assert_array_equal(
        columns["used_bps"].view(np.uint64), series.used().view(np.uint64)
    )
    np.testing.assert_array_equal(
        columns["available_bps"].view(np.uint64),
        series.available().view(np.uint64),
    )


def test_bench_append_overhead_under_ten_percent():
    """Compressed history must not slow the monitor's real workload."""
    # Warm-up runs double as the correctness check: the storage engine
    # must observe, never perturb -- identical measured series.
    legacy_scenario, label = _fig4_run(legacy=True)
    tsdb_scenario, _ = _fig4_run(legacy=False)
    np.testing.assert_array_equal(
        legacy_scenario.monitor.history.series(label).used(),
        tsdb_scenario.monitor.history.series(label).used(),
    )

    legacy = _best_of(lambda: _fig4_run(legacy=True))
    compressed = _best_of(lambda: _fig4_run(legacy=False))
    ratio = compressed / legacy
    print(
        f"\nfig4 wall time: legacy history {legacy:.3f}s, tsdb history "
        f"{compressed:.3f}s, ratio {ratio:.3f} "
        f"(budget {MAX_APPEND_OVERHEAD_RATIO:.2f})"
    )
    assert ratio <= MAX_APPEND_OVERHEAD_RATIO, (
        f"tsdb append overhead {ratio:.3f}x exceeds the "
        f"{MAX_APPEND_OVERHEAD_RATIO:.2f}x budget"
    )
