"""Tests for acknowledged notifications (InformRequest)."""

import pytest

from repro.simnet.faults import LinkFailure
from repro.simnet.network import Network
from repro.snmp.datatypes import Integer, TimeTicks
from repro.snmp.pdu import Pdu, VarBind
from repro.snmp.trap import (
    TRAP_LINK_DOWN,
    InformSender,
    TrapReceiver,
    build_trap_pdu,
)
from repro.snmp.mib import IF_INDEX


def inform_net():
    net = Network()
    sender_host = net.add_host("S")
    receiver_host = net.add_host("R")
    sw = net.add_switch("sw", 4, managed=False)
    net.connect(sender_host, sw)
    net.connect(receiver_host, sw)
    net.announce_hosts()
    events = []
    receiver = TrapReceiver(receiver_host, callback=events.append)
    sender = InformSender(sender_host, receiver_host.primary_ip, timeout=1.0)
    return net, sender_host, receiver_host, sender, receiver, events


def link_down_inform(if_index=2):
    return build_trap_pdu(
        TimeTicks(100),
        TRAP_LINK_DOWN,
        [VarBind(IF_INDEX + str(if_index), Integer(if_index))],
        confirmed=True,
    )


class TestInformDelivery:
    def test_delivered_and_acked(self):
        net, s, r, sender, receiver, events = inform_net()
        sender.send(link_down_inform())
        net.run(2.0)
        assert len(events) == 1
        assert events[0].is_link_down
        assert sender.acked == 1
        assert sender.outstanding == 0
        assert sender.retransmissions == 0

    def test_survives_outage_and_delivers_after(self):
        """The paper-era trap failure, fixed: the notification about a
        dead link arrives once the link comes back."""
        net, s, r, sender, receiver, events = inform_net()
        link = s.interfaces[0].link
        LinkFailure(net.sim, link, at=0.5, until=6.0)
        net.run(1.0)  # link is down now
        sender.send(link_down_inform())
        net.run(5.0)
        assert events == []  # nothing could cross the dead link
        assert sender.retransmissions >= 2
        net.run(10.0)  # link restored at t=6; retries get through
        assert len(events) == 1
        assert sender.acked == 1

    def test_duplicates_deduplicated(self):
        """A lost ack causes retransmission; the receiver acks again but
        reports the event once."""
        net, s, r, sender, receiver, events = inform_net()
        # Drop the first ack by breaking the reverse path briefly: down
        # the receiver's NIC just after delivery.
        from repro.simnet.faults import PacketLoss

        loss = PacketLoss(r.interfaces[0].link, loss_rate=1.0, seed=1)
        sender.send(link_down_inform())
        net.run(0.5)
        loss.loss_rate = 0.0  # heal: next retry succeeds fully
        net.run(5.0)
        assert len(events) <= 1
        assert sender.acked <= 1

    def test_abandons_after_max_attempts(self):
        net, s, r, sender, receiver, events = inform_net()
        sender.max_attempts = 3
        LinkFailure(net.sim, s.interfaces[0].link, at=0.1)  # permanent
        net.run(0.5)
        sender.send(link_down_inform())
        net.run(30.0)
        assert sender.abandoned == 1
        assert sender.outstanding == 0
        assert events == []

    def test_rejects_non_inform_pdus(self):
        net, s, r, sender, receiver, events = inform_net()
        trap = build_trap_pdu(TimeTicks(1), TRAP_LINK_DOWN, confirmed=False)
        with pytest.raises(ValueError):
            sender.send(trap)

    def test_receiver_counts_acks(self):
        net, s, r, sender, receiver, events = inform_net()
        sender.send(link_down_inform(2))
        sender.send(link_down_inform(3))
        net.run(3.0)
        assert receiver.informs_acked == 2
        assert len(events) == 2

    def test_monitor_confirmed_mode_survives_own_link_death(self):
        """S1's linkDown inform arrives after the restore; the registry
        must record the history yet end in the UP state (stale-event
        ordering by notification uptime)."""
        from repro.core.monitor import NetworkMonitor
        from repro.experiments.testbed import build_testbed

        build = build_testbed()
        monitor = NetworkMonitor(build, "L", poll_jitter=0.0)
        monitor.watch_path("S1", "N1")
        registry = monitor.enable_trap_listener(confirmed=True)
        net = build.network
        LinkFailure(net.sim, net.host("S1").interfaces[0].link, at=10.0, until=20.0)
        monitor.start()
        net.run(12.0)
        assert len(registry.down_connections()) == 1  # switch-side inform
        net.run(45.0)
        # All four notifications eventually arrived (2 from the switch
        # live, 2 from S1 delivered after restore)...
        assert len(monitor.trap_receiver.events) == 4
        # ...the out-of-order linkDown retransmissions were discarded...
        assert registry.events_stale >= 1
        # ...and the final state is healthy.
        assert registry.down_connections() == []

    def test_monitor_confirmed_flag_idempotent(self):
        from repro.core.monitor import NetworkMonitor
        from repro.experiments.testbed import build_testbed

        build = build_testbed()
        monitor = NetworkMonitor(build, "L")
        registry = monitor.enable_trap_listener(confirmed=True)
        assert monitor.enable_trap_listener() is registry

    def test_plain_traps_still_work_alongside(self):
        net, s, r, sender, receiver, events = inform_net()
        from repro.snmp.message import VERSION_2C, Message

        trap = build_trap_pdu(TimeTicks(5), TRAP_LINK_DOWN, confirmed=False)
        s.create_socket().sendto(
            Message(VERSION_2C, "public", trap).encode(), (r.primary_ip, 162)
        )
        net.run(2.0)
        assert len(events) == 1
        assert receiver.informs_acked == 0
