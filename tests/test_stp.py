"""Spanning-tree protocol tests: loop safety and redundant-uplink failover.

Redundant uplinks make the layer-2 graph cyclic; :mod:`repro.simnet.stp`
must (a) block exactly enough ports to cut every loop, (b) never let a
broadcast circulate -- not even transiently during (re)convergence --
and (c) re-converge onto the backup uplink in bounded sim-time when the
active one dies.
"""

import pytest

from repro.simnet.faults import FaultError, Flap, LinkFailure, NetworkPartition, find_link
from repro.simnet.stp import (
    Bpdu,
    ROLE_ALTERNATE,
    ROLE_DESIGNATED,
    ROLE_ROOT,
    STATE_BLOCKING,
    STATE_FORWARDING,
    port_cost,
)
from repro.simnet.trafficgen import KBPS, StaircaseLoad, StepSchedule
from repro.spec.builder import build_network
from repro.spec.parser import parse_spec
from repro.spec.validate import validate_spec

REDUNDANT_PAIR = """
network topology redundant {
    host A { snmp community "public"; }
    host B { snmp community "public"; }
    switch sw1 { snmp community "public"; ports 4; stp "on"; }
    switch sw2 { snmp community "public"; ports 4; stp "on"; }
    connect A.eth0 <-> sw1.port1;
    connect B.eth0 <-> sw2.port1;
    connect sw1.port3 <-> sw2.port3;
    connect sw1.port4 <-> sw2.port4;
}
"""

TRIANGLE = """
network topology triangle {
    host A { snmp community "public"; }
    host B { snmp community "public"; }
    host C { snmp community "public"; }
    switch sw1 { snmp community "public"; ports 4; stp "on"; }
    switch sw2 { snmp community "public"; ports 4; stp "on"; }
    switch sw3 { snmp community "public"; ports 4; stp "on"; }
    connect A.eth0 <-> sw1.port1;
    connect B.eth0 <-> sw2.port1;
    connect C.eth0 <-> sw3.port1;
    connect sw1.port2 <-> sw2.port2;
    connect sw2.port3 <-> sw3.port2;
    connect sw3.port3 <-> sw1.port3;
}
"""


def states_of(switch):
    return {idx: (role, state) for idx, role, state in switch.stp.port_table()}


class TestBpduWire:
    def test_encode_decode_roundtrip(self):
        bpdu = Bpdu(0x8000, "sw1", 20, 0x8000, "sw2", 3, tc_hops=5)
        again = Bpdu.decode(bpdu.encode())
        assert again is not None
        assert again.vector() == bpdu.vector()
        assert again.tc_hops == 5

    def test_decode_rejects_garbage(self):
        assert Bpdu.decode(b"not a bpdu") is None
        assert Bpdu.decode(b"BPDU|x|y") is None
        assert Bpdu.decode(b"\xff\xfe") is None

    def test_port_cost_follows_speed(self):
        assert port_cost(100e6) == 20
        assert port_cost(10e6) == 200
        assert port_cost(1e9) == 2
        assert port_cost(0) == 65535


class TestRedundantPair:
    def build(self):
        return build_network(parse_spec(REDUNDANT_PAIR))

    def test_validator_allows_stp_loop(self):
        issues = validate_spec(parse_spec(REDUNDANT_PAIR))
        assert not any("loop" in str(i) for i in issues)

    def test_validator_flags_loop_without_stp(self):
        text = REDUNDANT_PAIR.replace('ports 4; stp "on";', "ports 4;", 1)
        issues = validate_spec(parse_spec(text))
        loops = [i for i in issues if "loop" in str(i)]
        assert len(loops) == 1
        assert loops[0].severity == "warning"
        assert "sw1" in str(loops[0])

    def test_one_uplink_blocks(self):
        build = self.build()
        net = build.network
        net.run(3.0)
        sw1, sw2 = net.switches["sw1"], net.switches["sw2"]
        # sw1 < sw2 lexicographically at equal priority: sw1 is the root
        # and both its uplink ports are designated-forwarding.
        assert sw1.stp.is_root and not sw2.stp.is_root
        assert sw2.stp.root == "sw1"
        s1, s2 = states_of(sw1), states_of(sw2)
        assert s1[3] == (ROLE_DESIGNATED, STATE_FORWARDING)
        assert s1[4] == (ROLE_DESIGNATED, STATE_FORWARDING)
        # sw2 keeps the lower-indexed uplink (tie-break) and blocks the other.
        assert s2[3] == (ROLE_ROOT, STATE_FORWARDING)
        assert s2[4] == (ROLE_ALTERNATE, STATE_BLOCKING)
        # Host-facing ports are edge ports: designated-forwarding.
        assert s1[1] == (ROLE_DESIGNATED, STATE_FORWARDING)
        assert s2[1] == (ROLE_DESIGNATED, STATE_FORWARDING)

    def test_no_broadcast_storm(self):
        build = self.build()
        net = build.network
        net.host("A").create_socket().sendto(64, (net.broadcast_ip, 520))
        net.run(10.0)
        for sw in net.switches.values():
            assert sw.frames_dropped_hops == 0

    def test_traffic_crosses_active_uplink(self):
        build = self.build()
        net = build.network
        StaircaseLoad(
            net.host("A"), net.ip_of("B"), StepSchedule.pulse(2.0, 8.0, 200 * KBPS)
        ).start()
        net.run(10.0)
        assert net.host("B").discard.octets > 100_000

    def test_failover_to_backup_uplink(self):
        build = self.build()
        net = build.network
        LinkFailure.between(net, "sw1", "sw2", at=5.0, index=0)
        StaircaseLoad(
            net.host("A"), net.ip_of("B"), StepSchedule.pulse(2.0, 18.0, 200 * KBPS)
        ).start()
        net.run(8.0)
        at_8 = net.host("B").discard.octets
        net.run(20.0)
        sw2 = net.switches["sw2"]
        s2 = states_of(sw2)
        assert s2[3][0] == "disabled"
        assert s2[4] == (ROLE_ROOT, STATE_FORWARDING)
        # Traffic kept flowing over the backup after the failure.
        assert net.host("B").discard.octets > at_8 + 100_000
        for sw in net.switches.values():
            assert sw.frames_dropped_hops == 0

    def test_failover_is_bounded(self):
        """Local link-down re-converges within forward_delay, not max_age."""
        build = self.build()
        net = build.network
        net.run(4.0)
        LinkFailure.between(net, "sw1", "sw2", at=4.0, index=0)
        net.run(4.0 + 0.6)  # forward_delay is 0.5s
        assert states_of(net.switches["sw2"])[4] == (ROLE_ROOT, STATE_FORWARDING)

    def test_remote_failure_detected_by_max_age(self):
        """A grey failure (no link-down event) still fails over via timers."""
        build = self.build()
        net = build.network
        net.run(4.0)
        active = find_link(net, "sw1", "sw2", index=0)
        NetworkPartition(net.sim, [active], at=4.0, until=60.0)
        # max_age (3 hellos) + hello tick + forward_delay, plus slack.
        net.run(4.0 + 3.0 + 1.0 + 0.5 + 0.6)
        assert states_of(net.switches["sw2"])[4] == (ROLE_ROOT, STATE_FORWARDING)

    def test_restored_uplink_reblocks_without_storm(self):
        build = self.build()
        net = build.network
        LinkFailure.between(net, "sw1", "sw2", at=5.0, until=9.0, index=0)
        net.host("A").create_socket().sendto(64, (net.broadcast_ip, 520))
        net.run(20.0)
        s2 = states_of(net.switches["sw2"])
        # port3 wins the tie-break again once restored; port4 re-blocks.
        assert s2[3] == (ROLE_ROOT, STATE_FORWARDING)
        assert s2[4] == (ROLE_ALTERNATE, STATE_BLOCKING)
        for sw in net.switches.values():
            assert sw.frames_dropped_hops == 0

    def test_flap_between_never_storms(self):
        build = self.build()
        net = build.network
        Flap.between(net, "sw1", "sw2", at=3.0, down_for=1.0, up_for=2.0,
                     until=15.0, index=0)
        net.host("A").create_socket().sendto(64, (net.broadcast_ip, 520))
        net.run(20.0)
        for sw in net.switches.values():
            assert sw.frames_dropped_hops == 0

    def test_find_link_unknown_pair_raises(self):
        build = self.build()
        with pytest.raises(FaultError):
            find_link(build.network, "sw1", "nope")
        with pytest.raises(FaultError):
            find_link(build.network, "sw1", "sw2", index=7)

    def test_stp_stats(self):
        build = self.build()
        net = build.network
        net.run(5.0)
        stats = net.switches["sw2"].stp.stats()
        assert stats["bpdus_sent"] > 0
        assert stats["bpdus_received"] > 0
        assert stats["blocked_ports"] == 1

    def test_port_state_values_follow_rfc1493(self):
        build = self.build()
        net = build.network
        net.run(3.0)
        sw2 = net.switches["sw2"]
        assert sw2.stp.port_state_value(3) == 5  # forwarding
        assert sw2.stp.port_state_value(4) == 2  # blocking
        assert sw2.stp.port_state_value(2) == 1  # unwired: disabled


class TestTriangle:
    def build(self):
        return build_network(parse_spec(TRIANGLE))

    def test_exactly_one_port_blocks(self):
        build = self.build()
        net = build.network
        net.run(3.0)
        blocked = sum(
            sw.stp.stats()["blocked_ports"] for sw in net.switches.values()
        )
        assert blocked == 1

    def test_all_pairs_connected(self):
        build = self.build()
        net = build.network
        for src, dst in (("A", "B"), ("B", "C"), ("C", "A")):
            StaircaseLoad(
                net.host(src), net.ip_of(dst),
                StepSchedule.pulse(2.0, 8.0, 100 * KBPS),
            ).start()
        net.run(10.0)
        for name in ("A", "B", "C"):
            assert net.host(name).discard.octets > 50_000
        for sw in net.switches.values():
            assert sw.frames_dropped_hops == 0

    def test_ring_heals_around_failed_segment(self):
        """Failing one ring segment re-converges via the other two."""
        build = self.build()
        net = build.network
        net.run(3.0)
        # sw1 is root; kill the sw1<->sw2 segment: sw2 must re-root via sw3.
        LinkFailure.between(net, "sw1", "sw2", at=3.0)
        StaircaseLoad(
            net.host("A"), net.ip_of("B"), StepSchedule.pulse(5.0, 18.0, 100 * KBPS)
        ).start()
        net.run(20.0)
        sw2 = net.switches["sw2"]
        assert sw2.stp.root == "sw1"
        s2 = states_of(sw2)
        assert s2[3] == (ROLE_ROOT, STATE_FORWARDING)  # via sw3 now
        assert net.host("B").discard.octets > 50_000
        for sw in net.switches.values():
            assert sw.frames_dropped_hops == 0
