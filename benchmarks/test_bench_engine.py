"""Ablation: raw substrate throughput.

Bounds for everything above: the event engine's dispatch rate and the
simulator's packet-forwarding rate determine how much simulated time a
given experiment costs in wall-clock.
"""

from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.sockets import DISCARD_PORT
from repro.simnet.trafficgen import StaircaseLoad, StepSchedule


def test_bench_engine_event_dispatch(benchmark):
    def run_events():
        sim = Simulator()
        counter = [0]

        def bump():
            counter[0] += 1

        for i in range(50_000):
            sim.schedule(i * 1e-6, bump)
        sim.run_until_idle()
        return counter[0]

    assert benchmark(run_events) == 50_000


def test_bench_switched_forwarding(benchmark):
    """Packets/second of wall-clock through host->switch->host."""

    def run_traffic():
        net = Network()
        a = net.add_host("A")
        b = net.add_host("B")
        sw = net.add_switch("sw", 4, managed=False)
        net.connect(a, sw)
        net.connect(b, sw)
        net.announce_hosts()
        StaircaseLoad(
            a, b.primary_ip, StepSchedule([(0.0, 2_000_000.0), (5.0, 0.0)]),
            payload_size=1472,
        ).start()
        net.run(6.0)
        return b.discard.datagrams

    datagrams = benchmark(run_traffic)
    assert datagrams > 6000


def test_bench_hub_repeating(benchmark):
    def run_traffic():
        net = Network()
        hosts = [net.add_host(f"H{i}") for i in range(4)]
        hub = net.add_hub("hub", 6, speed_bps=10e6)
        for h in hosts:
            net.connect(h, hub)
        net.announce_hosts()
        StaircaseLoad(
            hosts[0], hosts[1].primary_ip,
            StepSchedule([(0.0, 500_000.0), (5.0, 0.0)]),
        ).start()
        net.run(6.0)
        return hosts[1].discard.datagrams

    assert benchmark(run_traffic) > 1000
