"""The measurement-integrity pipeline: validate, cross-check, quarantine.

Sits between the SNMP poller and the bandwidth calculator:

::

    poller._ingest ──► pipeline.inspect ──┬─ admit ──► RateTable ──► calculator
                                          └─ reject (violation / quarantined)
                                                │
                                          trust scores ──► quarantine
                                                ▲
    report cycle  ──► pipeline.run_cross_checks ┘   (shadow samples)

``inspect`` runs the per-sample validators and decides admission; the
monitor calls ``run_cross_checks`` each report cycle to compare both
ends of every two-ended connection.  Rejected samples never reach the
``RateTable``, so the PR-1 staleness/confidence machinery degrades
dependent path reports exactly as if the data were missing -- bad data
and absent data share one code path downstream.

The pipeline also keeps a *shadow* copy of the latest sample per
interface, including withheld ones: the cross-checker reads the shadow
table so a quarantined liar keeps being observed (and keeps losing
trust) instead of vanishing from view and quietly recovering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.health import AgentHealthTracker
from repro.core.poller import InterfaceRates
from repro.integrity.crosscheck import CrossChecker, CrossPair
from repro.integrity.quarantine import QuarantineManager, TrustRecord
from repro.integrity.validators import (
    IntegrityVerdict,
    RateBoundValidator,
    SampleContext,
    Severity,
    SpeedValidator,
    StuckCounterValidator,
    WrapRiskValidator,
    wrap_period_seconds,
)
from repro.telemetry import Telemetry
from repro.telemetry.events import COUNTER_WRAP_RISK, CROSS_CHECK_MISMATCH, INTEGRITY_VIOLATION
from repro.telemetry.metrics import MetricsRegistry

Key = Tuple[str, int]


@dataclass(frozen=True)
class IntegrityConfig:
    """Knobs for the whole pipeline (defaults sized for the testbed).

    ``rate_tolerance`` must clear the legitimate cache-displacement
    overshoot (~25 % above line rate on single samples); 0.5 leaves a
    2x margin.  The trust dynamics put a freshly corrupted interface in
    quarantine within two violating polls (1.0 -> 0.5 -> 0.25 < 0.3)
    and require six clean polls to release it (0.25 + 6*0.1 >= 0.8).
    """

    rate_tolerance: float = 0.5
    stuck_after: int = 3
    stuck_decays_trust: bool = False
    speed_rel_tolerance: float = 0.01
    violation_decay: float = 0.5
    suspect_decay: float = 0.7
    recover_step: float = 0.1
    quarantine_below: float = 0.3
    release_above: float = 0.8
    cross_rel_tolerance: float = 0.35
    cross_abs_floor_bps: float = 4096.0
    cross_breach_count: int = 2
    offender_window_polls: float = 2.0  # recent-verdict window, in poll intervals


def register_integrity_metrics(registry: MetricsRegistry) -> Dict[str, object]:
    """Create (or fetch) the pipeline's metric families.

    Called by both the pipeline and the monitor so ``stats()`` keys
    resolve even when the pipeline is disabled.  The registry's
    get-or-create semantics make this idempotent.
    """
    return {
        "violations": registry.counter(
            "integrity_violations_total", "samples failing integrity validation"
        ),
        "violations_by_check": registry.counter(
            "integrity_violations_by_check_total",
            "integrity violations split by failing check",
            labelnames=("check",),
        ),
        "suspects": registry.counter(
            "integrity_suspect_samples_total",
            "samples flagged suspect (admitted but annotated)",
        ),
        "rejected": registry.counter(
            "integrity_samples_rejected_total",
            "samples withheld from the rate table (violating or quarantined)",
        ),
        "cross_mismatches": registry.counter(
            "integrity_cross_check_mismatches_total",
            "two-ended cross-check disagreements flagged",
        ),
        "quarantines": registry.counter(
            "integrity_quarantines_total", "interfaces placed in quarantine"
        ),
        "releases": registry.counter(
            "integrity_quarantine_releases_total", "interfaces released from quarantine"
        ),
        "quarantined": registry.gauge(
            "quarantined_interfaces", "interfaces currently quarantined"
        ),
        "trust": registry.gauge(
            "interface_trust",
            "per-interface trust score (1 = pristine)",
            labelnames=("interface",),
        ),
    }


class IntegrityPipeline:
    """Validation + cross-checks + quarantine over the poller's samples."""

    def __init__(
        self,
        speeds: Dict[Key, float],
        poll_interval: float,
        config: Optional[IntegrityConfig] = None,
        pairs: Sequence[CrossPair] = (),
        health: Optional[AgentHealthTracker] = None,
        telemetry: Optional[Telemetry] = None,
        now: float = 0.0,
    ) -> None:
        self.config = cfg = config if config is not None else IntegrityConfig()
        self.speeds = dict(speeds)
        self.poll_interval = poll_interval
        self.health = health
        self.telemetry = telemetry if telemetry is not None else Telemetry(enabled=False)
        self._stuck = StuckCounterValidator(
            stuck_after=cfg.stuck_after, decay_trust=cfg.stuck_decays_trust
        )
        self._validators = [
            RateBoundValidator(tolerance=cfg.rate_tolerance),
            self._stuck,
            SpeedValidator(rel_tolerance=cfg.speed_rel_tolerance),
            WrapRiskValidator(),
        ]
        self.quarantine = QuarantineManager(
            quarantine_below=cfg.quarantine_below,
            release_above=cfg.release_above,
            violation_decay=cfg.violation_decay,
            suspect_decay=cfg.suspect_decay,
            recover_step=cfg.recover_step,
            events=self.telemetry.events,
        )
        self.cross_checker = (
            CrossChecker(
                pairs,
                rel_tolerance=cfg.cross_rel_tolerance,
                abs_floor_bps=cfg.cross_abs_floor_bps,
                max_sample_age=2.0 * poll_interval,
                breach_count=cfg.cross_breach_count,
                health=health,
            )
            if pairs
            else None
        )
        self._shadow: Dict[Key, InterfaceRates] = {}
        self._last_offence: Dict[Key, float] = {}
        self._wrap_warned: set = set()
        self._metrics = register_integrity_metrics(self.telemetry.registry)
        self._warn_wrap_risk_config(now)

    # ------------------------------------------------------------------
    # Satellite: at-most-one-wrap configuration guard
    # ------------------------------------------------------------------
    def _warn_wrap_risk_config(self, now: float) -> None:
        """One-time warning when the *scheduled* interval risks wraps.

        ``Counter32.delta`` assumes at most one wrap per interval; at
        100 Mb/s the octet counter wraps every ~343 s, so polling slower
        than ~171 s can hide a double wrap.  Per-interface because the
        threshold scales with ifSpeed (a 10 Mb/s hub leg is safe ten
        times longer).
        """
        for key in sorted(self.speeds):
            speed = self.speeds[key]
            if not speed:
                continue
            half_wrap = wrap_period_seconds(speed) / 2.0
            if self.poll_interval > half_wrap and key not in self._wrap_warned:
                self._wrap_warned.add(key)
                self.telemetry.events.publish(
                    COUNTER_WRAP_RISK,
                    now,
                    node=key[0],
                    if_index=key[1],
                    poll_interval=self.poll_interval,
                    half_wrap_seconds=round(half_wrap, 1),
                    speed_bps=speed,
                )

    @property
    def wrap_risky_interfaces(self) -> List[Key]:
        """Interfaces whose configured interval can hide a counter wrap."""
        return sorted(self._wrap_warned)

    # ------------------------------------------------------------------
    # Per-sample path (called from SnmpPoller._ingest)
    # ------------------------------------------------------------------
    def inspect(
        self,
        sample: InterfaceRates,
        prev: object,
        cur: object,
        polled_speed_bps: Optional[float] = None,
    ) -> bool:
        """Validate one sample; return True when it may enter the table."""
        key = (sample.node, sample.if_index)
        self._shadow[key] = sample
        ctx = SampleContext(
            sample=sample,
            prev=prev,
            cur=cur,
            speed_bps=self.speeds.get(key),
            polled_speed_bps=polled_speed_bps,
            configured_interval=self.poll_interval,
        )
        verdicts: List[IntegrityVerdict] = []
        for validator in self._validators:
            verdicts.extend(validator.check(ctx))
        violating = [v for v in verdicts if v.severity is Severity.VIOLATION]
        suspects = [v for v in verdicts if v.severity is Severity.SUSPECT]
        if verdicts:
            self._record_verdicts(key, verdicts, sample.time)
            self.quarantine.apply(key[0], key[1], verdicts, sample.time)
        if not violating and not suspects:
            self.quarantine.record_clean(key[0], key[1], sample.time)
        self._sync_trust_gauge(key)
        if violating:
            self._metrics["rejected"].inc()
            return False  # demonstrably wrong: never let it into the table
        if self.quarantine.is_quarantined(*key):
            self._metrics["rejected"].inc()
            return False
        return True

    def inspect_remote(self, sample: InterfaceRates) -> bool:
        """Validate a sample shipped from a remote worker.

        Workers ship derived :class:`InterfaceRates`, not raw counter
        snapshots, so the coordinator inspects with ``prev``/``cur``
        absent: the rate-bound check still applies (a remote worker, or
        anything spoofing one, must not inject impossible rates into the
        table), the regression diagnosis and polled-ifSpeed cross-check
        simply have nothing to read.  Admission semantics are identical
        to :meth:`inspect`.
        """
        return self.inspect(sample, prev=None, cur=None, polled_speed_bps=None)

    def note_restart(self, node: str, if_index: int) -> None:
        """Agent restarted: streak state is meaningless, drop it."""
        self._stuck.forget(node, if_index)

    # ------------------------------------------------------------------
    # Cross-check path (called from the monitor's report cycle)
    # ------------------------------------------------------------------
    def run_cross_checks(self, now: float) -> List[IntegrityVerdict]:
        if self.cross_checker is None:
            return []
        window = self.config.offender_window_polls * self.poll_interval

        def recent_offender(node: str, if_index: int) -> bool:
            last = self._last_offence.get((node, if_index))
            return last is not None and (now - last) <= window

        applied: List[IntegrityVerdict] = []
        for finding in self.cross_checker.check(self._shadow, now, recent_offender):
            if not finding.mismatch:
                continue
            self._metrics["cross_mismatches"].inc()
            self.telemetry.events.publish(
                CROSS_CHECK_MISMATCH,
                now,
                pair=finding.pair.label,
                blamed=finding.blamed,
                detail=finding.detail,
            )
            verdicts = self.cross_checker.verdicts_for(finding)
            for verdict in verdicts:
                key = (verdict.node, verdict.if_index)
                self._record_verdicts(key, [verdict], now)
                self.quarantine.apply(key[0], key[1], [verdict], now)
                self._sync_trust_gauge(key)
            applied.extend(verdicts)
        return applied

    def apply_external_verdicts(
        self, verdicts: List[IntegrityVerdict], now: float
    ) -> None:
        """Ingest verdicts produced outside the per-sample path.

        Other measurement planes (the active probe cross-validator, for
        one) reach conclusions about counter sources through evidence the
        sample validators never see.  This feeds their verdicts through
        the same record/quarantine/trust-gauge sequence the internal
        paths use, so an externally blamed interface decays and
        quarantines exactly like an internally caught one.
        """
        for verdict in verdicts:
            key = (verdict.node, verdict.if_index)
            self._record_verdicts(key, [verdict], now)
            self.quarantine.apply(key[0], key[1], [verdict], now)
            self._sync_trust_gauge(key)

    # ------------------------------------------------------------------
    # Queries (calculator, monitor, CLI)
    # ------------------------------------------------------------------
    @property
    def clock(self) -> int:
        """Global quarantine clock (see :class:`QuarantineManager`)."""
        return self.quarantine.clock

    def epoch_of(self, node: str, if_index: int) -> int:
        """Quarantine enter/release epoch of one interface."""
        return self.quarantine.epoch_of(node, if_index)

    def is_quarantined(self, node: str, if_index: int) -> bool:
        return self.quarantine.is_quarantined(node, if_index)

    def trust(self, node: str, if_index: int) -> float:
        return self.quarantine.trust(node, if_index)

    def quarantined_keys(self) -> List[Key]:
        return self.quarantine.quarantined_keys()

    def status(self) -> Dict[str, object]:
        """Structured pipeline state for the CLI / JSON surfaces."""
        interfaces = []
        for key, rec in sorted(self.quarantine.records().items()):
            interfaces.append(
                {
                    "node": key[0],
                    "if_index": key[1],
                    "trust": round(rec.score, 4),
                    "quarantined": rec.quarantined,
                    "violations": rec.violations,
                    "suspects": rec.suspects,
                    "wrap_risk": key in self._wrap_warned,
                    "last_verdict": str(rec.last_verdict) if rec.last_verdict else None,
                }
            )
        pairs = []
        if self.cross_checker is not None:
            for pair in self.cross_checker.pairs:
                pairs.append(
                    {
                        "pair": pair.label,
                        "mismatch_streak": self.cross_checker._streaks.get(pair.label, 0),
                    }
                )
        return {
            "interfaces": interfaces,
            "pairs": pairs,
            "quarantined": [f"{n}:{i}" for n, i in self.quarantined_keys()],
            "wrap_risky": [f"{n}:{i}" for n, i in self.wrap_risky_interfaces],
        }

    # ------------------------------------------------------------------
    def _record_verdicts(self, key: Key, verdicts: List[IntegrityVerdict], now: float) -> None:
        for verdict in verdicts:
            if verdict.severity is Severity.VIOLATION:
                self._metrics["violations"].inc()
                self._metrics["violations_by_check"].labels(check=verdict.check).inc()
                self._last_offence[key] = now
                self.telemetry.events.publish(
                    INTEGRITY_VIOLATION,
                    now,
                    check=verdict.check,
                    node=verdict.node,
                    if_index=verdict.if_index,
                    detail=verdict.detail,
                )
                if self.health is not None:
                    self.health.record_data_violation(verdict.node, now)
            elif verdict.severity is Severity.SUSPECT:
                self._metrics["suspects"].inc()
                if verdict.check == "stuck_counters":
                    # Frozen counters are offender evidence for the
                    # cross-checker even though they do not decay trust.
                    self._last_offence[key] = now

    def _sync_trust_gauge(self, key: Key) -> None:
        rec = self.quarantine.record(*key)
        self._metrics["trust"].labels(interface=f"{key[0]}:{key[1]}").set(
            round(rec.score, 4)
        )
        quarantined = len(self.quarantine.quarantined_keys())
        self._metrics["quarantined"].set(float(quarantined))
        total_q = sum(r.quarantines for r in self.quarantine.records().values())
        total_r = sum(r.releases for r in self.quarantine.records().values())
        q_counter = self._metrics["quarantines"]
        r_counter = self._metrics["releases"]
        if total_q > q_counter.value:
            q_counter.inc(total_q - q_counter.value)
        if total_r > r_counter.value:
            r_counter.inc(total_r - r_counter.value)
