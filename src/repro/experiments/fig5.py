"""Experiment §4.3.2 / Figure 5: hosts connected by a hub.

"A hub forwards data packets to all the connected hosts ... Our
monitoring program considers this by summing the traffic through a hub
when computing the amount of bandwidth used on any communication path
through the hub.  ... We started with no data being sent to either NT
machine.  After 20 seconds, we began to send 200 Kbytes/second from L to
N1.  20 seconds later, we began to send 200 Kbytes/second from L to N2.
After another 20 seconds, the traffic from L to N1 was reduced to [zero].
20 seconds later the traffic from L to N2 was also eliminated."

Expected measured pattern on BOTH paths S1<->N1 and S1<->N2 (they share
the hub medium, so both see the hub *sum*)::

    [ 0, 20)    0 KB/s
    [20, 40)  200 KB/s   (N1 load only)
    [40, 60)  400 KB/s   (N1 + N2)
    [60, 80)  200 KB/s   (N2 only)
    [80, ..)    0 KB/s

Paper accuracy: "3.7 % error on average values of measured traffic (less
background), with maximum individual error of 7.8 %".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.series import combined_stable_mask
from repro.analysis.stats import TrafficStatistics, compute_table2
from repro.experiments.scenarios import Scenario, SeriesPair
from repro.simnet.trafficgen import KBPS, StepSchedule

RUN_UNTIL = 110.0
HUB_HOSTS = ["N1", "N2"]
LOAD_N1 = StepSchedule.pulse(20.0, 60.0, 200 * KBPS)
LOAD_N2 = StepSchedule.pulse(40.0, 80.0, 200 * KBPS)
TRANSITION_GUARD = 1.0

PAPER_AVG_PCT_ERROR = 3.7
PAPER_MAX_PCT_ERROR = 7.8


@dataclass
class Fig5Result:
    pairs: Dict[str, SeriesPair]  # watch label -> series (measured vs hub sum)
    stats: Dict[str, TrafficStatistics]
    poll_interval: float
    monitor_stats: dict
    scenario: Scenario


def run(seed: int = 0, poll_interval: float = 2.0) -> Fig5Result:
    scenario = Scenario(poll_interval=poll_interval, seed=seed)
    labels = [scenario.watch("S1", host) for host in HUB_HOSTS]
    scenario.add_load("L", "N1", LOAD_N1)
    scenario.add_load("L", "N2", LOAD_N2)
    scenario.run(RUN_UNTIL)

    pairs: Dict[str, SeriesPair] = {}
    stats: Dict[str, TrafficStatistics] = {}
    for label in labels:
        # Both paths cross the hub: expected traffic is the hub sum.
        pair = scenario.series_pair(label, HUB_HOSTS)
        pairs[label] = pair
        stable = combined_stable_mask(
            pair.times, [LOAD_N1, LOAD_N2], window=poll_interval, guard=TRANSITION_GUARD
        )
        stats[label] = compute_table2(
            pair.measured_kbps, pair.generated_kbps, stable=stable
        )
    return Fig5Result(
        pairs=pairs,
        stats=stats,
        poll_interval=poll_interval,
        monitor_stats=scenario.monitor.stats(),
        scenario=scenario,
    )


def format_series(result: Fig5Result, stride: int = 2) -> List[str]:
    labels = sorted(result.pairs)
    lines = [
        f"{'time (s)':>9} "
        + " ".join(f"{'gen->'+lab:>16} {'meas '+lab:>16}" for lab in labels)
    ]
    n = len(result.pairs[labels[0]].times)
    for i in range(0, n, stride):
        row = [f"{result.pairs[labels[0]].times[i]:9.1f}"]
        for lab in labels:
            pair = result.pairs[lab]
            row.append(f"{pair.generated_kbps[i]:16.1f} {pair.measured_kbps[i]:16.2f}")
        lines.append(" ".join(row))
    return lines


def main(seed: int = 0) -> Fig5Result:
    from repro.analysis.charts import render_pair

    result = run(seed=seed)
    print("Figure 5 -- hub-connected hosts (paths S1<->N1 and S1<->N2 see the hub sum)")
    for label in sorted(result.pairs):
        print(render_pair(result.pairs[label], title=f"hub sum (-) vs measured (*) on {label}"))
        print()
    for line in format_series(result):
        print(line)
    for label, stats in sorted(result.stats.items()):
        print()
        print(stats.format_table(title=f"accuracy on {label}"))
    print()
    print(f"paper: avg error {PAPER_AVG_PCT_ERROR}%, max individual {PAPER_MAX_PCT_ERROR}%")
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
