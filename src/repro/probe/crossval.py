"""Active-vs-passive cross-validation: the probe plane checks the SNMP plane.

The passive monitor's ``available_bps`` is an *inference* from interface
counters; a probe train's ``achievable_bps`` is an *observation* of what
the path actually delivers.  The two are not directly comparable point
values: a back-to-back train that arrives at the bottleneck contiguously
measures the bottleneck's *capacity*, while one pre-paced by an earlier
equal-speed link interleaves with cross-traffic and measures its
*residual* share.  What passive monitoring claims is therefore an
**envelope**: any honest probe figure must land between the path's
claimed available bandwidth and its claimed capacity,

    available - tol  <=  achievable  <=  capacity + tol

A probe *below* the envelope saw traffic (or a slow wire) the counters
did not account for; one *above* it saw a wire faster than the counters
claim.  Either way one of the planes is wrong -- and because the probe
carried real packets end to end, suspicion falls on the passive side.
The validator localizes the cause the same way :mod:`repro.integrity`'s
two-ended cross-checks blame a byzantine counter:

- ``unmetered_segment`` -- the path crosses a connection no counter
  observes (rule ``"unmeasured"``, typically a hub pocket behind an
  agentless device).  Cross-traffic there is invisible to SNMP; only the
  probe sees the shrunken residual capacity.
- ``stale_counter`` -- some backing sample is older than the staleness
  bound; the passive figure describes the past.
- ``quarantine_candidate_agent`` -- every connection is metered and
  fresh, yet the wire contradicts the arithmetic: the bottleneck's
  counter source is claiming figures (speed, rates) the path cannot
  honour, e.g. a ``SpeedMisreport`` liar whose claimed ifSpeed matches
  the spec while the physical link negotiated lower.  The source is
  reported to the integrity quarantine as a SUSPECT.

An active disagreement caps the path's report confidence (the monitor
applies :attr:`ProbeCrossValidator.confidence_cap`) until the planes
re-agree, at which point a recovery is signalled and the cap lifts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.report import ConnectionMeasurement, PathReport
from repro.integrity.validators import IntegrityVerdict, Severity
from repro.probe.stats import ProbeReport


@dataclass(frozen=True)
class ProbeDisagreementFinding:
    """One debounced active/passive disagreement, localized."""

    label: str
    src: str
    dst: str
    time: float
    probe_bps: float  # active achievable, wire bytes/s
    passive_bps: float  # passive available, wire bytes/s
    capacity_bps: float  # passive claimed path capacity, wire bytes/s
    mismatch_bps: float  # distance outside the [available, capacity] envelope
    direction: str  # "below" (saw less than available) | "above" (beat capacity)
    cause: str  # "unmetered_segment" | "stale_counter" | "quarantine_candidate_agent"
    blamed: str  # connection or counter source the cause points at
    detail: str
    streak: int  # consecutive disagreeing rounds behind this finding
    # (node, if_index) of the suspect counter source, when one exists.
    blamed_source: Optional[Tuple[str, int]] = None

    def __str__(self) -> str:
        return (
            f"[{self.time:9.3f}s] {self.label}: PROBE DISAGREES -- active "
            f"{self.probe_bps / 1000:.1f} vs passive {self.passive_bps / 1000:.1f} "
            f"KB/s ({self.cause}: {self.blamed})"
        )


class ProbeCrossValidator:
    """Debounced comparison of probe reports against passive path reports.

    ``calculator`` (a :class:`~repro.core.bandwidth.BandwidthCalculator`)
    is optional; when present it resolves counter sources so findings can
    name the suspect ``(node, if_index)`` for the quarantine.
    """

    def __init__(
        self,
        calculator=None,
        rel_tolerance: float = 0.35,
        abs_floor_bps: float = 100_000.0,
        breach_count: int = 2,
        confidence_cap: float = 0.4,
    ) -> None:
        if not 0.0 < rel_tolerance < 1.0:
            raise ValueError(f"rel_tolerance out of (0, 1): {rel_tolerance!r}")
        if breach_count < 1:
            raise ValueError(f"breach_count must be >= 1: {breach_count!r}")
        self.calculator = calculator
        self.rel_tolerance = rel_tolerance
        self.abs_floor_bps = abs_floor_bps
        self.breach_count = breach_count
        self.confidence_cap = confidence_cap
        self._streaks: Dict[str, int] = {}
        #: Findings currently holding a confidence cap, per path label.
        self.active: Dict[str, ProbeDisagreementFinding] = {}
        self.comparisons = 0
        self.disagreements = 0

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------
    @staticmethod
    def _path_capacity(passive: PathReport) -> float:
        capacities = [m.capacity_bps for m in passive.connections]
        return min(capacities) if capacities else float("nan")

    def _disagree(
        self, probe_bps: float, available_bps: float, capacity_bps: float
    ) -> Optional[str]:
        """``"below"``/``"above"`` when outside the envelope, else None."""
        floor = available_bps - max(
            self.abs_floor_bps, self.rel_tolerance * available_bps
        )
        if probe_bps < floor:
            return "below"
        if not np.isnan(capacity_bps):
            ceiling = capacity_bps + max(
                self.abs_floor_bps, self.rel_tolerance * capacity_bps
            )
            if probe_bps > ceiling:
                return "above"
        return None

    def observe(
        self, probe: ProbeReport, passive: Optional[PathReport], now: float
    ) -> Tuple[Optional[ProbeDisagreementFinding], bool]:
        """Feed one completed train and its passive counterpart.

        Returns ``(finding, recovered)``: a finding on the round that
        crosses the debounce threshold (and on each sustaining round, so
        localization stays current), and ``recovered=True`` on the round
        the planes re-agree after an active disagreement.
        """
        if (
            passive is None
            or passive.unavailable
            or not probe.delivered
            or np.isnan(passive.available_bps)
        ):
            # One plane has nothing to say; neither streaks nor resets.
            return None, False
        label = passive.label  # the watch label (may be a custom name)
        self.comparisons += 1
        capacity = self._path_capacity(passive)
        direction = self._disagree(
            probe.achievable_bps, passive.available_bps, capacity
        )
        if direction is None:
            self._streaks[label] = 0
            recovered = label in self.active
            if recovered:
                del self.active[label]
            return None, recovered
        streak = self._streaks.get(label, 0) + 1
        self._streaks[label] = streak
        if streak < self.breach_count:
            return None, False
        finding = self._localize(probe, passive, capacity, direction, now, streak)
        self.disagreements += 1
        self.active[label] = finding
        return finding, False

    def confidence_cap_for(self, label: str) -> Optional[float]:
        """The cap to apply to ``label``'s reports, if one is active."""
        return self.confidence_cap if label in self.active else None

    # ------------------------------------------------------------------
    # Localization
    # ------------------------------------------------------------------
    def _source_of(self, m: ConnectionMeasurement) -> Optional[Tuple[str, int]]:
        if self.calculator is None:
            return None
        source = self.calculator.counter_source(m.connection)
        if source is None:
            return None
        return (source.node, source.if_index)

    def _localize(
        self,
        probe: ProbeReport,
        passive: PathReport,
        capacity: float,
        direction: str,
        now: float,
        streak: int,
    ) -> ProbeDisagreementFinding:
        if direction == "below":
            mismatch = passive.available_bps - probe.achievable_bps
        else:
            mismatch = probe.achievable_bps - capacity

        def finding(cause, blamed, detail, blamed_source=None):
            return ProbeDisagreementFinding(
                label=passive.label,
                src=probe.src,
                dst=probe.dst,
                time=now,
                probe_bps=probe.achievable_bps,
                passive_bps=passive.available_bps,
                capacity_bps=capacity,
                mismatch_bps=mismatch,
                direction=direction,
                cause=cause,
                blamed=blamed,
                detail=detail,
                streak=streak,
                blamed_source=blamed_source,
            )

        # A probe that *beat* the claimed capacity cannot be explained by
        # unseen traffic or stale rates -- the speed claim itself is off.
        if direction == "above":
            bottleneck = passive.bottleneck
            blamed_m = (
                bottleneck if bottleneck is not None else passive.connections[0]
            )
            blamed_source = self._source_of(blamed_m)
            blamed = (
                f"{blamed_source[0]}.if{blamed_source[1]}"
                if blamed_source is not None
                else str(blamed_m.connection)
            )
            return finding(
                "quarantine_candidate_agent",
                blamed,
                f"the wire outran the claimed path capacity by "
                f"{mismatch / 1000:.0f} KB/s; {blamed} understates its speed",
                blamed_source=blamed_source,
            )

        unmeasured = [m for m in passive.connections if not m.measured]
        if unmeasured:
            # Prefer a hub-touching blind spot: a shared medium nobody
            # meters is exactly where invisible cross-traffic lives.
            blamed_m = unmeasured[0]
            if self.calculator is not None:
                for m in unmeasured:
                    if self.calculator.hub_of(m.connection) is not None:
                        blamed_m = m
                        break
            return finding(
                "unmetered_segment",
                str(blamed_m.connection),
                f"no counter observes {blamed_m.connection}; passive assumes "
                f"it idle while the probe measures its real residual",
            )

        stale = [m for m in passive.connections if m.stale]
        if stale:
            blamed_m = min(
                stale, key=lambda m: m.sample_time if m.sample_time is not None else -1.0
            )
            age = blamed_m.sample_age
            return finding(
                "stale_counter",
                str(blamed_m.connection),
                f"sample behind {blamed_m.connection} is "
                f"{'unaged' if age is None else f'{age:.1f}s old'}; the "
                f"passive figure describes the past",
            )

        bottleneck = passive.bottleneck
        blamed_m = bottleneck if bottleneck is not None else passive.connections[0]
        blamed_source = self._source_of(blamed_m)
        blamed = (
            f"{blamed_source[0]}.if{blamed_source[1]}"
            if blamed_source is not None
            else str(blamed_m.connection)
        )
        return finding(
            "quarantine_candidate_agent",
            blamed,
            f"all connections metered and fresh, yet the wire delivers "
            f"{mismatch / 1000:.0f} KB/s less than {blamed} claims available",
            blamed_source=blamed_source,
        )

    # ------------------------------------------------------------------
    # Integrity hand-off
    # ------------------------------------------------------------------
    def verdicts_for(
        self, finding: ProbeDisagreementFinding
    ) -> List[IntegrityVerdict]:
        """Typed verdicts for the integrity quarantine, when attributable."""
        if finding.blamed_source is None:
            return []
        node, if_index = finding.blamed_source
        return [
            IntegrityVerdict(
                check="probe_cross_check",
                severity=Severity.SUSPECT,
                node=node,
                if_index=if_index,
                time=finding.time,
                detail=(
                    f"active probe on {finding.label} measured "
                    f"{finding.probe_bps / 1000:.0f} KB/s against a passive "
                    f"claim of {finding.passive_bps / 1000:.0f} KB/s"
                ),
            )
        ]
