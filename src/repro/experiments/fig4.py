"""Experiment §4.3.1 / Figure 4: dynamically varying network load.

"A set of experiments was performed to observe the network traffic
between a Windows NT machine, N1, and the Solaris 7 machine, S1.  The
path that data followed was: S1 - switch - hub - N1.  ... network traffic
was generated from L to N1 using the network load generator.  Starting at
100 Kbytes/second for 120 seconds, we increased the amount of data sent by
the load generator by 100 Kbytes/second each 60 seconds.  After 360
seconds, the load generator was sending 500 Kbytes/second from L to N1.
The entire load was eliminated at 420 seconds."

Timeline (with a 60-second quiet lead-in that provides the zero-load
samples the paper's background estimate needs)::

    [  0,  60)    0 KB/s
    [ 60, 180)  100 KB/s      <- "starting at 100 KB/s for 120 seconds"
    [180, 240)  200 KB/s
    [240, 300)  300 KB/s
    [300, 360)  400 KB/s
    [360, 420)  500 KB/s      <- "after 360 seconds ... 500 KB/s"
    [420, 480)    0 KB/s      <- "eliminated at 420 seconds"

Figure 4a is the generated series, Figure 4b the monitor's measured
series on path S1 <-> N1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.traversal import format_path
from repro.experiments.scenarios import Scenario, SeriesPair
from repro.simnet.trafficgen import KBPS, StepSchedule

PATH_SRC = "S1"
PATH_DST = "N1"
LOAD_SRC = "L"
LOAD_DST = "N1"
RUN_UNTIL = 480.0

# The first level holds for 120 s while the rest hold 60 s, so the exact
# breakpoints are written out rather than using StepSchedule.staircase().
LOAD_SCHEDULE = StepSchedule(
    [
        (60.0, 100 * KBPS),
        (180.0, 200 * KBPS),
        (240.0, 300 * KBPS),
        (300.0, 400 * KBPS),
        (360.0, 500 * KBPS),
        (420.0, 0.0),
    ]
)

LEVELS_KBPS = [100.0, 200.0, 300.0, 400.0, 500.0]


@dataclass
class Fig4Result:
    pair: SeriesPair  # measured vs generated, KB/s
    schedule: StepSchedule
    path_description: str
    poll_interval: float
    monitor_stats: dict
    scenario: Scenario


def run(
    seed: int = 0,
    poll_interval: float = 2.0,
    telemetry: bool = True,
    integrity=True,
) -> Fig4Result:
    """Run the Figure 4 experiment; deterministic for a given seed.

    ``telemetry=False`` turns off histogram/span collection (counters and
    events stay on) -- the overhead benchmark compares the two.
    ``integrity=False`` bypasses the measurement-integrity pipeline --
    its overhead benchmark compares the two the same way.
    """
    scenario = Scenario(
        poll_interval=poll_interval, seed=seed, telemetry=telemetry, integrity=integrity
    )
    label = scenario.watch(PATH_SRC, PATH_DST)
    scenario.add_load(LOAD_SRC, LOAD_DST, LOAD_SCHEDULE)
    scenario.run(RUN_UNTIL)
    pair = scenario.series_pair(label, [LOAD_DST])
    path = scenario.monitor.path_of(label)
    return Fig4Result(
        pair=pair,
        schedule=LOAD_SCHEDULE,
        path_description=format_path(path, PATH_SRC),
        poll_interval=poll_interval,
        monitor_stats=scenario.monitor.stats(),
        scenario=scenario,
    )


def format_series(result: Fig4Result, stride: int = 5) -> List[str]:
    """The Figure 4 rows: time, generated (4a), measured (4b)."""
    lines = [
        f"path: {result.path_description}",
        f"{'time (s)':>9} {'generated (KB/s)':>17} {'measured (KB/s)':>16}",
    ]
    pair = result.pair
    for i in range(0, len(pair.times), stride):
        lines.append(
            f"{pair.times[i]:9.1f} {pair.generated_kbps[i]:17.1f} "
            f"{pair.measured_kbps[i]:16.2f}"
        )
    return lines


def main(seed: int = 0) -> Fig4Result:
    from repro.analysis.charts import render_pair

    result = run(seed=seed)
    print("Figure 4 -- dynamically varying network load (S1 <-> N1)")
    print(render_pair(result.pair, title="Fig 4a/4b: generated (-) vs measured (*)"))
    print()
    for line in format_series(result):
        print(line)
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
