"""Tokenizer for the network-resource specification language.

Hand-written single-pass scanner with precise line/column tracking so
parse errors point at the offending character.  Comments come in three
styles (``#``, ``//``, ``/* ... */``) because spec files in the wild
accrete all of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, List


class LexError(ValueError):
    """Raised on characters or literals the language does not allow."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} at line {line}, column {column}")
        self.line = line
        self.column = column


class TokenType(Enum):
    IDENT = "identifier"
    NUMBER = "number"
    STRING = "string"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMICOLON = ";"
    DOT = "."
    COMMA = ","
    ARROW = "<->"
    EOF = "end of input"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: object  # str for IDENT/STRING, float/int for NUMBER
    line: int
    column: int

    def __str__(self) -> str:
        if self.type in (TokenType.IDENT, TokenType.STRING):
            return f"{self.type.value} {self.value!r}"
        if self.type is TokenType.NUMBER:
            return f"number {self.value}"
        return self.type.value


_SINGLE = {
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ";": TokenType.SEMICOLON,
    ".": TokenType.DOT,
    ",": TokenType.COMMA,
}

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789-")
_DIGITS = set("0123456789")


class _Scanner:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def peek(self, ahead: int = 0) -> str:
        idx = self.pos + ahead
        return self.text[idx] if idx < len(self.text) else ""

    def advance(self) -> str:
        ch = self.text[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return ch

    @property
    def exhausted(self) -> bool:
        return self.pos >= len(self.text)


def tokenize(text: str) -> List[Token]:
    """Scan ``text`` into a token list ending with an EOF token."""
    return list(iter_tokens(text))


def iter_tokens(text: str) -> Iterator[Token]:
    scanner = _Scanner(text)
    while not scanner.exhausted:
        ch = scanner.peek()
        if ch in " \t\r\n":
            scanner.advance()
            continue
        if ch == "#" or (ch == "/" and scanner.peek(1) == "/"):
            _skip_line_comment(scanner)
            continue
        if ch == "/" and scanner.peek(1) == "*":
            _skip_block_comment(scanner)
            continue
        line, column = scanner.line, scanner.column
        if ch == "<":
            yield _scan_arrow(scanner, line, column)
            continue
        if ch in _SINGLE:
            # A dot between digits would be part of a number, but numbers
            # never *start* with a dot in this language.
            scanner.advance()
            yield Token(_SINGLE[ch], ch, line, column)
            continue
        if ch == '"':
            yield _scan_string(scanner, line, column)
            continue
        if ch in _DIGITS:
            yield _scan_number(scanner, line, column)
            continue
        if ch in _IDENT_START:
            yield _scan_ident(scanner, line, column)
            continue
        raise LexError(f"unexpected character {ch!r}", line, column)
    yield Token(TokenType.EOF, None, scanner.line, scanner.column)


def _skip_line_comment(scanner: _Scanner) -> None:
    while not scanner.exhausted and scanner.peek() != "\n":
        scanner.advance()


def _skip_block_comment(scanner: _Scanner) -> None:
    line, column = scanner.line, scanner.column
    scanner.advance()  # '/'
    scanner.advance()  # '*'
    while True:
        if scanner.exhausted:
            raise LexError("unterminated block comment", line, column)
        if scanner.peek() == "*" and scanner.peek(1) == "/":
            scanner.advance()
            scanner.advance()
            return
        scanner.advance()


def _scan_arrow(scanner: _Scanner, line: int, column: int) -> Token:
    text = scanner.peek() + scanner.peek(1) + scanner.peek(2)
    if text != "<->":
        raise LexError(f"expected '<->', found {text!r}", line, column)
    for _ in range(3):
        scanner.advance()
    return Token(TokenType.ARROW, "<->", line, column)


def _scan_string(scanner: _Scanner, line: int, column: int) -> Token:
    scanner.advance()  # opening quote
    chars: List[str] = []
    while True:
        if scanner.exhausted:
            raise LexError("unterminated string literal", line, column)
        ch = scanner.advance()
        if ch == '"':
            return Token(TokenType.STRING, "".join(chars), line, column)
        if ch == "\n":
            raise LexError("newline inside string literal", line, column)
        if ch == "\\":
            if scanner.exhausted:
                raise LexError("dangling escape in string literal", line, column)
            esc = scanner.advance()
            mapping = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}
            if esc not in mapping:
                raise LexError(f"unknown escape \\{esc}", line, column)
            chars.append(mapping[esc])
        else:
            chars.append(ch)


def _scan_number(scanner: _Scanner, line: int, column: int) -> Token:
    digits: List[str] = []
    seen_dot = False
    while not scanner.exhausted:
        ch = scanner.peek()
        if ch in _DIGITS:
            digits.append(scanner.advance())
        elif ch == "." and not seen_dot and scanner.peek(1) in _DIGITS:
            seen_dot = True
            digits.append(scanner.advance())
        elif ch == "_" and scanner.peek(1) in _DIGITS:
            scanner.advance()  # digit separator, e.g. 100_000
        else:
            break
    text = "".join(digits)
    value: object = float(text) if seen_dot else int(text)
    return Token(TokenType.NUMBER, value, line, column)


def _scan_ident(scanner: _Scanner, line: int, column: int) -> Token:
    chars = [scanner.advance()]
    while not scanner.exhausted and scanner.peek() in _IDENT_CONT:
        chars.append(scanner.advance())
    return Token(TokenType.IDENT, "".join(chars), line, column)
