"""Fault injection for the simulated LAN.

DeSiDeRaTa "performs QoS monitoring and failure detection"; a monitor
that is only ever shown a healthy network is untestable on half its job.
This module injects the failures a real LAN suffers:

- :class:`LinkFailure`      -- take a link down (both directions drop
  everything) and optionally restore it later.  Interface operational
  state follows, so SNMP ``ifOperStatus`` and link-state traps react.
- :class:`PacketLoss`       -- random, seeded per-direction frame loss on
  a link (a flaky cable).
- :class:`AgentOutage`      -- an SNMP daemon stops answering for a while
  (the process crashed); the manager sees timeouts, exactly what the
  paper's monitor would have experienced.
- :class:`AgentReboot`      -- the daemon dies *and comes back with
  sysUpTime and all counters reset* (host reboot / demon restart),
  exercising the poller's restart-detection and re-baselining path.
- :class:`ResponseDelay`    -- the agent still answers, just slowly (an
  overloaded host), exercising the manager's adaptive RTO estimation.
- :class:`Flap`             -- a link that goes down and up periodically
  (a half-seated connector), exercising link-state and health hysteresis.

All injections are plain objects driven by the simulation clock and are
fully deterministic under a seed.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from repro.simnet.engine import Simulator
from repro.simnet.link import Link, _Channel
from repro.simnet.packet import EthernetFrame

if TYPE_CHECKING:  # pragma: no cover - simnet must not import telemetry eagerly
    from repro.telemetry.events import EventBus


class FaultError(RuntimeError):
    """Raised for invalid fault configuration."""


def _link_label(link: Link) -> str:
    return f"{link.end_a.full_name}<->{link.end_b.full_name}"


def _publish(
    events: Optional["EventBus"], injected: bool, now: float, fault: object, **attrs
) -> None:
    """Publish a fault lifecycle event when an :class:`EventBus` is wired.

    Every fault class takes an optional ``events`` bus (normally the
    monitor's ``telemetry.events``) so experiments can correlate injected
    failures with the monitor's reaction on one timeline.
    """
    if events is None:
        return
    from repro.telemetry.events import FAULT_CLEARED, FAULT_INJECTED

    events.publish(
        FAULT_INJECTED if injected else FAULT_CLEARED,
        now,
        fault=type(fault).__name__,
        **attrs,
    )


class LinkFailure:
    """Severs a link at ``at`` and optionally restores it at ``until``.

    Implementation: both endpoint interfaces are administratively downed,
    which makes transmission fail (out_discards) and reception drop
    (in_discards) -- indistinguishable, from above, from a yanked cable.
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        at: float,
        until: Optional[float] = None,
        events: Optional["EventBus"] = None,
    ) -> None:
        if until is not None and until <= at:
            raise FaultError(f"restore time {until!r} must follow failure time {at!r}")
        self.sim = sim
        self.link = link
        self.at = at
        self.until = until
        self.events = events
        self.failed = False
        sim.schedule_at(max(at, sim.now), self._fail)
        if until is not None:
            sim.schedule_at(max(until, sim.now), self._restore)

    def _fail(self) -> None:
        self.failed = True
        for iface in self.link.endpoints:
            iface.set_admin_up(False)
        _publish(self.events, True, self.sim.now, self, link=_link_label(self.link))

    def _restore(self) -> None:
        self.failed = False
        for iface in self.link.endpoints:
            iface.set_admin_up(True)
        _publish(self.events, False, self.sim.now, self, link=_link_label(self.link))


class PacketLoss:
    """Seeded random frame loss on a link (both directions).

    Installs a drop filter on both directional channels: each offered
    frame is dropped with probability ``loss_rate`` before it enqueues,
    counted in the channel's drop statistics.
    """

    def __init__(
        self,
        link: Link,
        loss_rate: float,
        seed: int = 0,
        events: Optional["EventBus"] = None,
    ) -> None:
        if not 0.0 <= loss_rate <= 1.0:
            raise FaultError(f"loss rate {loss_rate!r} outside [0, 1]")
        self.link = link
        self.loss_rate = loss_rate
        self.rng = random.Random(seed)
        self.frames_lost = 0
        self._wrap(link._a_to_b)
        self._wrap(link._b_to_a)
        # PacketLoss is permanent from construction; the injection event
        # fires immediately and there is no matching cleared event.
        _publish(
            events, True, link.sim.now, self,
            link=_link_label(link), loss_rate=loss_rate,
        )

    def _wrap(self, channel: _Channel) -> None:
        def should_drop(frame: EthernetFrame) -> bool:
            if self.rng.random() < self.loss_rate:
                self.frames_lost += 1
                return True
            return False

        channel.drop_filter = should_drop


class AgentOutage:
    """An SNMP agent stops responding during [at, until).

    Models a crashed/hung daemon: requests are still *received* (and
    counted) but produce no response, so the manager runs into its
    timeout/retry machinery.
    """

    def __init__(
        self,
        sim: Simulator,
        agent,
        at: float,
        until: float,
        events: Optional["EventBus"] = None,
    ) -> None:
        if until <= at:
            raise FaultError(f"outage end {until!r} must follow start {at!r}")
        self.sim = sim
        self.agent = agent
        self.at = at
        self.until = until
        self.events = events
        self.down = False
        self.requests_ignored = 0
        self._original = agent.socket.on_receive
        sim.schedule_at(max(at, sim.now), self._begin)
        sim.schedule_at(max(until, sim.now), self._end)

    def _begin(self) -> None:
        self.down = True

        def black_hole(payload, size, src_ip, src_port):
            self.agent.in_packets += 1
            self.requests_ignored += 1

        self.agent.socket.on_receive = black_hole
        _publish(self.events, True, self.sim.now, self, agent=self.agent.name)

    def _end(self) -> None:
        self.down = False
        self.agent.socket.on_receive = self._original
        _publish(self.events, False, self.sim.now, self, agent=self.agent.name)


class AgentReboot:
    """The SNMP daemon's host reboots: silent during [at, at+outage),
    then back **with sysUpTime restarted and every counter zeroed**.

    This is the failure mode the poller's ``agent_restarts`` branch
    exists for: after the reboot the old counter baselines are garbage
    (they would yield colossal negative-looking deltas), and the first
    post-reboot poll must only re-establish baselines.  The sysUpTime
    reset is what gives the restart away, exactly as MIB-II intends.
    """

    def __init__(
        self,
        sim: Simulator,
        agent,
        at: float,
        outage: float = 2.0,
        events: Optional["EventBus"] = None,
    ) -> None:
        if outage <= 0:
            raise FaultError(f"non-positive reboot outage {outage!r}")
        self.sim = sim
        self.agent = agent
        self.at = at
        self.outage = outage
        self.events = events
        self.down = False
        self.rebooted = False
        self.requests_ignored = 0
        self._original = agent.socket.on_receive
        sim.schedule_at(max(at, sim.now), self._begin)
        sim.schedule_at(max(at + outage, sim.now), self._come_back)

    def _begin(self) -> None:
        self.down = True

        def black_hole(payload, size, src_ip, src_port):
            self.agent.in_packets += 1
            self.requests_ignored += 1

        self.agent.socket.on_receive = black_hole
        _publish(self.events, True, self.sim.now, self, agent=self.agent.name)

    def _come_back(self) -> None:
        # Local imports: simnet must not depend on snmp at module level.
        from repro.snmp.mib import CachingMibTree, MibError, build_mib2, register_snmp_group

        device = getattr(self.agent.endpoint, "switch", self.agent.endpoint)
        for iface in getattr(device, "interfaces", []):
            counters = iface.counters
            for name in counters.__slots__:
                setattr(counters, name, 0)
        # Rebuild the MIB with boot_time = now, so sysUpTime restarts at
        # zero; preserve a caching wrapper's refresh interval if present.
        old_mib = self.agent.mib
        mib = build_mib2(device, self.sim, boot_time=self.sim.now)
        try:
            register_snmp_group(mib, self.agent)
        except MibError:
            pass
        if isinstance(old_mib, CachingMibTree):
            mib = CachingMibTree(mib, self.sim, old_mib.refresh_interval)
        self.agent.mib = mib
        self.agent.socket.on_receive = self._original
        self.down = False
        self.rebooted = True
        _publish(
            self.events, False, self.sim.now, self,
            agent=self.agent.name, rebooted=True,
        )


class ResponseDelay:
    """An alive-but-slow agent: responses take ``extra`` seconds longer
    during [at, until) (or forever, when ``until`` is None).

    Models an overloaded host whose daemon still answers everything.  A
    fixed-timeout manager would retransmit (or give up on) every poll; an
    adaptive one should raise that destination's RTO and keep polling
    cleanly once the estimator converges.
    """

    def __init__(
        self,
        sim: Simulator,
        agent,
        extra: float,
        at: float = 0.0,
        until: Optional[float] = None,
        events: Optional["EventBus"] = None,
    ) -> None:
        if extra <= 0:
            raise FaultError(f"non-positive extra delay {extra!r}")
        if until is not None and until <= at:
            raise FaultError(f"delay end {until!r} must follow start {at!r}")
        self.sim = sim
        self.agent = agent
        self.extra = extra
        self.events = events
        self.active = False
        sim.schedule_at(max(at, sim.now), self._begin)
        if until is not None:
            sim.schedule_at(max(until, sim.now), self._end)

    def _begin(self) -> None:
        self.active = True
        self.agent.response_delay += self.extra
        _publish(
            self.events, True, self.sim.now, self,
            agent=self.agent.name, extra=self.extra,
        )

    def _end(self) -> None:
        if self.active:
            self.agent.response_delay -= self.extra
            self.active = False
            _publish(self.events, False, self.sim.now, self, agent=self.agent.name)


class Flap:
    """A link that cycles down/up: down for ``down_for`` seconds, up for
    ``up_for``, repeating from ``at`` until ``until`` (inclusive of any
    cycle in progress -- the link is always restored at the end).

    The classic half-seated connector.  Exercises trap storms, the
    poller's oper-status backstop, and the health tracker's requirement
    of *consecutive* successes before declaring recovery.
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        at: float,
        down_for: float,
        up_for: float,
        until: Optional[float] = None,
        events: Optional["EventBus"] = None,
    ) -> None:
        if down_for <= 0 or up_for <= 0:
            raise FaultError(
                f"flap phases must be positive, got down {down_for!r} / up {up_for!r}"
            )
        if until is not None and until <= at:
            raise FaultError(f"flap end {until!r} must follow start {at!r}")
        self.sim = sim
        self.link = link
        self.at = at
        self.down_for = down_for
        self.up_for = up_for
        self.until = until
        self.events = events
        self.down = False
        self.flaps = 0  # completed down->up cycles
        sim.schedule_at(max(at, sim.now), self._go_down)

    def _go_down(self) -> None:
        if self.until is not None and self.sim.now >= self.until:
            return  # window closed while we were up: stay up
        self.down = True
        self.flaps += 1
        for iface in self.link.endpoints:
            iface.set_admin_up(False)
        _publish(
            self.events, True, self.sim.now, self,
            link=_link_label(self.link), flap=self.flaps,
        )
        self.sim.schedule(self.down_for, self._go_up)

    def _go_up(self) -> None:
        self.down = False
        for iface in self.link.endpoints:
            iface.set_admin_up(True)
        _publish(
            self.events, False, self.sim.now, self,
            link=_link_label(self.link), flap=self.flaps,
        )
        self.sim.schedule(self.up_for, self._go_down)
