"""Streaming subscriptions over the all-pairs bandwidth matrix.

The push-based consumption surface for the monitor's measurements:
instead of polling :class:`~repro.core.matrix.BandwidthMatrix` snapshots
and diffing them, a consumer registers a :class:`Subscription` (with a
bounded queue and an overflow policy) and receives typed events --
:class:`PairChanged`, :class:`PathDegraded`, :class:`PathRestored` --
for exactly the pairs it watches, driven by the incremental dataflow's
dirty-pair recomputation.  Standing :class:`ThresholdQuery` /
:class:`PercentileQuery` predicates evaluate incrementally on the same
feed, and :class:`QuantileDeadbandFilter` significance filters keep
sub-noise-floor twitches from ever becoming events.

Entry points: :meth:`repro.core.monitor.NetworkMonitor.enable_streaming`
wires a publisher into the monitor's emit cycle; ``repro stream`` on the
CLI demonstrates the surface end to end.
"""

from repro.stream.events import (
    TOPOLOGY_PAIR,
    PairChanged,
    PathDegraded,
    PathRerouted,
    PathRestored,
    ProbeDisagreement,
    QueryCleared,
    QueryFired,
    StreamEvent,
    TopologyChanged,
    pair_key,
)
from repro.stream.manager import (
    StreamError,
    SubscriptionManager,
    register_stream_metrics,
)
from repro.stream.publisher import MatrixPublisher
from repro.stream.queries import (
    ContinuousQuery,
    PercentileQuery,
    QueryError,
    ThresholdQuery,
)
from repro.stream.significance import (
    DeadbandFilter,
    QuantileDeadbandFilter,
    SignificanceFilter,
)
from repro.stream.subscription import (
    DEFAULT_QUEUE_BOUND,
    OverflowPolicy,
    Subscription,
)

__all__ = [
    "DEFAULT_QUEUE_BOUND",
    "ContinuousQuery",
    "DeadbandFilter",
    "MatrixPublisher",
    "OverflowPolicy",
    "PairChanged",
    "PathDegraded",
    "PathRerouted",
    "PathRestored",
    "PercentileQuery",
    "ProbeDisagreement",
    "QuantileDeadbandFilter",
    "QueryCleared",
    "QueryError",
    "QueryFired",
    "SignificanceFilter",
    "StreamError",
    "StreamEvent",
    "Subscription",
    "SubscriptionManager",
    "TOPOLOGY_PAIR",
    "ThresholdQuery",
    "TopologyChanged",
    "pair_key",
    "register_stream_metrics",
]
