#!/usr/bin/env python3
"""Dynamic topology discovery cross-checked against the specification.

The paper chose specification over discovery and suggested a hybrid as
future work (§5).  This example runs that hybrid on the Figure-3 testbed:

1. walk every known agent's identity, interface MACs and (for switches)
   the bridge-MIB forwarding table -- all as real SNMP traffic;
2. reconstruct who hangs off which switch port, flagging shared segments
   (the hub shows up as two hosts behind one port);
3. verify the declared specification against the discovered picture;
4. emit the inferred attachments as spec-language text.

Run:  python examples/topology_discovery.py
"""

from repro import build_testbed
from repro.core.discovery import TopologyDiscoverer
from repro.simnet.network import BROADCAST_IP
from repro.snmp.manager import SnmpManager


def main() -> None:
    build = build_testbed()
    net = build.network

    # Warm the switch's FDB: discovery can only see learned stations.
    net.run(1.0)
    for host in net.hosts.values():
        host.create_socket().sendto(10, (BROADCAST_IP, 520))
    net.run(2.0)

    manager = SnmpManager(net.host("L"))
    candidates = [
        (name, net.ip_of(name)) for name in ("L", "S1", "S2", "N1", "N2", "switch")
    ]
    discoverer = TopologyDiscoverer(manager, candidates)
    box = {}
    discoverer.discover(lambda result: box.update(result=result))
    net.run(60.0)  # let the SNMP walks complete
    result = box["result"]

    print("=== discovered attachments ===")
    for att in result.attachments:
        stations = list(att.known_nodes) + [str(m) for m in att.unknown_macs]
        shared = "  [shared segment]" if att.shared_segment else ""
        print(f"{att.switch} port {att.port}: {', '.join(stations)}{shared}")
    print(f"\nanonymous stations (no SNMP agent): {result.unknown_station_count()}")

    print("\n=== verification against the declared spec ===")
    findings = result.verify_against(build.spec)
    if findings:
        for finding in findings:
            print(f"- {finding}")
    else:
        print("every verifiable declaration confirmed")

    print("\nSNMP cost of discovery:", manager.requests_sent, "requests")


if __name__ == "__main__":
    main()
