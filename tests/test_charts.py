"""Tests for the ASCII chart renderer."""

import numpy as np
import pytest

from repro.analysis.charts import AsciiChart, ChartError, render_pair
from repro.experiments.scenarios import SeriesPair


def simple_chart(**kwargs):
    chart = AsciiChart(title="t", **kwargs)
    chart.add_series("s", [0.0, 1.0, 2.0], [0.0, 5.0, 10.0])
    return chart


class TestAsciiChart:
    def test_render_contains_axes_and_legend(self):
        text = simple_chart().render()
        assert "t" in text.splitlines()[0]
        assert "10.0" in text  # y max tick
        assert "0.0" in text  # y min tick
        assert "* s" in text  # legend
        assert "time (s)" in text

    def test_markers_appear(self):
        text = simple_chart().render()
        assert text.count("*") >= 3 + 1  # three points + legend

    def test_peak_on_top_row(self):
        chart = AsciiChart(height=6, width=30)
        chart.add_series("s", [0, 1, 2], [0, 0, 100])
        rows = [l for l in chart.render().splitlines() if "|" in l]
        assert "*" in rows[0]  # the 100 lands on the top row
        assert "*" in rows[-1]  # the zeros land on the bottom row

    def test_multiple_series_distinct_markers(self):
        chart = AsciiChart(width=40, height=8)
        chart.add_series("a", [0, 1], [1, 1], marker="a")
        chart.add_series("b", [0, 1], [2, 2], marker="b")
        text = chart.render()
        assert "a" in text and "b" in text

    def test_flat_zero_series_renders(self):
        chart = AsciiChart(width=30, height=5)
        chart.add_series("flat", [0, 1, 2], [0, 0, 0])
        chart.render()  # must not divide by zero

    def test_empty_series_rejected(self):
        chart = AsciiChart()
        with pytest.raises(ChartError):
            chart.add_series("e", [], [])

    def test_mismatched_lengths_rejected(self):
        chart = AsciiChart()
        with pytest.raises(ChartError):
            chart.add_series("e", [0, 1], [1])

    def test_bad_marker_rejected(self):
        chart = AsciiChart()
        with pytest.raises(ChartError):
            chart.add_series("e", [0], [1], marker="**")

    def test_no_series_rejected(self):
        with pytest.raises(ChartError):
            AsciiChart().render()

    def test_too_small_rejected(self):
        with pytest.raises(ChartError):
            AsciiChart(width=5, height=2)

    def test_width_respected(self):
        text = simple_chart(width=40, height=6).render()
        plot_rows = [l for l in text.splitlines() if "|" in l]
        assert all(len(row) <= 10 + 2 + 40 for row in plot_rows)


class TestRenderPair:
    def test_renders_generated_and_measured(self):
        pair = SeriesPair(
            label="p",
            times=np.array([0.0, 1.0, 2.0]),
            measured_kbps=np.array([0.0, 101.0, 99.0]),
            generated_kbps=np.array([0.0, 100.0, 100.0]),
        )
        text = render_pair(pair, title="demo")
        assert "demo" in text
        assert "generated" in text and "measured" in text
        assert "KB/s" in text
