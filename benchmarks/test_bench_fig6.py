"""Benchmark + regeneration of Figure 6 (hosts connected by a switch).

Asserts the paper's per-port isolation claim: the 2000 KB/s load to S2 is
visible only on path S1<->S2, the load to S3 only on S1<->S3, and the
load to S1 on both (S1 has a single switch connection).
"""

import numpy as np

from repro.experiments import fig6


def window_mean(pair, t0, t1):
    mask = (pair.times > t0) & (pair.times < t1)
    return float(pair.measured_kbps[mask].mean())


def test_bench_fig6_switch_isolation(benchmark, fig6_result):
    benchmark.pedantic(lambda: fig6.run(seed=1), rounds=1, iterations=1)
    print()
    for line in fig6.format_series(fig6_result, stride=3):
        print(line)
    for label, stats in sorted(fig6_result.stats.items()):
        print(f"{label}: mean %err {stats.mean_pct_error:.1f}, "
              f"max %err {stats.max_pct_error:.1f} "
              f"(paper: {fig6.PAPER_AVG_PCT_ERROR} / {fig6.PAPER_MAX_PCT_ERROR})")

    s2 = fig6_result.pairs["S1<->S2"]
    s3 = fig6_result.pairs["S1<->S3"]
    # Load to S2 only (20-40 s exclusive window used: 24-38):
    assert abs(window_mean(s2, 24, 38) - 2000) < 120
    assert window_mean(s3, 24, 38) < 60
    # Load to S3 only (60-80 s):
    assert abs(window_mean(s3, 64, 78) - 2000) < 120
    assert window_mean(s2, 64, 78) < 60
    # Load to S1: present on BOTH paths (100-120 s).
    assert abs(window_mean(s2, 104, 118) - 2000) < 120
    assert abs(window_mean(s3, 104, 118) - 2000) < 120
    # Idle tail.
    assert window_mean(s2, 125, 139) < 10
    # The paper: larger volume -> smaller average error (2.2 %).
    for stats in fig6_result.stats.values():
        assert stats.mean_pct_error < 5.0
        assert stats.max_pct_error < 25.0
