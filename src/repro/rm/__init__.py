"""Miniature DeSiDeRaTa resource-management middleware (the consumer).

The paper positions its monitor as a feed for DeSiDeRaTa, which "performs
QoS monitoring and failure detection, QoS diagnosis, and reallocation of
resources".  This package implements that consuming side, scoped to
network QoS:

- :mod:`repro.rm.qos`       -- per-path QoS requirements (from ``qospath``
  blocks in the spec language).
- :mod:`repro.rm.detector`  -- violation detection with hysteresis over
  the monitor's :class:`~repro.core.report.PathReport` stream.
- :mod:`repro.rm.diagnosis` -- bottleneck identification and
  classification (which connection, hub saturation vs port congestion).
- :mod:`repro.rm.allocator` -- reallocation advice: alternative host
  placements whose communication paths avoid the bottleneck.
- :mod:`repro.rm.middleware`-- event-loop integration tying it together.
"""

from repro.rm.allocator import PlacementAdvice, ReallocationAdvisor
from repro.rm.detector import QosEvent, QosState, ViolationDetector
from repro.rm.diagnosis import BottleneckDiagnosis, diagnose
from repro.rm.middleware import RmMiddleware
from repro.rm.qos import QosRequirement

__all__ = [
    "BottleneckDiagnosis",
    "PlacementAdvice",
    "QosEvent",
    "QosRequirement",
    "QosState",
    "ReallocationAdvisor",
    "RmMiddleware",
    "ViolationDetector",
    "diagnose",
]
