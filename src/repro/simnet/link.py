"""Point-to-point duplex links.

A :class:`Link` joins exactly two interfaces -- the paper's connection
model is strictly 1-to-1 ("one interface may only be connected to one
interface on another host/device").  Each direction is an independent
:class:`_Channel` that serialises frames at the link bandwidth through a
bounded FIFO queue and delivers them after a propagation delay.

Bandwidth defaults to the *minimum* of the two endpoint interface speeds,
which is how a real auto-negotiated Ethernet segment behaves (a 100 Mb/s
NIC plugged into a 10 Mb/s hub runs at 10 Mb/s).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional, Tuple

from repro.simnet.engine import Simulator
from repro.simnet.packet import EthernetFrame

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.nic import Interface

DEFAULT_QUEUE_BYTES = 262_144  # 256 KiB of buffering per direction
DEFAULT_PROP_DELAY = 5e-6  # ~1 km of copper; negligible vs transmission time


class LinkError(RuntimeError):
    """Raised for wiring mistakes (re-attaching a connected interface...)."""


class _Channel:
    """One direction of a link: FIFO queue + serialiser + propagation."""

    __slots__ = (
        "sim",
        "bandwidth_bps",
        "prop_delay",
        "queue",
        "queue_bytes",
        "max_queue_bytes",
        "busy",
        "dst",
        "frames_delivered",
        "octets_delivered",
        "frames_dropped",
        "octets_dropped",
        "drop_filter",
    )

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float,
        prop_delay: float,
        max_queue_bytes: int,
        dst: "Interface",
    ) -> None:
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.prop_delay = prop_delay
        self.queue: Deque[EthernetFrame] = deque()
        self.queue_bytes = 0
        self.max_queue_bytes = max_queue_bytes
        self.busy = False
        self.dst = dst
        self.frames_delivered = 0
        self.octets_delivered = 0
        self.frames_dropped = 0
        self.octets_dropped = 0
        # Optional fault hook (see repro.simnet.faults.PacketLoss): called
        # per frame; returning True drops it before it enqueues.
        self.drop_filter = None

    def send(self, frame: EthernetFrame) -> bool:
        """Accept a frame for transmission; False means tail-drop."""
        if self.drop_filter is not None and self.drop_filter(frame):
            self.frames_dropped += 1
            self.octets_dropped += frame.size
            return False
        if self.queue_bytes + frame.size > self.max_queue_bytes:
            self.frames_dropped += 1
            self.octets_dropped += frame.size
            return False
        self.queue.append(frame)
        self.queue_bytes += frame.size
        if not self.busy:
            self._start_next()
        return True

    def _start_next(self) -> None:
        if not self.queue:
            self.busy = False
            return
        self.busy = True
        frame = self.queue.popleft()
        self.queue_bytes -= frame.size
        tx_time = frame.size * 8.0 / self.bandwidth_bps
        self.sim.schedule(tx_time, self._tx_done, frame)

    def _tx_done(self, frame: EthernetFrame) -> None:
        self.sim.schedule(self.prop_delay, self._deliver, frame)
        self._start_next()

    def _deliver(self, frame: EthernetFrame) -> None:
        self.frames_delivered += 1
        self.octets_delivered += frame.size
        self.dst.deliver(frame)

    @property
    def utilization_estimate(self) -> float:
        """Instantaneous queue occupancy as a fraction of buffer space."""
        return self.queue_bytes / self.max_queue_bytes if self.max_queue_bytes else 0.0


class Link:
    """A duplex physical connection between two interfaces."""

    def __init__(
        self,
        sim: Simulator,
        end_a: "Interface",
        end_b: "Interface",
        bandwidth_bps: Optional[float] = None,
        prop_delay: float = DEFAULT_PROP_DELAY,
        max_queue_bytes: int = DEFAULT_QUEUE_BYTES,
    ) -> None:
        if end_a is end_b:
            raise LinkError("cannot connect an interface to itself")
        if end_a.link is not None:
            raise LinkError(f"interface {end_a.full_name} is already connected")
        if end_b.link is not None:
            raise LinkError(f"interface {end_b.full_name} is already connected")
        if bandwidth_bps is None:
            bandwidth_bps = min(end_a.speed_bps, end_b.speed_bps)
        if bandwidth_bps <= 0:
            raise LinkError(f"non-positive bandwidth {bandwidth_bps!r}")
        self.sim = sim
        self.end_a = end_a
        self.end_b = end_b
        self.bandwidth_bps = float(bandwidth_bps)
        self._a_to_b = _Channel(sim, self.bandwidth_bps, prop_delay, max_queue_bytes, end_b)
        self._b_to_a = _Channel(sim, self.bandwidth_bps, prop_delay, max_queue_bytes, end_a)
        end_a.attach(self)
        end_b.attach(self)

    def send_from(self, src: "Interface", frame: EthernetFrame) -> bool:
        """Transmit ``frame`` out of endpoint ``src``; False on tail-drop."""
        if src is self.end_a:
            return self._a_to_b.send(frame)
        if src is self.end_b:
            return self._b_to_a.send(frame)
        raise LinkError(f"{src.full_name} is not an endpoint of this link")

    def peer_of(self, iface: "Interface") -> "Interface":
        """The interface on the other end of the link."""
        if iface is self.end_a:
            return self.end_b
        if iface is self.end_b:
            return self.end_a
        raise LinkError(f"{iface.full_name} is not an endpoint of this link")

    def channel_from(self, src: "Interface") -> _Channel:
        """Expose the directional channel for tests and diagnostics."""
        if src is self.end_a:
            return self._a_to_b
        if src is self.end_b:
            return self._b_to_a
        raise LinkError(f"{src.full_name} is not an endpoint of this link")

    @property
    def endpoints(self) -> Tuple["Interface", "Interface"]:
        return (self.end_a, self.end_b)

    @property
    def total_drops(self) -> int:
        return self._a_to_b.frames_dropped + self._b_to_a.frames_dropped

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Link {self.end_a.full_name} <-> {self.end_b.full_name} "
            f"{self.bandwidth_bps / 1e6:.0f} Mb/s>"
        )
