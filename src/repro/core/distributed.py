"""Distributed network monitoring -- paper §5 future work.

One monitor polling every agent from one host (the paper's design) makes
that host's links a hot spot and scales linearly in one manager's request
load.  The distributed variant partitions the SNMP targets across several
*worker* hosts; each worker polls its share locally and ships the derived
rate samples to a *coordinator* host as compact UDP report datagrams over
the same simulated network.  The coordinator merges them into one
:class:`~repro.core.poller.RateTable` and computes path reports exactly
like the single monitor.

Everything -- polls, responses, report shipping -- is real simulated
traffic, so the monitoring system's own footprint remains measurable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.bandwidth import BandwidthCalculator
from repro.core.counters import required_poll_targets
from repro.core.history import MeasurementHistory
from repro.core.poller import InterfaceRates, PollTarget, RateTable, SnmpPoller
from repro.core.report import PathReport
from repro.core.traversal import find_path
from repro.simnet.address import IPv4Address
from repro.snmp.manager import SnmpManager
from repro.spec.builder import BuildResult

REPORT_PORT = 8765


def encode_sample(sample: InterfaceRates) -> bytes:
    """Wire form of one rate sample (JSON keeps it debuggable)."""
    return json.dumps(
        {
            "n": sample.node,
            "i": sample.if_index,
            "t": sample.time,
            "d": sample.interval,
            "ib": sample.in_bytes_per_s,
            "ob": sample.out_bytes_per_s,
            "ip": sample.in_pkts_per_s,
            "op": sample.out_pkts_per_s,
        }
    ).encode()


def decode_sample(payload: bytes) -> InterfaceRates:
    doc = json.loads(payload.decode())
    return InterfaceRates(
        node=doc["n"],
        if_index=int(doc["i"]),
        time=float(doc["t"]),
        interval=float(doc["d"]),
        in_bytes_per_s=float(doc["ib"]),
        out_bytes_per_s=float(doc["ob"]),
        in_pkts_per_s=float(doc["ip"]),
        out_pkts_per_s=float(doc["op"]),
    )


class MonitorWorker:
    """One polling worker: a manager + poller on its own host."""

    def __init__(
        self,
        build: BuildResult,
        host_name: str,
        targets: Sequence[PollTarget],
        coordinator_ip: IPv4Address,
        poll_interval: float,
        jitter: float,
        seed: int,
    ) -> None:
        self.host = build.network.host(host_name)
        self.manager = SnmpManager(self.host)
        self.poller = SnmpPoller(
            self.manager,
            targets,
            interval=poll_interval,
            jitter=jitter,
            seed=seed,
            rate_table=RateTable(keep_history=False),
        )
        self.poller.on_sample = self._ship
        self._socket = self.host.create_socket()
        self.coordinator_ip = coordinator_ip
        self.samples_shipped = 0

    def _ship(self, sample: InterfaceRates) -> None:
        self.samples_shipped += 1
        self._socket.sendto(encode_sample(sample), (self.coordinator_ip, REPORT_PORT))

    def start(self, at: Optional[float] = None) -> None:
        self.poller.start(first_poll_at=at)

    def stop(self) -> None:
        self.poller.stop()
        self.manager.cancel_all()  # drop in-flight polls so nothing ships late


class DistributedMonitor:
    """Coordinator + workers implementing the distributed design.

    ``worker_hosts`` take the polling load; ``coordinator_host`` receives
    their samples and serves path reports.  Target assignment is
    affinity-first: a worker polling itself costs loopback only; the rest
    round-robins deterministically.
    """

    def __init__(
        self,
        build: BuildResult,
        coordinator_host: str,
        worker_hosts: Sequence[str],
        poll_interval: float = 2.0,
        poll_jitter: float = 0.05,
        report_offset: float = 0.5,
        seed: int = 0,
    ) -> None:
        if not worker_hosts:
            raise ValueError("need at least one worker host")
        self.build = build
        self.spec = build.spec
        self.network = build.network
        self.sim = self.network.sim
        self.poll_interval = poll_interval
        self.report_offset = report_offset
        self.coordinator = self.network.host(coordinator_host)
        self.rates = RateTable()
        self.calculator = BandwidthCalculator(self.spec, self.rates)
        self.history = MeasurementHistory()
        self._watches: Dict[str, tuple] = {}
        self._subscribers: List[Callable[[PathReport], None]] = []
        self._report_task = None
        self.samples_received = 0
        self.decode_errors = 0

        self._sink = self.coordinator.create_socket(REPORT_PORT)
        self._sink.on_receive = self._on_sample_datagram

        assignments = self._partition(list(worker_hosts))
        coordinator_ip = self.coordinator.primary_ip
        self.workers: Dict[str, MonitorWorker] = {
            name: MonitorWorker(
                build, name, targets, coordinator_ip, poll_interval, poll_jitter,
                seed=seed + i,
            )
            for i, (name, targets) in enumerate(sorted(assignments.items()))
            if targets
        }

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------
    def _partition(self, worker_hosts: List[str]) -> Dict[str, List[PollTarget]]:
        needed = required_poll_targets(self.spec, list(self.spec.connections))
        assignments: Dict[str, List[PollTarget]] = {w: [] for w in worker_hosts}
        leftovers = []
        for node_name, if_indexes in sorted(needed.items()):
            target = PollTarget(
                node=node_name,
                address=self.network.ip_of(node_name),
                if_indexes=if_indexes,
                community=self.spec.node(node_name).snmp_community,
            )
            if node_name in assignments:
                assignments[node_name].append(target)  # affinity: poll thyself
            else:
                leftovers.append(target)
        for i, target in enumerate(leftovers):
            assignments[worker_hosts[i % len(worker_hosts)]].append(target)
        return assignments

    def targets_of(self, worker: str) -> List[str]:
        return [t.node for t in self.workers[worker].poller.targets]

    # ------------------------------------------------------------------
    # Sample ingestion
    # ------------------------------------------------------------------
    def _on_sample_datagram(self, payload, size, src_ip, src_port) -> None:
        if payload is None:
            self.decode_errors += 1
            return
        try:
            sample = decode_sample(payload)
        except (ValueError, KeyError):
            self.decode_errors += 1
            return
        self.samples_received += 1
        self.rates.update(sample)

    # ------------------------------------------------------------------
    # Watch / report surface (mirrors NetworkMonitor)
    # ------------------------------------------------------------------
    def watch_path(self, src: str, dst: str, name: Optional[str] = None) -> str:
        label = name if name else f"{src}<->{dst}"
        if label in self._watches:
            raise ValueError(f"watch {label!r} exists")
        self._watches[label] = (src, dst, find_path(self.spec, src, dst))
        return label

    def subscribe(self, callback: Callable[[PathReport], None]) -> None:
        self._subscribers.append(callback)

    def start(self, at: Optional[float] = None) -> None:
        start = self.sim.now if at is None else at
        for worker in self.workers.values():
            worker.start(at=start)
        self._report_task = self.sim.call_every(
            self.poll_interval,
            self._emit_reports,
            start=start + self.poll_interval + self.report_offset,
        )

    def stop(self) -> None:
        for worker in self.workers.values():
            worker.stop()
        if self._report_task is not None:
            self._report_task.cancel()
            self._report_task = None

    def _emit_reports(self) -> None:
        for label, (src, dst, path) in self._watches.items():
            report = self.calculator.measure_path(
                path, src, dst, time=self.sim.now, name=label
            )
            self.history.append(report)
            for callback in self._subscribers:
                callback(report)

    def stats(self) -> Dict[str, float]:
        return {
            "workers": len(self.workers),
            "samples_received": self.samples_received,
            "decode_errors": self.decode_errors,
            "per_worker_requests": {
                name: w.manager.requests_sent for name, w in self.workers.items()
            },
        }
