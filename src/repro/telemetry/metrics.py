"""Metric primitives and the registry the monitor publishes through.

Three primitives, deliberately prometheus-shaped:

- :class:`Counter` -- a monotonically increasing count (requests sent,
  timeouts, reports emitted).
- :class:`Gauge` -- a value that goes both ways (agents currently
  healthy).  A gauge may be *function-backed*: reading it evaluates a
  callable, so state that already lives elsewhere (the health tracker)
  is sampled at collection time instead of being mirrored on every
  change.
- :class:`Histogram` -- a streaming distribution summary: count, sum,
  min, max and a set of quantiles tracked incrementally in O(1) memory
  (see :mod:`repro.telemetry.quantile`), never a sample buffer.

Metrics are created through :class:`MetricsRegistry`, which owns the
namespace, deduplicates families, and supports labels::

    reg = MetricsRegistry()
    rtt = reg.histogram("snmp_rtt_seconds", "poll RTT", labelnames=("agent",))
    rtt.labels(agent="S1").observe(0.0017)
    reg.value("snmp_rtt_seconds", agent="S1")  # -> quantile/summary dict

Registration is get-or-create: asking twice for the same family returns
the same object, so independently-constructed components (manager,
poller, monitor) can share one registry without coordination.
"""

from __future__ import annotations

import math
import re
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.telemetry.quantile import EwmaQuantile, P2Quantile

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

DEFAULT_QUANTILES = (0.5, 0.9, 0.99)


class MetricError(ValueError):
    """Raised for invalid metric names, labels, or kind mismatches."""


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise MetricError(f"counter increments must be >= 0, got {amount!r}")
        self._value += amount

    @property
    def value(self) -> Union[int, float]:
        return self._value


class Gauge:
    """A value that can rise and fall, or track a callable."""

    __slots__ = ("_value", "_fn")

    def __init__(self) -> None:
        self._value: float = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self._fn = None
        self._value = value

    def inc(self, amount: float = 1.0) -> None:
        self._fn = None
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Read ``fn()`` at every collection instead of a stored value."""
        self._fn = fn

    @property
    def value(self) -> float:
        return self._fn() if self._fn is not None else self._value


class Histogram:
    """Streaming distribution summary with incremental quantiles."""

    __slots__ = ("count", "sum", "min", "max", "_estimators")

    def __init__(
        self,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        estimator: str = "p2",
        ewma_weight: float = 0.05,
    ) -> None:
        if not quantiles:
            raise MetricError("histogram needs at least one target quantile")
        if estimator not in ("p2", "ewma"):
            raise MetricError(f"unknown estimator {estimator!r}; use 'p2' or 'ewma'")
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        if estimator == "p2":
            self._estimators = {q: P2Quantile(q) for q in quantiles}
        else:
            self._estimators = {q: EwmaQuantile(q, ewma_weight) for q in quantiles}

    def observe(self, x: float) -> None:
        self.count += 1
        self.sum += x
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        for est in self._estimators.values():
            est.observe(x)

    def quantile(self, q: float) -> float:
        """Current estimate for a tracked quantile (NaN when empty)."""
        try:
            return self._estimators[q].value
        except KeyError:
            raise MetricError(
                f"quantile {q!r} not tracked; tracked: {sorted(self._estimators)}"
            ) from None

    def quantiles(self) -> Dict[float, float]:
        return {q: est.value for q, est in sorted(self._estimators.items())}

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    @property
    def value(self) -> Dict[str, object]:
        """Summary dict (what ``MetricsRegistry.value`` returns)."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else math.nan,
            "max": self.max if self.count else math.nan,
            "mean": self.mean,
            "quantiles": self.quantiles(),
        }


class MetricFamily:
    """One named metric and its labelled children.

    A family with no ``labelnames`` has exactly one (anonymous) child and
    proxies the child's mutators, so unlabelled metrics read naturally:
    ``reg.counter("poll_cycles_total").inc()``.
    """

    __slots__ = ("name", "kind", "help", "labelnames", "_children", "_make", "_default")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Tuple[str, ...],
        make: Callable[[], object],
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = labelnames
        self._make = make
        self._children: Dict[Tuple[str, ...], object] = {}
        self._default = None if labelnames else make()

    # -- labelled access ------------------------------------------------
    def labels(self, **labels: str) -> object:
        if not self.labelnames:
            raise MetricError(f"metric {self.name!r} takes no labels")
        try:
            key = tuple(str(labels[ln]) for ln in self.labelnames)
        except KeyError as missing:
            raise MetricError(
                f"metric {self.name!r} needs labels {self.labelnames}, got "
                f"{sorted(labels)}"
            ) from missing
        if len(labels) != len(self.labelnames):
            extra = set(labels) - set(self.labelnames)
            raise MetricError(f"unexpected labels {sorted(extra)} for {self.name!r}")
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make()
        return child

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        """(label-values, child) pairs; one ``((), child)`` when unlabelled."""
        if not self.labelnames:
            return [((), self._default)]
        return sorted(self._children.items())

    # -- unlabelled proxying --------------------------------------------
    def _only(self):
        if self._default is None:
            raise MetricError(
                f"metric {self.name!r} is labelled by {self.labelnames}; "
                f"use .labels(...)"
            )
        return self._default

    def inc(self, amount: Union[int, float] = 1) -> None:
        self._only().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._only().dec(amount)

    def set(self, value: float) -> None:
        self._only().set(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        self._only().set_function(fn)

    def observe(self, x: float) -> None:
        self._only().observe(x)

    def quantile(self, q: float) -> float:
        return self._only().quantile(q)

    def quantiles(self) -> Dict[float, float]:
        return self._only().quantiles()

    @property
    def count(self) -> int:
        return self._only().count

    @property
    def value(self):
        return self._only().value


class MetricsRegistry:
    """Owns the metric namespace; everything exportable lives here."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    # ------------------------------------------------------------------
    # Registration (get-or-create)
    # ------------------------------------------------------------------
    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, "counter", help, labelnames, Counter)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, "gauge", help, labelnames, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        estimator: str = "p2",
        ewma_weight: float = 0.05,
    ) -> MetricFamily:
        quantiles = tuple(quantiles)
        return self._register(
            name,
            "histogram",
            help,
            labelnames,
            lambda: Histogram(quantiles, estimator, ewma_weight),
        )

    def _register(self, name, kind, help, labelnames, make) -> MetricFamily:
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        labelnames = tuple(labelnames)
        for ln in labelnames:
            if not _LABEL_RE.match(ln):
                raise MetricError(f"invalid label name {ln!r} on {name!r}")
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind or family.labelnames != labelnames:
                raise MetricError(
                    f"metric {name!r} already registered as {family.kind} with "
                    f"labels {family.labelnames}; cannot re-register as {kind} "
                    f"with {labelnames}"
                )
            return family
        family = MetricFamily(name, kind, help or name, labelnames, make)
        self._families[name] = family
        return family

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def get(self, name: str) -> MetricFamily:
        try:
            return self._families[name]
        except KeyError:
            raise MetricError(f"no metric named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def families(self) -> List[MetricFamily]:
        return [self._families[name] for name in sorted(self._families)]

    def value(self, name: str, **labels: str):
        """Current value of one metric child (tests and ``stats()``)."""
        family = self.get(name)
        child = family.labels(**labels) if labels else family._only()
        return child.value

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready dump of every family and child."""
        out: Dict[str, object] = {}
        for family in self.families():
            entries = []
            for label_values, child in family.children():
                entries.append(
                    {
                        "labels": dict(zip(family.labelnames, label_values)),
                        "value": child.value,
                    }
                )
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "values": entries,
            }
        return out
