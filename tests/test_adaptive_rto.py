"""Tests for adaptive retransmission timeouts (RFC 6298 style)."""

import pytest

from repro.simnet.faults import ResponseDelay
from repro.simnet.network import Network
from repro.snmp.agent import SnmpAgent
from repro.snmp.manager import (
    DEFAULT_MIN_RTO,
    RtoEstimator,
    SnmpManager,
)
from repro.snmp.mib import SYS_NAME, build_mib2


class TestRtoEstimator:
    def test_initial_rto_until_first_sample(self):
        est = RtoEstimator(initial=1.5)
        assert est.rto == 1.5
        assert est.samples == 0

    def test_first_sample_seeds_srtt_and_rttvar(self):
        est = RtoEstimator(initial=1.0, min_rto=0.0)
        est.observe(0.2)
        assert est.srtt == pytest.approx(0.2)
        assert est.rttvar == pytest.approx(0.1)
        assert est.rto == pytest.approx(0.2 + 4 * 0.1)

    def test_converges_toward_steady_rtt(self):
        est = RtoEstimator(initial=1.0, min_rto=0.0)
        for _ in range(50):
            est.observe(0.1)
        assert est.srtt == pytest.approx(0.1, rel=0.01)
        # Variance decays toward zero on a steady stream.
        assert est.rto < 0.15

    def test_min_and_max_clamps(self):
        est = RtoEstimator(initial=1.0, min_rto=0.25, max_rto=2.0)
        for _ in range(50):
            est.observe(0.001)
        assert est.rto == 0.25
        est2 = RtoEstimator(initial=1.0, min_rto=0.25, max_rto=2.0)
        est2.observe(10.0)
        assert est2.rto == 2.0

    def test_backoff_doubles_per_attempt(self):
        est = RtoEstimator(initial=0.5, max_rto=3.0)
        assert est.timeout_for(1) == 0.5
        assert est.timeout_for(2) == 1.0
        assert est.timeout_for(3) == 2.0
        assert est.timeout_for(4) == 3.0  # clamped

    def test_negative_sample_ignored(self):
        est = RtoEstimator(initial=1.0)
        est.observe(-0.1)
        assert est.samples == 0


def agent_pair(extra_delay=None, delay_at=0.0):
    """Monitor host plus two agent hosts, one optionally slowed."""
    net = Network()
    mon = net.add_host("L")
    fast = net.add_host("F")
    slow = net.add_host("S")
    sw = net.add_switch("sw", 6, managed=False)
    for h in (mon, fast, slow):
        net.connect(h, sw)
    net.announce_hosts()
    SnmpAgent(fast, build_mib2(fast, net.sim))
    slow_agent = SnmpAgent(slow, build_mib2(slow, net.sim))
    if extra_delay is not None:
        ResponseDelay(net.sim, slow_agent, extra=extra_delay, at=delay_at)
    manager = SnmpManager(mon, timeout=1.0, retries=2)
    return net, manager, fast, slow


def poll_every(net, manager, host, period, count, start=0.0):
    for i in range(count):
        net.sim.schedule_at(
            start + i * period,
            lambda: manager.get(host.primary_ip, [SYS_NAME], lambda vbs: None),
        )


class TestManagerAdaptation:
    def test_rto_converges_down_for_fast_agent(self):
        net, manager, fast, slow = agent_pair()
        poll_every(net, manager, fast, 1.0, 10)
        net.run(12.0)
        # LAN RTT is milliseconds; the floor stops the collapse.
        assert manager.current_rto(fast.primary_ip) == DEFAULT_MIN_RTO
        stats = manager.destination_stats(fast.primary_ip)
        assert stats.responses == 10
        assert stats.retransmissions == 0
        assert stats.last_rtt is not None and stats.last_rtt < 0.05

    def test_slow_agent_raises_its_own_rto_only(self):
        """The acceptance case: a ResponseDelay fault raises the slow
        destination's timeout past the injected delay, and once the
        estimator converges no further retransmissions fire."""
        # Ten clean polls first, so the RTO converges down to the floor
        # (0.25 s) before the agent turns slow (+0.6 s) at t=10.
        net, manager, fast, slow = agent_pair(extra_delay=0.6, delay_at=10.0)
        poll_every(net, manager, fast, 1.0, 30)
        poll_every(net, manager, slow, 1.0, 30)
        net.run(36.0)
        assert manager.current_rto(slow.primary_ip) > 0.6
        assert manager.current_rto(fast.primary_ip) == DEFAULT_MIN_RTO
        slow_stats = manager.destination_stats(slow.primary_ip)
        # Every request was eventually answered -- the slow agent is alive.
        assert slow_stats.responses == 30
        assert slow_stats.timeouts == 0
        # Right after the slowdown the converged-low RTO fires spurious
        # retransmits; adaptation must then stop them entirely.
        early = slow_stats.retransmissions
        assert early > 0
        mark = manager.retransmissions
        poll_every(net, manager, slow, 1.0, 10, start=36.0)
        net.run(50.0)
        assert manager.destination_stats(slow.primary_ip).responses == 40
        assert manager.retransmissions == mark  # zero new retransmits

    def test_estimators_are_per_destination(self):
        net, manager, fast, slow = agent_pair(extra_delay=0.6)
        poll_every(net, manager, fast, 1.0, 10)
        poll_every(net, manager, slow, 1.0, 10)
        net.run(15.0)
        assert (
            manager.current_rto(slow.primary_ip)
            > manager.current_rto(fast.primary_ip)
        )

    def test_legacy_fixed_timeout_mode(self):
        net, manager, fast, slow = agent_pair()
        fixed = SnmpManager(net.host("L"), timeout=0.7, retries=1, adaptive=False)
        fixed.get(fast.primary_ip, [SYS_NAME], lambda vbs: None)
        net.run(5.0)
        assert fixed.current_rto(fast.primary_ip) == 0.7
        assert fixed.responses_received == 1

    def test_timeout_counted_per_destination(self):
        net, manager, fast, slow = agent_pair()
        errors = []
        # The monitor host runs no agent: requests to it die.
        manager.get(net.host("L").primary_ip, [SYS_NAME], lambda vbs: None, errors.append)
        net.run(20.0)
        assert len(errors) == 1
        stats = manager.destination_stats(net.host("L").primary_ip)
        assert stats.timeouts == 1
        assert stats.retransmissions == 2  # retries=2
        assert stats.responses == 0
