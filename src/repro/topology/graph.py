"""Graph view of a :class:`~repro.topology.model.TopologySpec`.

Provides the adjacency structure the monitor's recursive path traversal
walks, connectivity/cycle queries used by spec validation, and a networkx
export for analysis and visualisation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.topology.model import ConnectionSpec, TopologyError, TopologySpec


class TopologyGraph:
    """Adjacency over nodes, with connections as edges."""

    def __init__(self, spec: TopologySpec) -> None:
        self.spec = spec
        self._adjacency: Dict[str, List[Tuple[ConnectionSpec, str]]] = {
            node.name: [] for node in spec.nodes
        }
        for conn in spec.connections:
            for end, other in ((conn.end_a, conn.end_b), (conn.end_b, conn.end_a)):
                if end.node not in self._adjacency:
                    raise TopologyError(f"connection {conn} references unknown node {end.node!r}")
                self._adjacency[end.node].append((conn, other.node))
        # Memoized traversal results (see repro.core.traversal.find_path).
        # The adjacency above is immutable, so paths stay valid until a
        # caller declares the topology changed via invalidate_paths().
        # None records a proven miss (disconnected pair).
        self._path_cache: Dict[Tuple[str, str], Optional[Tuple[ConnectionSpec, ...]]] = {}
        self.topology_epoch = 0

    # ------------------------------------------------------------------
    # Path memoization
    # ------------------------------------------------------------------
    def cached_path(
        self, src: str, dst: str
    ) -> Tuple[bool, Optional[Tuple[ConnectionSpec, ...]]]:
        """``(hit, path)``; path is None for a memoized disconnection."""
        try:
            return True, self._path_cache[(src, dst)]
        except KeyError:
            return False, None

    def store_path(
        self, src: str, dst: str, path: Optional[Tuple[ConnectionSpec, ...]]
    ) -> None:
        self._path_cache[(src, dst)] = path

    def invalidate_paths(self) -> None:
        """Topology changed: flush every memoized path, bump the epoch."""
        self._path_cache.clear()
        self.topology_epoch += 1

    def neighbors(self, node_name: str) -> List[Tuple[ConnectionSpec, str]]:
        """Connections leaving ``node_name`` with the peer node name."""
        try:
            return list(self._adjacency[node_name])
        except KeyError:
            raise TopologyError(f"no node named {node_name!r}") from None

    def degree(self, node_name: str) -> int:
        return len(self.neighbors(node_name))

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    def reachable_from(self, start: str) -> Set[str]:
        if start not in self._adjacency:
            raise TopologyError(f"no node named {start!r}")
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for _conn, peer in self._adjacency[node]:
                if peer not in seen:
                    seen.add(peer)
                    frontier.append(peer)
        return seen

    def is_connected(self) -> bool:
        if not self._adjacency:
            return True
        first = next(iter(self._adjacency))
        return self.reachable_from(first) == set(self._adjacency)

    def has_cycle(self) -> bool:
        """True when the physical topology contains a layer-2 loop.

        Loops matter because neither the simulated devices nor the paper's
        testbed run spanning-tree; validation warns on them.
        """
        parent: Dict[str, str] = {}

        def find(x: str) -> str:
            while parent.get(x, x) != x:
                parent[x] = parent.get(parent[x], parent[x])
                x = parent[x]
            return x

        for conn in self.spec.connections:
            ra, rb = find(conn.end_a.node), find(conn.end_b.node)
            if ra == rb:
                return True
            parent[ra] = rb
        return False

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_networkx(self) -> "nx.MultiGraph":
        """A MultiGraph (parallel links are legal between two devices)."""
        graph = nx.MultiGraph(name=self.spec.name)
        for node in self.spec.nodes:
            graph.add_node(
                node.name,
                kind=node.kind.value,
                snmp=node.snmp_enabled,
                os=node.os_label,
            )
        for conn in self.spec.connections:
            graph.add_edge(
                conn.end_a.node,
                conn.end_b.node,
                interface_a=conn.end_a.interface,
                interface_b=conn.end_b.interface,
                bandwidth_bps=self.spec.effective_bandwidth(conn),
            )
        return graph

    def shortest_hop_path(self, src: str, dst: str) -> Optional[List[str]]:
        """Node names along a minimum-hop path, or None if disconnected."""
        graph = self.to_networkx()
        try:
            return nx.shortest_path(graph, src, dst)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None
