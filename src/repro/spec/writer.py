"""Serialise a :class:`TopologySpec` back to specification text.

Provides the round-trip (``parse(write(spec)) == spec`` up to formatting)
that keeps generated topologies, e.g. from the dynamic-discovery
extension, expressible in the same language operators edit by hand.
"""

from __future__ import annotations

from typing import List

from repro.topology.model import DeviceKind, NodeSpec, TopologySpec


def _format_rate(bps: float) -> str:
    """Pick the tersest exact unit for a bits/second value."""
    for unit, factor in (("Gbps", 1e9), ("Mbps", 1e6), ("Kbps", 1e3)):
        scaled = bps / factor
        if scaled >= 1 and scaled == int(scaled):
            return f"{int(scaled)} {unit}"
    if bps == int(bps):
        return f"{int(bps)} bps"
    return f"{bps} bps"


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _write_host(node: NodeSpec, out: List[str]) -> None:
    out.append(f"    host {node.name} {{")
    if node.os_label != "generic":
        out.append(f'        os "{_escape(node.os_label)}";')
    if node.snmp_enabled:
        out.append(f'        snmp community "{_escape(node.snmp_community)}";')
    for key, value in sorted(node.attributes.items()):
        out.append(f'        {key} "{_escape(value)}";')
    for iface in node.interfaces:
        out.append(f"        interface {iface.local_name} {{")
        out.append(f"            speed {_format_rate(iface.speed_bps)};")
        if iface.mtu != 1500:
            out.append(f"            mtu {iface.mtu};")
        out.append("        }")
    out.append("    }")


def _write_device(node: NodeSpec, out: List[str]) -> None:
    out.append(f"    {node.kind.value} {node.name} {{")
    if node.snmp_enabled:
        out.append(f'        snmp community "{_escape(node.snmp_community)}";')
    for key, value in sorted(node.attributes.items()):
        out.append(f'        {key} "{_escape(value)}";')
    speed = node.interfaces[0].speed_bps if node.interfaces else 100e6
    out.append(f"        ports {len(node.interfaces)} speed {_format_rate(speed)};")
    out.append("    }")


def write_spec(spec: TopologySpec) -> str:
    """Render ``spec`` as parseable specification text."""
    out: List[str] = [f"network topology {spec.name} {{"]
    for node in spec.nodes:
        if node.kind is DeviceKind.HOST:
            _write_host(node, out)
        else:
            _write_device(node, out)
    if spec.connections:
        out.append("")
    for conn in spec.connections:
        suffix = ""
        if conn.bandwidth_bps is not None:
            suffix = f" [ bandwidth {_format_rate(conn.bandwidth_bps)} ]"
        out.append(f"    connect {conn.end_a} <-> {conn.end_b}{suffix};")
    if spec.qos_paths:
        out.append("")
    for path in spec.qos_paths:
        out.append(f"    qospath {path.name} {{")
        out.append(f"        from {path.src} to {path.dst};")
        if path.min_available_bps is not None:
            out.append(f"        min_available {_format_rate(path.min_available_bps)};")
        if path.max_utilization is not None:
            out.append(f"        max_utilization {path.max_utilization};")
        out.append("    }")
    if spec.applications:
        out.append("")
    for app in spec.applications:
        out.append(f"    application {app.name} {{")
        out.append(f"        on {app.host};")
        for flow in app.flows:
            out.append(
                f"        sends to {flow.dst_app} rate {_format_rate(flow.rate_bps)};"
            )
        out.append("    }")
    out.append("}")
    return "\n".join(out) + "\n"
