"""Integrity-pipeline overhead guard on the Figure-4 poll cycle.

Runs the Figure-4 scenario with the measurement-integrity pipeline
enabled vs disabled and asserts the validated run costs at most 10 %
more wall time.  On a fault-free run the pipeline must also be
invisible: every sample admitted, identical measured series.
"""

import time

import numpy as np

from repro.experiments import fig4

ROUNDS = 3
MAX_OVERHEAD_RATIO = 1.10


def _best_of(fn, rounds=ROUNDS):
    """Minimum wall time over ``rounds`` runs (noise-robust estimator)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_integrity_overhead_under_ten_percent():
    baseline_result = fig4.run(seed=0, integrity=False)
    validated_result = fig4.run(seed=0, integrity=True)

    # Validation must observe, never perturb: identical measured series
    # and no sample withheld on a clean run.
    np.testing.assert_array_equal(
        baseline_result.pair.measured_kbps,
        validated_result.pair.measured_kbps,
    )
    stats = validated_result.monitor_stats
    assert stats["integrity_violations"] == 0
    assert stats["integrity_rejected"] == 0
    assert stats["samples"] == baseline_result.monitor_stats["samples"]

    off = _best_of(lambda: fig4.run(seed=0, integrity=False))
    on = _best_of(lambda: fig4.run(seed=0, integrity=True))
    ratio = on / off
    print(
        f"\nfig4 wall time: integrity off {off:.3f}s, on {on:.3f}s, "
        f"ratio {ratio:.3f} (budget {MAX_OVERHEAD_RATIO:.2f})"
    )
    assert ratio <= MAX_OVERHEAD_RATIO, (
        f"integrity overhead {ratio:.3f}x exceeds the "
        f"{MAX_OVERHEAD_RATIO:.2f}x budget"
    )


def test_bench_validated_run_really_validates():
    """The timed configuration is the real one: every sample inspected."""
    result = fig4.run(seed=0, integrity=True)
    pipeline = result.scenario.monitor.integrity
    assert pipeline is not None
    # Every polled interface earned a (fully trusted) record.
    records = pipeline.quarantine.records()
    assert len(records) >= 10
    assert all(rec.score == 1.0 for rec in records.values())
    assert pipeline.quarantined_keys() == []
