"""One multi-field time series: sealed chunk list + open head chunk.

All fields of a series share the timestamp column -- a sample is
``(t, v_field1, v_field2, ...)`` -- which fits the measurement history
exactly: every :class:`~repro.core.report.PathReport` lands as one row.
Appends go to the head chunk (O(1) list appends); every ``chunk_size``
samples the head is sealed into a compressed immutable chunk.  Range
queries bisect the chunk index on time and decode lazily, returning
NumPy arrays.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.tsdb.chunk import HeadChunk, Predictors, SealedChunk

DEFAULT_CHUNK_SIZE = 256


class Series:
    """An append-only, time-ordered, compressed multi-field series."""

    __slots__ = (
        "name", "fields", "chunk_size", "chunks", "head", "predictors",
        "_last_time", "_last_values", "_chunk_start_times", "samples_dropped",
    )

    def __init__(
        self,
        name: str,
        fields: Sequence[str],
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        predictors: Predictors = None,
    ) -> None:
        if chunk_size < 2:
            raise ValueError(f"chunk_size must be >= 2, got {chunk_size!r}")
        if not fields:
            raise ValueError("a series needs at least one value field")
        self.name = name
        self.fields: Tuple[str, ...] = tuple(fields)
        self.chunk_size = chunk_size
        self.predictors = predictors
        self.chunks: List[SealedChunk] = []
        self.head = HeadChunk(self.fields)
        self._chunk_start_times: List[float] = []  # parallel to self.chunks
        self._last_time: Optional[float] = None
        self._last_values: Optional[Tuple[float, ...]] = None
        self.samples_dropped = 0

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, t: float, values: Sequence[float]) -> None:
        """Append one sample; time must be non-decreasing."""
        if len(values) != len(self.fields):
            raise ValueError(
                f"series {self.name!r} wants {len(self.fields)} values "
                f"{self.fields}, got {len(values)}"
            )
        if self._last_time is not None and t < self._last_time:
            raise ValueError(
                f"out-of-order sample for series {self.name!r}: "
                f"{t} after {self._last_time}"
            )
        self.head.append(t, values)
        self._last_time = t
        self._last_values = tuple(values)
        if len(self.head) >= self.chunk_size:
            self._seal_head()

    def _seal_head(self) -> None:
        sealed = self.head.seal(self.predictors)
        self.chunks.append(sealed)
        self._chunk_start_times.append(sealed.min_time)
        self.head = HeadChunk(self.fields)

    def flush(self) -> None:
        """Seal the head chunk now (snapshotting, compression audits)."""
        if len(self.head):
            self._seal_head()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(c.count for c in self.chunks) + len(self.head)

    @property
    def nbytes(self) -> int:
        """Storage footprint: compressed chunks + raw head buffer."""
        return sum(c.nbytes for c in self.chunks) + self.head.nbytes

    @property
    def raw_nbytes(self) -> int:
        """What the same samples would cost as raw float64 columns."""
        return len(self) * (1 + len(self.fields)) * 8

    @property
    def min_time(self) -> Optional[float]:
        if self.chunks:
            return self.chunks[0].min_time
        return self.head.min_time if len(self.head) else None

    @property
    def max_time(self) -> Optional[float]:
        return self._last_time

    def latest(self) -> Optional[Tuple[float, Tuple[float, ...]]]:
        """The newest sample as ``(t, values)`` without any decoding."""
        if self._last_time is None:
            return None
        return self._last_time, self._last_values

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _blocks(
        self, t_start: Optional[float], t_end: Optional[float]
    ) -> Iterator[Tuple[np.ndarray, Dict[str, np.ndarray]]]:
        """Decoded (times, values) blocks overlapping [t_start, t_end)."""
        for chunk in self._overlapping(t_start, t_end):
            yield chunk.arrays(self.predictors)
        if len(self.head) and self._head_overlaps(t_start, t_end):
            yield self.head.arrays()

    def _overlapping(
        self, t_start: Optional[float], t_end: Optional[float]
    ) -> List[SealedChunk]:
        """Sealed chunks whose [min,max] range intersects [t_start, t_end).

        Chunks are time-ordered, so two bisects on the start-time index
        bound the candidates without touching compressed data.
        """
        if not self.chunks:
            return []
        lo = 0
        hi = len(self.chunks)
        if t_end is not None:
            # Chunks starting at/after t_end cannot contain t < t_end.
            hi = bisect_left(self._chunk_start_times, t_end)
        if t_start is not None:
            # The chunk *before* the first start > t_start may still
            # overlap (it can span t_start), so step back one.
            lo = max(0, bisect_right(self._chunk_start_times, t_start) - 1)
        return [
            c for c in self.chunks[lo:hi]
            if (t_start is None or c.max_time >= t_start)
            and (t_end is None or c.min_time < t_end)
        ]

    def _head_overlaps(
        self, t_start: Optional[float], t_end: Optional[float]
    ) -> bool:
        if t_start is not None and self.head.max_time < t_start:
            return False
        if t_end is not None and self.head.min_time >= t_end:
            return False
        return True

    def arrays(
        self,
        fields: Optional[Sequence[str]] = None,
        t_start: Optional[float] = None,
        t_end: Optional[float] = None,
    ) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """Range scan: ``(times, {field: values})`` for t in [t_start, t_end).

        Only chunks overlapping the window are decoded; the boundary
        chunks are trimmed with a binary search on their decoded times.
        """
        wanted = self.fields if fields is None else tuple(fields)
        for name in wanted:
            if name not in self.fields:
                raise KeyError(
                    f"no field {name!r} in series {self.name!r} (have {self.fields})"
                )
        times_parts: List[np.ndarray] = []
        value_parts: Dict[str, List[np.ndarray]] = {name: [] for name in wanted}
        for times, values in self._blocks(t_start, t_end):
            lo = 0 if t_start is None else int(np.searchsorted(times, t_start, "left"))
            hi = len(times) if t_end is None else int(np.searchsorted(times, t_end, "left"))
            if lo >= hi:
                continue
            times_parts.append(times[lo:hi])
            for name in wanted:
                value_parts[name].append(values[name][lo:hi])
        if not times_parts:
            empty = np.empty(0, dtype=np.float64)
            return empty, {name: empty.copy() for name in wanted}
        return (
            np.concatenate(times_parts),
            {name: np.concatenate(value_parts[name]) for name in wanted},
        )

    def field(
        self,
        name: str,
        t_start: Optional[float] = None,
        t_end: Optional[float] = None,
    ) -> np.ndarray:
        """One field's values over the window (no timestamps)."""
        return self.arrays([name], t_start, t_end)[1][name]

    def iter_samples(
        self, t_start: Optional[float] = None, t_end: Optional[float] = None
    ) -> Iterator[Tuple[float, Tuple[float, ...]]]:
        """Lazy sample iterator; decodes one chunk at a time."""
        for times, values in self._blocks(t_start, t_end):
            columns = [values[name] for name in self.fields]
            for i, t in enumerate(times):
                if t_start is not None and t < t_start:
                    continue
                if t_end is not None and t >= t_end:
                    return
                yield float(t), tuple(float(col[i]) for col in columns)

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def drop_chunks_before(self, t: float) -> List[SealedChunk]:
        """Drop (and return) sealed chunks entirely older than ``t``.

        The head chunk and any chunk straddling ``t`` are kept whole --
        retention granularity is the chunk, which keeps dropping O(1)
        per chunk and never splits compressed data.
        """
        keep = 0
        while keep < len(self.chunks) and self.chunks[keep].max_time < t:
            keep += 1
        dropped = self.chunks[:keep]
        if dropped:
            self.chunks = self.chunks[keep:]
            self._chunk_start_times = self._chunk_start_times[keep:]
            self.samples_dropped += sum(c.count for c in dropped)
        return dropped

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Series {self.name!r} fields={self.fields} n={len(self)} "
            f"chunks={len(self.chunks)}+head({len(self.head)})>"
        )
