"""Benchmark + regeneration of Figure 5 (hosts connected by a hub).

Asserts the paper's core hub claim: BOTH monitored paths through the hub
(S1<->N1 and S1<->N2) report the *sum* of the loads addressed to the two
NT machines, because the hub repeats every frame to every host.
"""

import numpy as np

from repro.experiments import fig5


def window_mean(pair, t0, t1):
    mask = (pair.times > t0) & (pair.times < t1)
    return float(pair.measured_kbps[mask].mean())


def test_bench_fig5_hub_sum(benchmark, fig5_result):
    benchmark.pedantic(lambda: fig5.run(seed=1), rounds=1, iterations=1)
    print()
    for line in fig5.format_series(fig5_result, stride=3):
        print(line)
    for label, stats in sorted(fig5_result.stats.items()):
        print(f"{label}: mean %err {stats.mean_pct_error:.1f}, "
              f"max %err {stats.max_pct_error:.1f} "
              f"(paper: {fig5.PAPER_AVG_PCT_ERROR} / {fig5.PAPER_MAX_PCT_ERROR})")

    for label in ("S1<->N1", "S1<->N2"):
        pair = fig5_result.pairs[label]
        # N1-only window: 200; overlap: 400; N2-only: 200; after: ~0.
        assert abs(window_mean(pair, 25, 38) - 200) < 20
        assert abs(window_mean(pair, 45, 58) - 400) < 30
        assert abs(window_mean(pair, 65, 78) - 200) < 20
        assert window_mean(pair, 85, 105) < 10
    # The two hub paths see the SAME traffic (shared medium).
    p1, p2 = fig5_result.pairs["S1<->N1"], fig5_result.pairs["S1<->N2"]
    n = min(len(p1.measured_kbps), len(p2.measured_kbps))
    diff = np.abs(p1.measured_kbps[:n] - p2.measured_kbps[:n])
    assert diff.mean() < 15.0
    # Accuracy bands around the paper's 3.7 % / 7.8 %.
    for stats in fig5_result.stats.values():
        assert stats.mean_pct_error < 6.0
        assert stats.max_pct_error < 25.0
