"""Bit-granular buffers underneath the chunk codecs.

The codecs emit variable-width fields (1-bit controls, 7-bit deltas,
64-bit raw floats), so byte-oriented buffers would waste most of the
compression win.  :class:`BitWriter` accumulates bits into a Python int
and flushes whole bytes into a ``bytearray``; :class:`BitReader` walks
the result.  Both treat the stream as big-endian within and across
bytes: the first bit written is the most significant bit of byte 0.
"""

from __future__ import annotations


class BitWriter:
    """Append-only bit stream."""

    __slots__ = ("_buf", "_acc", "_nacc", "bit_length")

    def __init__(self) -> None:
        self._buf = bytearray()
        self._acc = 0  # pending bits, right-aligned
        self._nacc = 0  # how many pending bits
        self.bit_length = 0

    def write_bit(self, bit: int) -> None:
        self.write_bits(bit & 1, 1)

    def write_bits(self, value: int, nbits: int) -> None:
        """Write the low ``nbits`` of non-negative ``value``."""
        if nbits == 0:
            return
        self._acc = (self._acc << nbits) | (value & ((1 << nbits) - 1))
        self._nacc += nbits
        self.bit_length += nbits
        while self._nacc >= 8:
            self._nacc -= 8
            self._buf.append((self._acc >> self._nacc) & 0xFF)
        # Keep the accumulator small (only the residual bits matter).
        self._acc &= (1 << self._nacc) - 1

    def to_bytes(self) -> bytes:
        """The stream so far, zero-padded to a whole byte."""
        if self._nacc:
            return bytes(self._buf) + bytes(
                [(self._acc << (8 - self._nacc)) & 0xFF]
            )
        return bytes(self._buf)

    def __len__(self) -> int:
        return self.bit_length


class BitReader:
    """Sequential reader over bytes produced by :class:`BitWriter`."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # bit offset

    def read_bit(self) -> int:
        pos = self._pos
        if (pos >> 3) >= len(self._data):
            raise EOFError(
                f"bit stream exhausted: want 1 bit at offset {pos}, "
                f"have {len(self._data) * 8}"
            )
        byte = self._data[pos >> 3]
        self._pos = pos + 1
        return (byte >> (7 - (pos & 7))) & 1

    def read_bits(self, nbits: int) -> int:
        """The next ``nbits`` as a non-negative int."""
        if nbits == 0:
            return 0
        pos = self._pos
        end = pos + nbits
        if (end + 7) >> 3 > len(self._data):
            raise EOFError(
                f"bit stream exhausted: want {nbits} bits at offset {pos}, "
                f"have {len(self._data) * 8}"
            )
        first = pos >> 3
        last = (end - 1) >> 3
        window = int.from_bytes(self._data[first : last + 1], "big")
        shift = (last + 1) * 8 - end
        self._pos = end
        return (window >> shift) & ((1 << nbits) - 1)

    @property
    def bits_read(self) -> int:
        return self._pos


def zigzag_encode(value: int) -> int:
    """Map signed ints to unsigned so small magnitudes stay small."""
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def zigzag_decode(value: int) -> int:
    return (value >> 1) if not (value & 1) else -((value + 1) >> 1)
